"""Table VI: impact of the self-attention depth N_X."""

from repro.experiments.hyperparams import format_sweep, sweep_attention_layers
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table6_nx(once):
    rows = once(
        lambda: sweep_attention_layers("yelp", BENCH_BUDGET, values=(1, 2, 3))
    )
    print()
    print(format_sweep(rows, "N_X", "yelp"))
    assert set(rows) == {"1", "2", "3"}
    values = [rows[key]["HR@10"] for key in ("1", "2", "3")]
    # Table VI's shape: no monotone gain from stacking more voting
    # rounds — shallow depths stay within a modest band of the best.
    assert max(values) - min(values) < 0.35
    for value in values:
        assert 0.0 < value <= 1.0
