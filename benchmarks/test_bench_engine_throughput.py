"""Serving throughput: direct vs engine-backed vs sharded user Top-K.

Records requests/second and p50/p99 latency for both single-process
paths at the default preset scale, plus an rps/p99-vs-worker-count
curve for sharded multi-process serving, and writes one JSON report
(CI uploads it as an artifact), so the engine's speedup and the
cluster's scaling are measured, not asserted blindly.  The acceptance
floor — ≥ 5× throughput for cached user Top-K — *is* asserted, far
below the typical measured ratio.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_engine_throughput.py -s
"""

import json
import os
import time

import numpy as np

from repro.core import GroupSA, GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.engine import EngineConfig, InferenceEngine, benchmark_user_serving
from repro.graphs import tfidf_top_neighbours
from repro.obs.spans import span, tracing_enabled
from repro.serving import RecommendationService

REPORT_PATH = os.environ.get("ENGINE_BENCH_JSON", "results/engine_throughput.json")
NUM_REQUESTS = int(os.environ.get("ENGINE_BENCH_REQUESTS", "150"))
SHARD_WORKERS = [
    int(w)
    for w in os.environ.get("SHARD_BENCH_WORKERS", "1,2,4").split(",")
    if w.strip()
]
SHARD_REQUESTS = int(os.environ.get("SHARD_BENCH_REQUESTS", "120"))
ANN_CATALOG_SIZES = [
    int(s)
    for s in os.environ.get("ANN_BENCH_SIZES", "2000,8000,32000,128000").split(",")
    if s.strip()
]
ANN_QUERIES = int(os.environ.get("ANN_BENCH_QUERIES", "60"))


def _merge_into_report(sections: dict) -> None:
    """Fold sections into REPORT_PATH without clobbering other tests'."""
    report = {}
    if os.path.exists(REPORT_PATH):
        with open(REPORT_PATH, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report.update(sections)
    os.makedirs(os.path.dirname(REPORT_PATH) or ".", exist_ok=True)
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)


def test_bench_engine_throughput():
    world = yelp_like(scale=0.005)
    split = split_interactions(world.dataset, rng=0)
    train = split.train
    config = GroupSAConfig()
    model = GroupSA(train.num_users, train.num_items, config)
    model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))

    service = RecommendationService(model=model, dataset=train)
    engine = InferenceEngine(
        model, train, config=EngineConfig(max_batch_size=64, flush_interval=0.0)
    )
    rng = np.random.default_rng(0)
    users = rng.integers(0, train.num_users, size=NUM_REQUESTS)
    try:
        report = benchmark_user_serving(service, engine, users, k=10, clients=8)
    finally:
        engine.close()

    report["world"] = {
        "preset": "yelp_like",
        "scale": 0.005,
        "num_users": train.num_users,
        "num_items": train.num_items,
    }
    _merge_into_report(report)

    for mode in ("direct", "engine"):
        side = report[mode]
        print(
            f"\n{mode:8s} {side['rps']:10.1f} req/s   "
            f"p50 {side['p50_ms']:8.3f} ms   p99 {side['p99_ms']:8.3f} ms",
            end="",
        )
    print(f"\nspeedup  {report['speedup_rps']:10.1f}x  (report: {REPORT_PATH})")

    assert report["speedup_rps"] >= 5.0, (
        f"engine-backed serving only {report['speedup_rps']:.1f}x faster "
        f"than direct (acceptance floor is 5x)"
    )


def test_bench_sharded_scaling():
    """Multi-process scatter-gather: parity first, then the curve.

    Uses a larger world than the engine benchmark — sharding only
    pays once per-request scoring work dwarfs the pipe round-trip, so
    at toy scale the curve would measure IPC, not the architecture.
    Parity is the hard assertion (router-merged lists must equal the
    single-process engine's); the recorded rps/p99 curve additionally
    must show some multi-worker point at or above the 1-worker
    baseline.  On a single-core machine that headroom comes from
    pipelining IPC with scoring, so the floor is deliberately 1.0,
    not a parallel-speedup target.
    """
    from repro.cluster import ClusterConfig, ShardRouter, benchmark_sharded_scaling

    world = yelp_like(scale=0.05)
    split = split_interactions(world.dataset, rng=0)
    train = split.train
    config = GroupSAConfig()
    model = GroupSA(train.num_users, train.num_items, config)
    model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))
    rng = np.random.default_rng(0)
    users = rng.integers(0, train.num_users, size=SHARD_REQUESTS)

    engine = InferenceEngine(model, train, config=EngineConfig())
    try:
        with ShardRouter.launch(
            model, train, config=ClusterConfig(num_workers=2, num_shards=4)
        ) as router:
            for user in [int(u) for u in users[:10]]:
                items, __ = router.topk_user(user, k=10)
                expected, __e = engine.topk_user(user, 10)
                assert items.tolist() == expected.tolist(), user
    finally:
        engine.close()

    scaling = benchmark_sharded_scaling(
        model, train, users, SHARD_WORKERS, k=10, clients=2
    )
    scaling["world"] = {
        "preset": "yelp_like",
        "scale": 0.05,
        "num_users": train.num_users,
        "num_items": train.num_items,
    }
    scaling["cpu_count"] = os.cpu_count()
    _merge_into_report({"sharded_scaling": scaling})

    print()
    for point in scaling["points"]:
        print(
            f"workers={point['workers']:<3d} shards={point['shards']:<3d} "
            f"{point['rps']:10.1f} req/s   p50 {point['p50_ms']:8.3f} ms   "
            f"p99 {point['p99_ms']:8.3f} ms   x{point['speedup_vs_first']:.2f}"
        )
    print(f"(report: {REPORT_PATH})", end="")

    multi = [p for p in scaling["points"] if p["workers"] > 1]
    if multi:
        best = max(p["speedup_vs_first"] for p in multi)
        assert best >= 1.0, (
            f"no multi-worker point reached the 1-worker baseline "
            f"(best {best:.2f}x) — scatter/merge overhead regressed"
        )


def test_bench_ann_crossover():
    """Recall@10 and latency, brute force vs IVF, across catalog sizes.

    Two hard assertions: (a) mean recall@10 stays ≥ 0.95 in every
    measured cell on both worlds — clustered (trained-table-like) and
    uniform (structure-free, IVF's worst case); (b) at least one world
    shows a latency crossover, i.e. a catalog size past which ANN
    candidates + exact rerank beat the brute-force matvec + exact
    kernel.  Brute force legitimately wins small catalogs (probing
    overhead), which is exactly what the recorded curve is for.
    """
    from repro.engine import benchmark_ann_crossover

    report = benchmark_ann_crossover(
        ANN_CATALOG_SIZES, dim=32, k=10, num_queries=ANN_QUERIES
    )
    _merge_into_report({"ann_crossover": report})

    print()
    for mode, points in report["points"].items():
        for point in points:
            print(
                f"{mode:9s} items={point['num_items']:<7d} "
                f"nlist={point['nlist']:<4d} nprobe={point['nprobe']:<4d} "
                f"brute {point['brute_ms']:7.3f} ms   ann {point['ann_ms']:7.3f} ms   "
                f"x{point['speedup']:.2f}   recall {point['recall_at_k']:.3f}"
            )
        print(f"{mode:9s} crossover: {report['crossover_items'][mode]} items")
    print(f"(report: {REPORT_PATH})", end="")

    for mode, points in report["points"].items():
        for point in points:
            assert point["recall_at_k"] >= 0.95, (
                f"{mode} recall@10 fell to {point['recall_at_k']:.3f} at "
                f"{point['num_items']} items (floor 0.95)"
            )
    assert any(
        size is not None for size in report["crossover_items"].values()
    ), (
        f"ANN never beat brute force at any measured size "
        f"({report['catalog_sizes']}) on any world — sub-linear retrieval "
        "is not paying for its probes"
    )


def test_bench_disabled_tracing_is_noop():
    """With no tracer installed, ``span()`` must stay off the hot path.

    The instrumented serving code calls ``span(...)`` several times per
    request; the disabled path hands back a shared no-op singleton, so
    its amortised cost must be small change against a ~1ms request.
    The 2µs/call ceiling is ~100x the measured cost on CI hardware —
    loose enough to dodge scheduler noise, tight enough to catch any
    accidental allocation or lock on the disabled path.
    """
    assert not tracing_enabled()
    iterations = 200_000
    # Warm up (bytecode caches, branch predictors).
    for __ in range(1000):
        with span("warmup", batch_size=1):
            pass
    start = time.perf_counter()
    for __ in range(iterations):
        with span("bench.noop", batch_size=1):
            pass
    per_call_us = (time.perf_counter() - start) / iterations * 1e6
    print(f"\ndisabled span() cost: {per_call_us:.3f} us/call", end="")
    assert per_call_us < 2.0, (
        f"disabled tracing costs {per_call_us:.3f} us/call — the no-op "
        "path is no longer free"
    )
