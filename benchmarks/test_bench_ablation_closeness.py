"""Extension ablation: closeness functions f(i,j) for the social mask.

Eq. (5) permits any closeness score; the paper uses the direct-edge
indicator in its experiments and names PageRank/closeness/betweenness
as alternatives.  This bench trains GroupSA under four masks and
reports the group-task metrics.
"""

from repro.baselines import GroupSARecommender
from repro.core import GroupSAConfig
from repro.experiments.reporting import format_metric_table
from repro.experiments.runner import BENCH_BUDGET, average_over_seeds

CLOSENESS_VARIANTS = ("direct", "common-neighbours", "pagerank", "full")


def run_closeness_ablation(dataset="yelp", budget=BENCH_BUDGET):
    factories = {
        name: (
            lambda seed, name=name: GroupSARecommender(
                GroupSAConfig(closeness=name, seed=2020 + seed), budget.training
            )
        )
        for name in CLOSENESS_VARIANTS
    }
    rows = average_over_seeds(factories, dataset, budget)
    return {name: rows[name]["group"] for name in CLOSENESS_VARIANTS}


def test_bench_ablation_closeness(once):
    rows = once(run_closeness_ablation)
    print()
    print(
        format_metric_table(
            rows,
            title="Ablation — closeness function f(i,j) (yelp, group task)",
            key_header="f(i,j)",
        )
    )
    assert set(rows) == set(CLOSENESS_VARIANTS)
    for metrics in rows.values():
        assert 0.0 <= metrics["HR@10"] <= 1.0
