"""Table VII: impact of the blend weight w^u."""

from repro.experiments.hyperparams import format_sweep, sweep_blend_weight
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table7_wu(once):
    values = (0.1, 0.5, 0.9)
    rows = once(lambda: sweep_blend_weight("yelp", BENCH_BUDGET, values=values))
    print()
    print(format_sweep(rows, "w^u", "yelp"))
    assert set(rows) == {"0.1", "0.5", "0.9"}
    for metrics in rows.values():
        assert 0.0 <= metrics["HR@10"] <= 1.0
        assert metrics["NDCG@10"] <= metrics["HR@10"] + 1e-9
