"""Extension ablation: TF-IDF vs random Top-H neighbour selection.

Section II-D ranks the aggregated items/friends by TF-IDF; this bench
checks what that ranking buys over a random Top-H pick.
"""

import numpy as np

from repro.evaluation import evaluate
from repro.experiments.reporting import format_metric_table
from repro.experiments.runner import BENCH_BUDGET, prepare_run
from repro.graphs import random_top_neighbours, tfidf_top_neighbours
from repro.training.two_stage import build_model, fit_groupsa
from repro.core import GroupSAConfig


def run_tfidf_ablation(budget=BENCH_BUDGET):
    run = prepare_run("yelp", budget, seed=0)
    results = {}
    for name, builder in (
        ("tfidf", tfidf_top_neighbours),
        ("random", lambda ds, h: random_top_neighbours(ds, h, seed=0)),
    ):
        config = GroupSAConfig()
        model, batcher = build_model(run.split, config)
        model.set_top_neighbours(builder(run.split.train, config.top_h))
        fit_groupsa(model, run.split, batcher, budget.training)
        results[name] = evaluate(
            lambda groups, items: model.score_group_items(batcher.batch(groups), items),
            run.group_task,
        ).metrics
    return results


def test_bench_ablation_tfidf(once):
    rows = once(run_tfidf_ablation)
    print()
    print(
        format_metric_table(
            rows,
            title="Ablation — Top-H selection (yelp, group task)",
            key_header="ranking",
        )
    )
    assert set(rows) == {"tfidf", "random"}
    for metrics in rows.values():
        assert np.isfinite(list(metrics.values())).all()
