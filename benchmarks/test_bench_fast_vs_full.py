"""Extension bench: fast group recommendation (Section II-F) vs the
full voting forward pass — ranking quality and scoring latency."""

import time

import numpy as np

from repro.core import FastGroupRecommender, GroupSAConfig
from repro.evaluation import evaluate
from repro.experiments.runner import BENCH_BUDGET, prepare_run
from repro.training.two_stage import build_model, fit_groupsa


def run_fast_vs_full(budget=BENCH_BUDGET):
    run = prepare_run("yelp", budget, seed=0)
    config = GroupSAConfig(num_attention_layers=2)
    model, batcher = build_model(run.split, config)
    fit_groupsa(model, run.split, batcher, budget.training)

    results = {}

    def timed(name, scorer):
        start = time.perf_counter()
        metrics = evaluate(scorer, run.group_task).metrics
        metrics["seconds"] = time.perf_counter() - start
        results[name] = metrics

    timed(
        "full",
        lambda groups, items: model.score_group_items(batcher.batch(groups), items),
    )
    fast = FastGroupRecommender(model, "avg")
    timed(
        "fast-avg",
        lambda groups, items: fast.score_group_items(batcher.batch(groups), items),
    )
    return results


def test_bench_fast_vs_full(once):
    rows = once(run_fast_vs_full)
    print()
    for name, metrics in rows.items():
        print(
            f"{name:10s} HR@10={metrics['HR@10']:.4f} "
            f"NDCG@10={metrics['NDCG@10']:.4f} ({metrics['seconds']:.2f}s)"
        )
    # Section II-F: the fast path trades a little accuracy for the
    # removal of the voting forward pass; it must stay comparable.
    assert rows["fast-avg"]["HR@10"] >= 0.4 * rows["full"]["HR@10"]
    assert np.isfinite(rows["fast-avg"]["seconds"])
