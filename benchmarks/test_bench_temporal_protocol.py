"""Extension bench: random vs chronological split protocol.

The paper uses a random 80/20 split; a deployment-faithful protocol
trains on the past and tests on the future.  This bench quantifies the
gap for GroupSA — temporal evaluation is typically harder because
future items may be cold.
"""

from repro.core import GroupSAConfig
from repro.data.splits import split_interactions
from repro.data.synthetic import generate
from repro.data.temporal import attach_timestamps, temporal_split
from repro.evaluation import evaluate, prepare_task
from repro.experiments.runner import BENCH_BUDGET, dataset_config
from repro.training.two_stage import train_groupsa


def run_protocol_comparison(budget=BENCH_BUDGET):
    world = generate(dataset_config("yelp", budget.scale, 0))
    timestamps = attach_timestamps(world.dataset, rng=0)
    splits = {
        "random": split_interactions(world.dataset, rng=1000),
        "temporal": temporal_split(world.dataset, timestamps),
    }
    results = {}
    for name, split in splits.items():
        model, batcher, __ = train_groupsa(split, GroupSAConfig(), budget.training)
        full = split.full
        task = prepare_task(
            split.test.group_item, full.group_items(), full.num_items, rng=2000
        )
        results[name] = evaluate(
            lambda groups, items: model.score_group_items(batcher.batch(groups), items),
            task,
        ).metrics
    return results


def test_bench_temporal_protocol(once):
    rows = once(run_protocol_comparison)
    print()
    for name, metrics in rows.items():
        print(
            f"{name:10s} HR@10={metrics['HR@10']:.4f} NDCG@10={metrics['NDCG@10']:.4f}"
        )
    assert set(rows) == {"random", "temporal"}
    for metrics in rows.values():
        assert 0.0 <= metrics["HR@10"] <= 1.0
