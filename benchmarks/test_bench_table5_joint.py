"""Table V: importance of the user-item interaction data (joint training)."""

from repro.experiments.joint_training import format_joint_training, run_joint_training
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table5_joint_yelp(once):
    rows = once(lambda: run_joint_training("yelp", BENCH_BUDGET))
    print()
    print(format_joint_training(rows, "yelp"))
    assert set(rows) == {"NCF", "Group-G", "GroupSA"}
    # Table V's headline: joint training with user-item data beats the
    # group-item-only variant, which in turn beats virtual-user NCF.
    assert rows["GroupSA"]["HR@10"] > rows["Group-G"]["HR@10"]
    assert rows["GroupSA"]["NDCG@10"] > rows["Group-G"]["NDCG@10"]


def test_bench_table5_joint_douban(once):
    rows = once(lambda: run_joint_training("douban", BENCH_BUDGET))
    print()
    print(format_joint_training(rows, "douban"))
    assert rows["GroupSA"]["HR@10"] > rows["Group-G"]["HR@10"]
