"""Table III: overall Top-K comparison on the Douban-Event-like world."""

from repro.experiments.overall import format_overall, run_overall
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table3_douban(once):
    rows = once(lambda: run_overall("douban", BENCH_BUDGET))
    print()
    print(format_overall(rows, "douban"))

    assert set(rows) == {
        "NCF", "Pop", "AGREE", "SIGR", "Group+avg", "Group+lm", "Group+ms", "GroupSA",
    }
    group_sa = rows["GroupSA"]["group"]
    assert group_sa["HR@10"] > rows["Pop"]["group"]["HR@10"]
    # GroupSA leads the user task as well (Table III shows the largest
    # user-task margins on Douban).
    assert rows["GroupSA"]["user"]["HR@10"] >= rows["Pop"]["user"]["HR@10"]
