"""Table IX: performance across group-size bins."""

from repro.experiments.group_size import format_group_size, run_group_size
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table9_group_size(once):
    rows = once(lambda: run_group_size("yelp", BENCH_BUDGET))
    print()
    print(format_group_size(rows, "yelp"))
    assert rows, "at least one size bin must be populated"
    for metrics in rows.values():
        assert 0.0 <= metrics["HR@10"] <= 1.0
    # Table IX's shape: medium/large groups are not harder than tiny
    # ones — more members mean more evidence for the voting network.
    if "l < 3" in rows and "3 <= l <= 7" in rows:
        assert rows["3 <= l <= 7"]["HR@10"] >= rows["l < 3"]["HR@10"] - 0.25
