"""Substrate micro-benchmarks: autograd step latency.

Not a paper artifact — these guard the training substrate against
performance regressions (a GroupSA epoch is thousands of these steps).
"""

import numpy as np

from repro.autograd import Tensor
from repro.core import GroupSA, GroupSAConfig
from repro.data import GroupBatcher
from repro.graphs import tfidf_top_neighbours
from repro.training import bpr_loss


def test_bench_autograd_mlp_step(benchmark, rng=np.random.default_rng(0)):
    from repro.nn import MLP
    from repro.optim import Adam

    mlp = MLP(64, [64, 32], 1, rng=0)
    optimizer = Adam(mlp.parameters(), lr=1e-3)
    x = Tensor(rng.normal(size=(256, 64)))

    def step():
        optimizer.zero_grad()
        out = mlp(x)
        (out * out).mean().backward()
        optimizer.step()

    benchmark(step)


def test_bench_groupsa_forward_backward(benchmark, tiny_pipeline=None):
    from repro.data import yelp_like, split_interactions

    world = yelp_like(scale=0.005)
    split = split_interactions(world.dataset, rng=0)
    train = split.train
    config = GroupSAConfig()
    model = GroupSA(train.num_users, train.num_items, config)
    model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))
    batcher = GroupBatcher(train)
    groups = np.arange(min(64, train.num_groups))
    items = np.arange(len(groups))
    batch = batcher.batch(groups)

    def step():
        model.zero_grad()
        positive = model.group_scores(batch, items)
        negative = model.group_scores(batch, items[::-1].copy())
        bpr_loss(positive, negative).backward()

    benchmark(step)


def test_bench_user_scoring_throughput(benchmark):
    from repro.data import yelp_like, split_interactions

    world = yelp_like(scale=0.005)
    split = split_interactions(world.dataset, rng=0)
    train = split.train
    config = GroupSAConfig()
    model = GroupSA(train.num_users, train.num_items, config)
    model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))
    rng = np.random.default_rng(0)
    users = rng.integers(0, train.num_users, size=2048)
    items = rng.integers(0, train.num_items, size=2048)

    benchmark(lambda: model.score_user_items(users, items))
