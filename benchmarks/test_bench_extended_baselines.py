"""Extension bench: the related-work generative baselines PIT and COM.

The paper skips comparing against PIT [3] and COM [13] because AGREE
and SIGR dominate them; this bench closes the loop by measuring them
on our worlds against GroupSA.
"""

from repro.baselines import COM, GroupSARecommender, PIT
from repro.core import GroupSAConfig
from repro.experiments.reporting import format_metric_table
from repro.experiments.runner import BENCH_BUDGET, average_over_seeds


def run_extended_baselines(dataset="yelp", budget=BENCH_BUDGET):
    factories = {
        "PIT": lambda seed: PIT(seed=seed),
        "COM": lambda seed: COM(seed=seed),
        "GroupSA": lambda seed: GroupSARecommender(
            GroupSAConfig(seed=2020 + seed), budget.training
        ),
    }
    rows = average_over_seeds(factories, dataset, budget)
    return {name: rows[name]["group"] for name in ("PIT", "COM", "GroupSA")}


def test_bench_extended_baselines(once):
    rows = once(run_extended_baselines)
    print()
    print(
        format_metric_table(
            rows,
            title="Extension — generative baselines (yelp, group task)",
        )
    )
    assert set(rows) == {"PIT", "COM", "GroupSA"}
    # The paper's stated reason for skipping PIT/COM: the neural
    # attention models dominate them.  Our reproduction should agree.
    assert rows["GroupSA"]["HR@10"] >= rows["PIT"]["HR@10"] - 0.05
    assert rows["GroupSA"]["HR@10"] >= rows["COM"]["HR@10"] - 0.05
