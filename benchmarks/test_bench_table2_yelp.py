"""Table II: overall Top-K comparison on the Yelp-like world."""

from repro.experiments.overall import format_overall, run_overall
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table2_yelp(once):
    rows = once(lambda: run_overall("yelp", BENCH_BUDGET))
    print()
    print(format_overall(rows, "yelp"))

    # Structural checks: all eight rows present, metrics in range.
    assert set(rows) == {
        "NCF", "Pop", "AGREE", "SIGR", "Group+avg", "Group+lm", "Group+ms", "GroupSA",
    }
    for model, tasks in rows.items():
        for metrics in tasks.values():
            for value in metrics.values():
                assert 0.0 <= value <= 1.0

    # Shape checks that are robust at the bench budget: the learned
    # group recommender must clearly beat non-personalized popularity
    # on the group task, and GroupSA must be competitive on top.
    group_sa = rows["GroupSA"]["group"]
    assert group_sa["HR@10"] > rows["Pop"]["group"]["HR@10"]
    assert group_sa["NDCG@10"] >= max(
        rows[m]["group"]["NDCG@10"] for m in ("Pop", "NCF", "Group+ms")
    )
    # Score aggregation rows exist only for the group task.
    assert "user" not in rows["Group+avg"]
