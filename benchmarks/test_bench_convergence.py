"""Extension bench: training dynamics of the two-stage schedule."""

from repro.experiments.convergence import trace_convergence
from repro.experiments.runner import BENCH_BUDGET, prepare_run


def test_bench_convergence(once):
    def run():
        prepared = prepare_run("yelp", BENCH_BUDGET, seed=0)
        return trace_convergence(
            prepared.split,
            training=BENCH_BUDGET.training,
            check_every=10,
            num_candidates=50,
        )

    curve = once(run)
    print()
    print(curve.to_csv())

    user_losses = curve.losses("user")
    group_losses = curve.losses("group")
    # Stage 1 makes progress and ends below the ln(2) random baseline.
    assert user_losses[-1] < user_losses[0]
    assert user_losses[-1] < 0.693
    # Stage 2 fine-tuning converges well below random ranking.
    assert group_losses[-1] < group_losses[0]
    assert group_losses[-1] < 0.5
