"""Training throughput: row-sparse lazy updates vs the dense reference.

A BPR matrix-factorization step (the embedding-dominated core of
GroupSA's stage-1 task) is timed at growing table sizes with a fixed
batch.  Dense per-step cost is O(table): the scatter materializes a
full-table gradient and Adam walks every row.  The sparse path touches
only the batch rows, so its per-step cost should stay ~flat while the
dense cost grows linearly with the tables.

Acceptance floors, asserted at the largest scale (100k+ users/items,
batch 256):

- sparse ≥ 3× dense steps/second;
- sparse per-step cost grows ≤ 5× across a 16× table growth (dense
  grows ~linearly).

The full measurement grid lands in a JSON report (CI uploads it).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_train_throughput.py -s
"""

import json
import os
import time

import numpy as np

from repro.autograd import fused_ops, sparse_grads
from repro.core.config import GroupSAConfig
from repro.core.groupsa import GroupSA
from repro.data.loaders import GroupBatch
from repro.nn.embedding import Embedding
from repro.optim import Adam
from repro.training.bpr import bpr_loss

REPORT_PATH = os.environ.get(
    "BENCH_TRAIN_THROUGHPUT_JSON", "results/BENCH_train_throughput.json"
)
MEASURE_STEPS = int(os.environ.get("BENCH_TRAIN_STEPS", "30"))
WARMUP_STEPS = 3
BATCH_SIZE = 256
EMBEDDING_DIM = 16
#: Users == items per scale; the largest must satisfy the ISSUE floor
#: of at least 100k-row tables.
SCALES = (10_000, 40_000, 160_000)


def _merge_report(updates):
    """Read-merge-write the shared report so both benches contribute.

    The sparse-vs-dense test and the fused-attention test write to the
    same JSON; a plain ``json.dump`` from either would clobber the
    other's section.
    """
    report = {}
    if os.path.exists(REPORT_PATH):
        with open(REPORT_PATH, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report.update(updates)
    os.makedirs(os.path.dirname(REPORT_PATH) or ".", exist_ok=True)
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)


def _run_training(num_rows, sparse, steps, seed=0):
    """Time `steps` BPR steps over user/item tables of ``num_rows``."""
    users = Embedding(num_rows, EMBEDDING_DIM, rng=np.random.default_rng(1))
    items = Embedding(num_rows, EMBEDDING_DIM, rng=np.random.default_rng(2))
    optimizer = Adam([users.weight, items.weight], lr=0.01)
    rng = np.random.default_rng(seed)
    step_times = []
    with sparse_grads(sparse):
        for step in range(WARMUP_STEPS + steps):
            batch_users = rng.integers(0, num_rows, size=BATCH_SIZE)
            positives = rng.integers(0, num_rows, size=BATCH_SIZE)
            negatives = rng.integers(0, num_rows, size=BATCH_SIZE)
            started = time.perf_counter()
            user_vectors = users(batch_users)
            positive_scores = (user_vectors * items(positives)).sum(axis=-1)
            negative_scores = (user_vectors * items(negatives)).sum(axis=-1)
            loss = bpr_loss(positive_scores, negative_scores)
            loss.backward()
            optimizer.step()
            optimizer.zero_grad()
            elapsed = time.perf_counter() - started
            if step >= WARMUP_STEPS:
                step_times.append(elapsed)
    sync_started = time.perf_counter()
    optimizer.sync()
    sync_s = time.perf_counter() - sync_started
    times = np.asarray(step_times)
    return {
        "steps": int(times.size),
        "median_step_s": float(np.median(times)),
        "mean_step_s": float(times.mean()),
        "steps_per_s": float(1.0 / np.median(times)),
        "final_sync_s": sync_s,
    }


def test_bench_train_throughput():
    results = []
    for num_rows in SCALES:
        dense = _run_training(num_rows, sparse=False, steps=MEASURE_STEPS)
        sparse = _run_training(num_rows, sparse=True, steps=MEASURE_STEPS)
        speedup = sparse["steps_per_s"] / dense["steps_per_s"]
        results.append(
            {
                "num_users": num_rows,
                "num_items": num_rows,
                "dense": dense,
                "sparse": sparse,
                "speedup": speedup,
            }
        )
        print(
            f"\nrows {num_rows:>7,}  dense {dense['steps_per_s']:8.1f} st/s   "
            f"sparse {sparse['steps_per_s']:8.1f} st/s   "
            f"speedup {speedup:6.1f}x",
            end="",
        )

    smallest, largest = results[0], results[-1]
    sparse_growth = (
        largest["sparse"]["median_step_s"] / smallest["sparse"]["median_step_s"]
    )
    dense_growth = (
        largest["dense"]["median_step_s"] / smallest["dense"]["median_step_s"]
    )
    table_growth = SCALES[-1] / SCALES[0]
    _merge_report(
        {
            "batch_size": BATCH_SIZE,
            "embedding_dim": EMBEDDING_DIM,
            "measure_steps": MEASURE_STEPS,
            "scales": results,
            "table_growth": table_growth,
            "sparse_step_growth": sparse_growth,
            "dense_step_growth": dense_growth,
            "speedup_at_largest": largest["speedup"],
        }
    )
    print(
        f"\n{table_growth:.0f}x tables -> sparse step x{sparse_growth:.2f}, "
        f"dense step x{dense_growth:.2f}  (report: {REPORT_PATH})"
    )

    assert largest["num_users"] >= 100_000
    assert largest["speedup"] >= 3.0, (
        f"sparse training only {largest['speedup']:.1f}x faster than dense "
        f"at {largest['num_users']:,} rows (acceptance floor is 3x)"
    )
    assert sparse_growth <= 5.0, (
        f"sparse per-step cost grew {sparse_growth:.1f}x over a "
        f"{table_growth:.0f}x table growth; expected ~flat (<= 5x)"
    )


# ----------------------------------------------------------------------
# Fused attention ops + float32 dtype policy vs the op-by-op baseline
# ----------------------------------------------------------------------

FUSED_MEASURE_STEPS = int(os.environ.get("BENCH_FUSED_STEPS", "12"))
FUSED_WARMUP_STEPS = 3
#: (batch groups, members per group) — attention work grows with both.
FUSED_SCALES = ((64, 4), (128, 8), (256, 12))
FUSED_DIM = 32


def _run_attention_training(batch_groups, group_size, dtype, fused, steps, seed=0):
    """Time full GroupSA group-task BPR steps (attention-dominated)."""
    num_users, num_items = 2_000, 3_000
    config = GroupSAConfig(
        embedding_dim=FUSED_DIM,
        key_dim=FUSED_DIM,
        value_dim=FUSED_DIM,
        ffn_hidden=FUSED_DIM,
        attention_hidden=FUSED_DIM,
        prediction_hidden=(FUSED_DIM,),
        fusion_hidden=(FUSED_DIM,),
        dropout=0.1,
        use_item_aggregation=False,
        use_social_aggregation=False,
        dtype=dtype,
        seed=3,
    )
    model = GroupSA(num_users, num_items, config)
    optimizer = Adam(model.parameters(), lr=0.01)
    rng = np.random.default_rng(seed)
    step_times = []
    with fused_ops(fused):
        for step in range(FUSED_WARMUP_STEPS + steps):
            members = rng.integers(0, num_users, size=(batch_groups, group_size))
            batch = GroupBatch(
                group_ids=np.arange(batch_groups),
                members=members,
                mask=np.ones((batch_groups, group_size), dtype=bool),
                adjacency=np.ones(
                    (batch_groups, group_size, group_size), dtype=bool
                ),
            )
            positives = rng.integers(0, num_items, size=batch_groups)
            negatives = rng.integers(0, num_items, size=batch_groups)
            started = time.perf_counter()
            positive_scores = model.group_scores(batch, positives)
            negative_scores = model.group_scores(batch, negatives)
            loss = bpr_loss(positive_scores, negative_scores)
            loss.backward()
            optimizer.step()
            optimizer.zero_grad()
            elapsed = time.perf_counter() - started
            if step >= FUSED_WARMUP_STEPS:
                step_times.append(elapsed)
    times = np.asarray(step_times)
    return {
        "steps": int(times.size),
        "median_step_s": float(np.median(times)),
        "steps_per_s": float(1.0 / np.median(times)),
    }


def test_bench_fused_attention_throughput():
    """Fused float32 vs unfused float64 on attention-dominated steps.

    Acceptance floor (ISSUE 9): at the largest scale, the fused float32
    configuration must reach >= 1.5x the steps/second of the float64
    op-by-op baseline.
    """
    curve = []
    for batch_groups, group_size in FUSED_SCALES:
        baseline = _run_attention_training(
            batch_groups, group_size, "float64", False, FUSED_MEASURE_STEPS
        )
        fused_f64 = _run_attention_training(
            batch_groups, group_size, "float64", True, FUSED_MEASURE_STEPS
        )
        fused_f32 = _run_attention_training(
            batch_groups, group_size, "float32", True, FUSED_MEASURE_STEPS
        )
        point = {
            "batch_groups": batch_groups,
            "group_size": group_size,
            "baseline_float64_unfused": baseline,
            "fused_float64": fused_f64,
            "fused_float32": fused_f32,
            "fused_float64_speedup": fused_f64["steps_per_s"] / baseline["steps_per_s"],
            "fused_float32_speedup": fused_f32["steps_per_s"] / baseline["steps_per_s"],
        }
        curve.append(point)
        print(
            f"\nB={batch_groups:>3} L={group_size:>2}  "
            f"baseline {baseline['steps_per_s']:7.1f} st/s   "
            f"fused64 {fused_f64['steps_per_s']:7.1f} "
            f"({point['fused_float64_speedup']:.2f}x)   "
            f"fused32 {fused_f32['steps_per_s']:7.1f} "
            f"({point['fused_float32_speedup']:.2f}x)",
            end="",
        )

    _merge_report(
        {
            "fused_attention": {
                "embedding_dim": FUSED_DIM,
                "measure_steps": FUSED_MEASURE_STEPS,
                "curve": curve,
                "speedup_at_largest": curve[-1]["fused_float32_speedup"],
            }
        }
    )
    print(f"\n(report: {REPORT_PATH})")

    largest = curve[-1]
    assert largest["fused_float32_speedup"] >= 1.5, (
        f"fused float32 training only {largest['fused_float32_speedup']:.2f}x "
        f"the float64 op-by-op baseline at B={largest['batch_groups']} "
        f"L={largest['group_size']} (acceptance floor is 1.5x)"
    )
