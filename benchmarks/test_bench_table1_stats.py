"""Table I: dataset statistics of both generated worlds."""

from repro.experiments.dataset_stats import (
    PAPER_TABLE1,
    format_dataset_stats,
    run_dataset_stats,
)
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table1_stats(once):
    stats = once(lambda: run_dataset_stats(BENCH_BUDGET))
    print()
    print(format_dataset_stats(stats))

    # The per-entity averages must track the published Table I even at
    # reduced scale (entity counts scale down, densities must not).
    for dataset in ("yelp", "douban"):
        ours = stats[dataset]
        paper = PAPER_TABLE1[dataset]
        assert abs(ours["Avg. group size"] - paper["Avg. group size"]) < 0.6
        assert (
            abs(ours["Avg. # friends per user"] - paper["Avg. # friends per user"])
            < 2.0
        )
        assert (
            abs(
                ours["Avg. # interactions per user"]
                - paper["Avg. # interactions per user"]
            )
            < 2.5
        )
        assert (
            abs(
                ours["Avg. # interactions per group"]
                - paper["Avg. # interactions per group"]
            )
            < 0.4
        )
