"""Figure 3: importance of social self-attention and user modeling."""

from repro.experiments.ablations import ABLATION_ORDER, format_ablations, run_ablations
from repro.experiments.runner import BENCH_BUDGET


def test_bench_fig3_ablations_yelp(once):
    rows = once(lambda: run_ablations("yelp", BENCH_BUDGET))
    print()
    print(format_ablations(rows, "yelp"))
    assert set(rows) == set(ABLATION_ORDER)
    for metrics in rows.values():
        assert 0.0 <= metrics["HR@10"] <= 1.0
    # Robust shape check (one seed, ~50 test edges => each edge moves
    # HR by ~2pt): the full model must not be dominated — within noise
    # of the weakest ablation on every metric and strictly better than
    # some ablation on HR@10.
    full = rows["GroupSA"]
    ablations = [rows[name] for name in ABLATION_ORDER if name != "GroupSA"]
    for metric in ("HR@5", "HR@10", "NDCG@5", "NDCG@10"):
        assert full[metric] >= min(a[metric] for a in ablations) - 0.05
    assert any(full["HR@10"] > a["HR@10"] for a in ablations)


def test_bench_fig3_ablations_douban(once):
    rows = once(lambda: run_ablations("douban", BENCH_BUDGET))
    print()
    print(format_ablations(rows, "douban"))
    assert set(rows) == set(ABLATION_ORDER)
    full = rows["GroupSA"]
    ablations = [rows[name] for name in ABLATION_ORDER if name != "GroupSA"]
    for metric in ("HR@10", "NDCG@10"):
        assert full[metric] >= min(a[metric] for a in ablations)
