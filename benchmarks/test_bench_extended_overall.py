"""Extension bench: the extended overall comparison (classic CF +
generative models + GroupSA under one protocol)."""

from repro.experiments.overall_extended import MODEL_ORDER, run_overall_extended
from repro.experiments.reporting import format_overall_table
from repro.experiments.runner import BENCH_BUDGET


def test_bench_extended_overall(once):
    rows = once(lambda: run_overall_extended("yelp", BENCH_BUDGET))
    print()
    print(format_overall_table(rows, "yelp, extended"))
    assert set(rows) == set(MODEL_ORDER)
    # The neural group model must dominate classic CF and the
    # generative models on the group task.
    group_sa = rows["GroupSA"]["group"]["NDCG@10"]
    for baseline in ("Pop", "ItemKNN", "BPR-MF", "PIT", "COM"):
        assert group_sa >= rows[baseline]["group"]["NDCG@10"] - 0.02
