"""Cluster tracing overhead guard.

Not a paper artifact — guards the ISSUE 10 protocol contract: with no
tracer installed, score requests cross the worker pipes as exactly the
pre-tracing 5-tuples (zero pickled overhead), and enabling tracing
costs only the one appended context/payload element.  The two
benchmarks make the traced-vs-untraced request latency delta visible
in the benchmark report.
"""

import pickle

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ShardRouter
from repro.cluster.router import _WorkerHandle
from repro.core import GroupSA, GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.graphs import tfidf_top_neighbours
from repro.obs.spans import Tracer


@pytest.fixture(scope="module")
def router():
    world = yelp_like(scale=0.01)
    split = split_interactions(world.dataset, rng=0)
    train = split.train
    config = GroupSAConfig(embedding_dim=16)
    model = GroupSA(train.num_users, train.num_items, config)
    model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))
    router = ShardRouter.launch(
        model, train, config=ClusterConfig(num_workers=2, num_shards=2)
    )
    yield router
    router.close()


@pytest.fixture
def sent_messages(monkeypatch):
    captured = []
    original = _WorkerHandle.send

    def spy(self, message):
        captured.append(message)
        return original(self, message)

    monkeypatch.setattr(_WorkerHandle, "send", spy)
    return captured


def test_bench_cluster_topk_tracing_off(benchmark, router, sent_messages):
    users = np.random.default_rng(0).integers(0, router.num_users, size=64)
    counter = iter(range(10**9))

    def request():
        return router.topk_user(int(users[next(counter) % users.size]), k=10)

    benchmark(request)
    scores = [m for m in sent_messages if m[0] == "score"]
    assert scores, "no score messages captured"
    # The wire contract: untraced requests are the exact legacy tuple.
    for message in scores:
        assert len(message) == 5
        assert pickle.dumps(message) == pickle.dumps(tuple(message[:5]))


def test_bench_cluster_topk_tracing_on(benchmark, router, sent_messages):
    users = np.random.default_rng(1).integers(0, router.num_users, size=64)
    counter = iter(range(10**9))
    with Tracer(sample_rate=1.0):

        def request():
            return router.topk_user(int(users[next(counter) % users.size]), k=10)

        benchmark(request)
    scores = [m for m in sent_messages if m[0] == "score"]
    assert scores, "no score messages captured"
    # Traced requests append exactly one element: the span context.
    for message in scores:
        assert len(message) == 6
        assert set(message[5]) == {"trace_id", "span_id", "sent_ts"}
