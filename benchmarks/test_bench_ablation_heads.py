"""Extension ablation: multi-head social self-attention.

The paper's voting network is single-head; this bench measures whether
splitting the voting attention into multiple heads changes the group
ranking quality at equal parameter count.
"""

from repro.baselines import GroupSARecommender
from repro.core import GroupSAConfig
from repro.experiments.reporting import format_metric_table
from repro.experiments.runner import BENCH_BUDGET, average_over_seeds

HEAD_COUNTS = (1, 2, 4)


def run_heads_ablation(dataset="yelp", budget=BENCH_BUDGET):
    factories = {
        str(heads): (
            lambda seed, heads=heads: GroupSARecommender(
                GroupSAConfig(num_heads=heads, seed=2020 + seed), budget.training
            )
        )
        for heads in HEAD_COUNTS
    }
    rows = average_over_seeds(factories, dataset, budget)
    return {str(heads): rows[str(heads)]["group"] for heads in HEAD_COUNTS}


def test_bench_ablation_heads(once):
    rows = once(run_heads_ablation)
    print()
    print(
        format_metric_table(
            rows,
            title="Ablation — voting attention heads (yelp, group task)",
            key_header="heads",
        )
    )
    assert set(rows) == {"1", "2", "4"}
    for metrics in rows.values():
        assert 0.0 <= metrics["HR@10"] <= 1.0
