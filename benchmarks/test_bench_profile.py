"""Profiled reference run: top ops, totals, and profiler overhead.

Writes the machine-readable ``BENCH_profile.json`` (unified
``repro.obs`` report envelope) that anchors the perf trajectory: which
ops dominate a GroupSA training epoch, how much wall time the profiler
itself costs when enabled, and — by construction — that the disabled
path is untouched (nothing is patched outside the context manager).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_profile.py -s
"""

import json
import os
import time

from repro.core import GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.obs import (
    OpProfiler,
    attach_scopes,
    format_top_table,
    make_report,
    stats_payload,
    write_report,
)
from repro.training import TrainingConfig
from repro.training.two_stage import build_model, fit_groupsa

REPORT_PATH = os.environ.get("BENCH_PROFILE_JSON", "results/BENCH_profile.json")

WORLD = {"preset": "yelp_like", "scale": 0.005}
TRAINING = TrainingConfig(user_epochs=2, group_epochs=2, seed=0)


def _run(split, config, profiler=None):
    model, batcher = build_model(split, config)
    started = time.perf_counter()
    if profiler is None:
        fit_groupsa(model, split, batcher, TRAINING)
    else:
        attach_scopes(model, root="groupsa")
        with profiler:
            fit_groupsa(model, split, batcher, TRAINING)
    return time.perf_counter() - started


def test_bench_profile():
    world = yelp_like(scale=WORLD["scale"])
    split = split_interactions(world.dataset, rng=0)
    config = GroupSAConfig()

    _run(split, config)  # warm caches so both timed runs are comparable
    unprofiled_s = _run(split, config)
    profiler = OpProfiler()
    profiled_s = _run(split, config, profiler=profiler)

    stats = profiler.stats()
    totals = profiler.totals()
    overhead = {
        "unprofiled_s": unprofiled_s,
        "profiled_s": profiled_s,
        "enabled_overhead_ratio": profiled_s / unprofiled_s,
    }
    report = make_report(
        "op_profile",
        {"totals": totals, "overhead": overhead, **stats_payload(stats, top_k=25)},
        meta={"world": WORLD, "training": {"user_epochs": TRAINING.user_epochs,
                                           "group_epochs": TRAINING.group_epochs}},
    )
    os.makedirs(os.path.dirname(REPORT_PATH) or ".", exist_ok=True)
    write_report(report, REPORT_PATH)

    print("\n" + format_top_table(stats, k=12))
    print(
        f"\nunprofiled {unprofiled_s:.2f}s  profiled {profiled_s:.2f}s  "
        f"(x{overhead['enabled_overhead_ratio']:.2f} enabled overhead)  "
        f"report: {REPORT_PATH}"
    )

    # Acceptance: attention/matmul work is attributed to module scopes.
    matmuls = [s for s in stats if s.name == "matmul" and s.cat == "op"]
    assert matmuls, "no matmul ops recorded in a training run"
    assert any("attention" in s.scope for s in matmuls), (
        "matmul ops were not attributed to attention module scopes"
    )
    assert totals["flops"] > 0
    # Enabled overhead should stay within an order of magnitude; the
    # measured ratio itself is what the JSON tracks over time.
    assert overhead["enabled_overhead_ratio"] < 10.0

    report_back = json.load(open(REPORT_PATH))
    assert report_back["schema"] == "repro.obs/v1"
    assert report_back["kind"] == "op_profile"
