"""Table VIII: impact of the number of negatives per positive N."""

from repro.experiments.hyperparams import format_sweep, sweep_negatives
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table8_negatives(once):
    rows = once(lambda: sweep_negatives("yelp", BENCH_BUDGET, values=(1, 3)))
    print()
    print(format_sweep(rows, "N", "yelp"))
    assert set(rows) == {"1", "3"}
    # Table VIII's message: a small N already works; more negatives do
    # not collapse performance.
    for metrics in rows.values():
        assert metrics["HR@10"] > 0.1
