"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures at the
quick ``BENCH_BUDGET`` (small world, one seed) so the whole suite
finishes in minutes on a CPU; run the harnesses via
``python -m repro.experiments <id>`` for the paper-scale budget.

Each bench prints the regenerated artifact so ``pytest benchmarks/
--benchmark-only -s`` doubles as a report generator.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Benchmark a training-scale function exactly once.

    pytest-benchmark's default calibration would re-run multi-second
    training loops dozens of times; one round is both representative
    and affordable.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    return lambda fn: run_once(benchmark, fn)
