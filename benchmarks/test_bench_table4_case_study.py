"""Table IV: case study of member attention weights (GroupSA vs Group-S)."""

import numpy as np

from repro.experiments.case_study import run_case_study
from repro.experiments.runner import BENCH_BUDGET


def test_bench_table4_case_study(once):
    study = once(lambda: run_case_study("yelp", BENCH_BUDGET))
    print()
    print(study.format())

    models = {row.model for row in study.rows}
    assert models == {"GroupSA", "Group-S"}

    # Weights are a valid distribution over the real members.
    for row in study.rows:
        np.testing.assert_allclose(row.member_weights.sum(), 1.0, atol=1e-6)
        assert (row.member_weights >= 0).all()
        assert 0.0 <= row.score <= 1.0

    # Like Table IV, GroupSA and Group-S distribute attention
    # differently for at least one target item.
    by_item = {}
    for row in study.rows:
        by_item.setdefault(row.item, {})[row.model] = row.member_weights
    differs = any(
        not np.allclose(weights["GroupSA"], weights["Group-S"], atol=1e-3)
        for weights in by_item.values()
        if len(weights) == 2
    )
    assert differs
