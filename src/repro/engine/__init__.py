"""Batched inference engine for production-style serving.

Layered between a trained :class:`~repro.core.groupsa.GroupSA` and the
:class:`~repro.serving.RecommendationService` surface:

- :mod:`repro.engine.score_cache` — blocked user×item score matrix
  (the Section II-F fast path) plus a generic LRU cache;
- :mod:`repro.engine.ann` — IVF approximate-nearest-neighbor candidate
  generation over item embeddings (``EngineConfig.retrieval="ann"``);
- :mod:`repro.engine.batching` — request micro-batching queue;
- :mod:`repro.engine.topk` — vectorized Top-K selection kernels;
- :mod:`repro.engine.telemetry` — latency/counter/occupancy metrics
  backed by :mod:`repro.obs.metrics_registry` (exact histograms,
  Prometheus exposition); request tracing via :mod:`repro.obs.spans`;
- :mod:`repro.engine.service` — the engine tying the stages together;
- :mod:`repro.engine.bench` — direct-vs-engine benchmark harness.
"""

from repro.engine.ann import IVFIndex, default_nlist, recall_at_k
from repro.engine.batching import MicroBatcher
from repro.engine.bench import (
    benchmark_ann_crossover,
    benchmark_user_serving,
    run_closed_loop,
)
from repro.engine.score_cache import LRUCache, ScoreCache
from repro.engine.service import EngineConfig, InferenceEngine
from repro.engine.telemetry import Telemetry
from repro.engine.topk import batch_topk, exclusion_mask, topk_indices

__all__ = [
    "IVFIndex",
    "default_nlist",
    "recall_at_k",
    "MicroBatcher",
    "benchmark_ann_crossover",
    "benchmark_user_serving",
    "run_closed_loop",
    "LRUCache",
    "ScoreCache",
    "EngineConfig",
    "InferenceEngine",
    "Telemetry",
    "batch_topk",
    "exclusion_mask",
    "topk_indices",
]
