"""Serving telemetry: latency histograms, counters, batch occupancy.

Every engine stage records into a shared :class:`Telemetry` instance,
which exports a JSON-serializable snapshot — the observability surface
an operator would scrape.  All methods are thread-safe; the micro-batch
worker and request threads record concurrently.
"""

from __future__ import annotations

import json
import threading
import time
from collections import defaultdict, deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator

# Retain at most this many recent samples per stage for percentiles;
# count/sum/max are exact over the full history.
DEFAULT_MAX_SAMPLES = 8192


def _percentile(samples: list, q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted list."""
    rank = min(len(samples) - 1, max(0, int(round(q / 100.0 * (len(samples) - 1)))))
    return samples[rank]


class _StageStats:
    """Latency accumulator for one named stage."""

    __slots__ = ("count", "total", "max", "samples")

    def __init__(self, max_samples: int) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.samples: Deque[float] = deque(maxlen=max_samples)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)
        self.samples.append(seconds)

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self.samples)
        to_ms = 1000.0
        return {
            "count": self.count,
            "mean_ms": (self.total / self.count) * to_ms,
            "p50_ms": _percentile(ordered, 50) * to_ms,
            "p90_ms": _percentile(ordered, 90) * to_ms,
            "p99_ms": _percentile(ordered, 99) * to_ms,
            "max_ms": self.max * to_ms,
        }


class Telemetry:
    """Thread-safe metrics sink for the inference engine.

    Three primitive kinds:

    - **latency stages** (``time`` / ``record_latency``): histograms
      summarized as mean/p50/p90/p99/max milliseconds;
    - **counters** (``increment``): monotonically increasing integers;
      a ``<name>.hit`` / ``<name>.miss`` pair additionally yields a
      derived ``<name>.hit_rate`` in the snapshot;
    - **batch occupancy** (``record_batch``): sizes of flushed
      micro-batches, summarized as count/mean/max.
    """

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._stages: Dict[str, _StageStats] = {}
        self._counters: Dict[str, int] = defaultdict(int)
        self._batch_sizes = _StageStats(max_samples)

    # -- recording ------------------------------------------------------

    @contextmanager
    def time(self, stage: str) -> Iterator[None]:
        """Context manager timing one occurrence of ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_latency(stage, time.perf_counter() - start)

    def record_latency(self, stage: str, seconds: float) -> None:
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = _StageStats(self._max_samples)
            stats.record(seconds)

    def increment(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[counter] += amount

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes.record(float(size))

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-serializable view of everything recorded so far."""
        with self._lock:
            stages = {name: stats.summary() for name, stats in self._stages.items()}
            counters = dict(self._counters)
            batches = self._batch_sizes
            batch_summary = {
                "count": batches.count,
                "mean_occupancy": (batches.total / batches.count) if batches.count else 0.0,
                "max_occupancy": batches.max,
            }
        derived: Dict[str, float] = {}
        for name in list(counters):
            if name.endswith(".hit"):
                base = name[: -len(".hit")]
                hits = counters[name]
                misses = counters.get(base + ".miss", 0)
                total = hits + misses
                if total:
                    derived[base + ".hit_rate"] = hits / total
        return {
            "stages": stages,
            "counters": counters,
            "rates": derived,
            "batches": batch_summary,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def report(self, meta: dict | None = None) -> dict:
        """The snapshot wrapped in the unified ``repro.obs`` envelope,
        so serving telemetry and training observability artifacts share
        one top-level JSON shape."""
        from repro.obs.report import make_report

        return make_report("serving_telemetry", self.snapshot(), meta=meta)
