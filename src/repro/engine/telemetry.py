"""Serving telemetry: latency histograms, counters, batch occupancy.

Every engine stage records into a shared :class:`Telemetry` instance,
which exports a JSON-serializable snapshot — the observability surface
an operator would scrape.  All methods are thread-safe; the micro-batch
worker and request threads record concurrently.

Since PR 5 the storage is a
:class:`~repro.obs.metrics_registry.MetricsRegistry`: stage latencies
and batch occupancy live in fixed-log-bucket histograms (full history,
no reservoir bias — ``p50/p90/p99`` are exact to within one bucket's
relative error however much traffic flows), counters are plain
registry counters, and the same data additionally exports as
Prometheus text via :meth:`Telemetry.exposition`.  The ``snapshot()``
shape is unchanged from the reservoir era.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.metrics_registry import Histogram, MetricsRegistry

#: Kept for backward compatibility with the reservoir-era constructor
#: signature; log-bucket histograms retain the *full* history, so the
#: value is accepted and ignored.
DEFAULT_MAX_SAMPLES = 8192

#: Registry-name prefix for latency stages; occupancy gets its own name
#: so it never collides with a stage called "occupancy".
_STAGE_PREFIX = "stage."
_OCCUPANCY = "batch.occupancy"

#: Occupancy histogram layout: batch sizes are small integers, so a
#: fine grid from 1 up keeps every size in its own bucket.
_OCCUPANCY_LO = 0.5
_OCCUPANCY_HI = 1e5


def _stage_summary(histogram: Histogram) -> Dict[str, float]:
    to_ms = 1000.0
    return {
        "count": histogram.count,
        "mean_ms": histogram.mean() * to_ms,
        "p50_ms": histogram.percentile(50) * to_ms,
        "p90_ms": histogram.percentile(90) * to_ms,
        "p99_ms": histogram.percentile(99) * to_ms,
        "max_ms": histogram.max * to_ms,
    }


class Telemetry:
    """Thread-safe metrics sink for the inference engine.

    Three primitive kinds:

    - **latency stages** (``time`` / ``record_latency``): log-bucket
      histograms summarized as mean/p50/p90/p99/max milliseconds over
      the full history;
    - **counters** (``increment``): monotonically increasing integers;
      a ``<name>.hit`` / ``<name>.miss`` pair additionally yields a
      derived ``<name>.hit_rate`` in the snapshot;
    - **batch occupancy** (``record_batch``): sizes of flushed
      micro-batches, summarized as count/mean/max.

    The underlying :class:`MetricsRegistry` is exposed as
    :attr:`registry` (shareable with other components, mergeable
    across workers) and as Prometheus text via :meth:`exposition`.
    """

    def __init__(
        self,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        del max_samples  # reservoir-era knob; full history is now kept
        self.registry = registry or MetricsRegistry()
        self._occupancy = self.registry.histogram(
            _OCCUPANCY, lo=_OCCUPANCY_LO, hi=_OCCUPANCY_HI
        )

    # -- recording ------------------------------------------------------

    @contextmanager
    def time(self, stage: str) -> Iterator[None]:
        """Context manager timing one occurrence of ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_latency(stage, time.perf_counter() - start)

    def record_latency(self, stage: str, seconds: float) -> None:
        self.registry.histogram(_STAGE_PREFIX + stage).observe(seconds)

    def increment(self, counter: str, amount: int = 1) -> None:
        self.registry.counter(counter).inc(amount)

    def record_batch(self, size: int) -> None:
        self._occupancy.observe(float(size))

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        instrument = self.registry.counters().get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> dict:
        """JSON-serializable view of everything recorded so far."""
        stages = {
            name[len(_STAGE_PREFIX):]: _stage_summary(histogram)
            for name, histogram in self.registry.histograms().items()
            if name.startswith(_STAGE_PREFIX)
        }
        counters = {
            name: instrument.value
            for name, instrument in self.registry.counters().items()
        }
        batch_summary = {
            "count": self._occupancy.count,
            "mean_occupancy": self._occupancy.mean(),
            "max_occupancy": self._occupancy.max,
        }
        derived: Dict[str, float] = {}
        for name in list(counters):
            if name.endswith(".hit"):
                base = name[: -len(".hit")]
                hits = counters[name]
                misses = counters.get(base + ".miss", 0)
                total = hits + misses
                if total:
                    derived[base + ".hit_rate"] = hits / total
        return {
            "stages": stages,
            "counters": counters,
            "rates": derived,
            "batches": batch_summary,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def exposition(self) -> str:
        """Prometheus text exposition of the underlying registry."""
        return self.registry.exposition()

    def report(self, meta: dict | None = None) -> dict:
        """The snapshot wrapped in the unified ``repro.obs`` envelope,
        so serving telemetry and training observability artifacts share
        one top-level JSON shape."""
        from repro.obs.report import make_report

        return make_report("serving_telemetry", self.snapshot(), meta=meta)
