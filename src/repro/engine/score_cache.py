"""Precomputed score caches for the fast serving path.

Section II-F of the paper avoids the multi-layer voting forward pass by
scoring members individually with the user-item predictor.  That makes
the user×item score matrix *the* serving hot path: once it is resident,
a user Top-K request is a row fetch plus a partition, and a fast group
request is a fancy-index plus an aggregation.

:class:`ScoreCache` materializes that matrix lazily in row blocks.  A
memory budget caps how many blocks stay resident (block-level LRU), so
the cache degrades gracefully on worlds too large to hold densely.

:class:`LRUCache` is the generic bounded map underneath, reused for
ad-hoc group structures keyed by frozen member tuples.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional

import numpy as np

from repro.engine.telemetry import Telemetry
from repro.obs.spans import span

ScoreFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


class LRUCache:
    """Thread-safe least-recently-used map with a fixed capacity.

    ``get`` refreshes recency; ``put`` evicts the stalest entry once
    ``capacity`` is exceeded.  Hit/miss/eviction counts stream into the
    optional :class:`Telemetry` under ``<name>.hit`` / ``.miss`` /
    ``.evict``.
    """

    def __init__(
        self,
        capacity: int,
        telemetry: Optional[Telemetry] = None,
        name: str = "lru",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._telemetry = telemetry
        self._name = name

    def get(self, key: Hashable):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                if self._telemetry:
                    self._telemetry.increment(f"{self._name}.hit")
                return self._entries[key]
        if self._telemetry:
            self._telemetry.increment(f"{self._name}.miss")
        return None

    def peek(self, key: Hashable):
        """Lookup without touching recency or hit/miss counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                if self._telemetry:
                    self._telemetry.increment(f"{self._name}.evict")

    def remove(self, key: Hashable) -> bool:
        """Drop ``key`` outright (not an eviction); True if it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        with self._lock:
            return list(self._entries.keys())


class ScoreCache:
    """Blocked, budgeted user×item score matrix.

    Parameters
    ----------
    score_fn:
        Aligned pairwise scorer, e.g. ``model.score_user_items``.
    num_users, num_items:
        Matrix dimensions.
    block_rows:
        Users per block — the residency and eviction granularity.
    memory_budget_bytes:
        Cap on resident block bytes.  ``None`` keeps every block (the
        default — the dense matrix for these worlds is small).  When
        the budget is smaller than the matrix, least-recently-used
        blocks are dropped and recomputed on demand.
    model_version:
        Version tag stamped on every block computed by this cache.
        Lookups only ever match blocks carrying the *current* version,
        so after :meth:`bump_model_version` a block computed under an
        older model can never serve scores again — hot-swap serving
        relies on this invariant (see docs/online.md).
    """

    def __init__(
        self,
        score_fn: ScoreFn,
        num_users: int,
        num_items: int,
        block_rows: int = 256,
        memory_budget_bytes: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        model_version: int = 0,
    ) -> None:
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self.score_fn = score_fn
        self.num_users = num_users
        self.num_items = num_items
        self.block_rows = min(block_rows, max(1, num_users))
        self.telemetry = telemetry
        self._version = int(model_version)
        block_bytes = self.block_rows * num_items * np.dtype(np.float64).itemsize
        if memory_budget_bytes is None:
            max_blocks = self.num_blocks
        else:
            max_blocks = max(1, memory_budget_bytes // max(1, block_bytes))
        self._blocks = LRUCache(
            capacity=max(1, min(max_blocks, self.num_blocks)),
            telemetry=telemetry,
            name="score_cache",
        )
        self._compute_lock = threading.Lock()

    @property
    def num_blocks(self) -> int:
        return (self.num_users + self.block_rows - 1) // self.block_rows

    @property
    def model_version(self) -> int:
        """Version tag stamped on blocks computed from now on."""
        return self._version

    def bump_model_version(
        self, version: int, score_fn: Optional[ScoreFn] = None
    ) -> None:
        """Move the cache onto ``version`` (and optionally a new scorer).

        Blocks computed under earlier versions become unreachable
        immediately (their keys carry the old version) and are dropped
        eagerly via :meth:`invalidate_version`.
        """
        version = int(version)
        if version <= self._version:
            raise ValueError(
                f"model_version must increase: {version} <= {self._version}"
            )
        previous = self._version
        if score_fn is not None:
            self.score_fn = score_fn
        self._version = version
        self.invalidate_version(previous)

    def invalidate_version(self, version: int) -> int:
        """Drop every resident block tagged with ``version``; returns count."""
        dropped = 0
        for key in self._blocks.keys():
            if key[0] == version and self._blocks.remove(key):
                dropped += 1
        if self.telemetry and dropped:
            self.telemetry.increment("score_cache.invalidated", dropped)
        return dropped

    @property
    def resident_blocks(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------

    def _block_id(self, user: int) -> int:
        return user // self.block_rows

    def _compute_block(self, block_id: int) -> np.ndarray:
        start = block_id * self.block_rows
        stop = min(start + self.block_rows, self.num_users)
        items = np.arange(self.num_items, dtype=np.int64)
        rows = np.empty((stop - start, self.num_items))

        def fill() -> None:
            # One scorer call per row, each over the full item range:
            # BLAS results can drift in the last ulp when the batch
            # shape changes, so scoring row-by-row keeps every cached
            # row bit-identical to a direct full-row scoring call.
            for offset, user in enumerate(range(start, stop)):
                rows[offset] = self.score_fn(
                    np.full(self.num_items, user, dtype=np.int64), items
                )

        with span("score_cache.block_compute", block=block_id, rows=stop - start):
            if self.telemetry:
                with self.telemetry.time("score_cache.block_compute"):
                    fill()
            else:
                fill()
        return rows

    def _get_block(self, block_id: int) -> np.ndarray:
        key = (self._version, block_id)
        block = self._blocks.get(key)
        if block is not None:
            return block
        # One computation at a time: concurrent misses for the same
        # block would otherwise duplicate an expensive forward pass.
        with self._compute_lock:
            block = self._blocks.peek(key)
            if block is None:
                block = self._compute_block(block_id)
                self._blocks.put(key, block)
        return block

    # ------------------------------------------------------------------

    def scores_for_user(self, user: int) -> np.ndarray:
        """All item scores for one user (a matrix row, copied)."""
        if not 0 <= user < self.num_users:
            raise IndexError(f"user {user} out of range [0, {self.num_users})")
        block = self._get_block(self._block_id(user))
        return block[user - self._block_id(user) * self.block_rows].copy()

    def scores_for_users(self, users: np.ndarray) -> np.ndarray:
        """Rows for several users as an (n, num_items) matrix."""
        users = np.asarray(users, dtype=np.int64)
        if users.size == 0:
            return np.empty((0, self.num_items))
        if users.min() < 0 or users.max() >= self.num_users:
            raise IndexError(f"user ids out of range [0, {self.num_users})")
        with span("score_cache.lookup", rows=int(users.size)) as lookup:
            out = np.empty((users.size, self.num_items))
            misses = 0
            for block_id in np.unique(users // self.block_rows):
                if (
                    lookup is not None
                    and self._blocks.peek((self._version, int(block_id))) is None
                ):
                    misses += 1
                block = self._get_block(int(block_id))
                rows = np.nonzero(users // self.block_rows == block_id)[0]
                out[rows] = block[users[rows] - int(block_id) * self.block_rows]
            if lookup is not None:
                lookup.set_attr("hit", misses == 0)
                lookup.set_attr("blocks_missed", misses)
        return out

    def warm(self, users: Optional[np.ndarray] = None) -> None:
        """Materialize the blocks covering ``users`` (default: all).

        With a budget smaller than the matrix only the most recently
        warmed blocks stay resident.
        """
        if users is None:
            block_ids = range(self.num_blocks)
        else:
            users = np.asarray(users, dtype=np.int64)
            block_ids = (int(b) for b in np.unique(users // self.block_rows))
        for block_id in block_ids:
            self._get_block(block_id)
