"""IVF approximate-nearest-neighbor retrieval over item embeddings.

The exhaustive serving path scores the *whole* catalog per request —
O(items) forever, no matter how warm the caches are.  This module is
the sub-linear alternative: an inverted-file (IVF) index in the style
of FAISS's ``IndexIVFFlat``, pure numpy.

- A k-means **coarse quantizer** is trained on the item-embedding
  table; each item is assigned to its nearest centroid (L2), giving
  one **inverted list** of item positions per centroid.
- Each list's vectors are stored as a **contiguous block**, so probing
  a list is one small BLAS matvec — the same per-item cost as the
  brute-force scan.  Without this, pool gathering via fancy indexing
  costs 3-4x per item and the index never beats brute force.
- A query probes the ``nprobe`` lists whose centroids have the highest
  inner product with the query vector, scores their members, and keeps
  the best ``num_candidates`` — O((nprobe/nlist)·items·d) instead of
  O(items·d).
- The caller reranks the surviving few hundred candidates with the
  *exact* model scorer and the existing
  :func:`repro.engine.topk.topk_indices` kernel; candidates are handed
  over in ascending position order, so the ordering contract
  (descending score, ascending index among ties) is preserved **on the
  candidate set**.

The paper's Section II-F fast path reduces a group request to a mean
over member score vectors, so a single item index serves user, group,
and ad-hoc traffic alike: the query vector is the user embedding, or
the mean of the member embeddings.

Determinism: everything is seeded (k-means init and empty-cluster
reseeding) — two builds over the same table with the same knobs give
identical lists, which is what the sharded workers rely on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.engine.topk import topk_indices

__all__ = ["IVFIndex", "default_nlist", "kmeans", "recall_at_k"]


def default_nlist(num_vectors: int) -> int:
    """The usual IVF heuristic: about sqrt(n) coarse centroids."""
    return max(1, min(num_vectors, int(round(float(np.sqrt(num_vectors))))))


def assign_to_centroids(
    vectors: np.ndarray, centroids: np.ndarray, chunk: int = 8192
) -> np.ndarray:
    """Nearest centroid (L2) per vector, chunked so the distance matrix
    never materializes at full (n, nlist) height on big catalogs."""
    # |x - c|^2 = |x|^2 - 2 x.c + |c|^2; the |x|^2 term is constant per
    # row and cannot change the argmin, so it is dropped.
    c_sq = np.einsum("ij,ij->i", centroids, centroids)
    labels = np.empty(vectors.shape[0], dtype=np.int64)
    for start in range(0, vectors.shape[0], chunk):
        block = vectors[start : start + chunk]
        distances = c_sq - 2.0 * (block @ centroids.T)
        labels[start : start + chunk] = np.argmin(distances, axis=1)
    return labels


def kmeans(
    vectors: np.ndarray,
    k: int,
    iters: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """Seeded Lloyd's k-means; returns the (k, d) centroid matrix.

    Initialization samples ``k`` distinct data points; a cluster that
    empties out is reseeded to a random point so every centroid stays
    live (an empty inverted list wastes a probe).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    centroids = vectors[rng.choice(n, size=k, replace=False)].copy()
    for __ in range(iters):
        labels = assign_to_centroids(vectors, centroids)
        for j in range(k):
            members = labels == j
            if members.any():
                centroids[j] = vectors[members].mean(axis=0)
            else:
                centroids[j] = vectors[int(rng.integers(n))]
    return centroids


def recall_at_k(approx: np.ndarray, exact: np.ndarray) -> float:
    """|approx ∩ exact| / |exact| — 1.0 when the ANN list is perfect."""
    exact = np.asarray(exact)
    if exact.size == 0:
        return 1.0
    return float(np.isin(exact, np.asarray(approx)).sum()) / float(exact.size)


class IVFIndex:
    """Inverted-file index over a fixed (n, d) vector table.

    Memory is one reordered copy of the table (per-list contiguous
    blocks) plus the position arrays — the input table itself is not
    retained.

    Parameters
    ----------
    vectors:
        Item vectors, one row per catalog position (memmap-backed
        tables welcome; rows are copied into the list blocks).
    nlist:
        Coarse centroids / inverted lists; default ``~sqrt(n)``.
    nprobe:
        Default lists probed per query (overridable per call).
    seed, kmeans_iters:
        Quantizer training knobs; same seed => same index.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        seed: int = 0,
        kmeans_iters: int = 10,
    ) -> None:
        vectors = np.ascontiguousarray(np.asarray(vectors, dtype=np.float64))
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        if vectors.shape[0] == 0:
            raise ValueError("cannot index an empty vector table")
        n, dim = vectors.shape
        nlist_was_default = nlist is None
        if nlist is None:
            nlist = default_nlist(n)
        nlist = int(nlist)
        if not 1 <= nlist <= n:
            raise ValueError(f"nlist must be in [1, {n}], got {nlist}")
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self._num_vectors = n
        self._dim = dim
        self.nlist = nlist
        self.nprobe = int(nprobe)
        # Build-time knobs retained so rebuild() reproduces the config.
        self._requested_nlist = None if nlist_was_default else nlist
        self._seed = int(seed)
        self._kmeans_iters = int(kmeans_iters)
        self.centroids = kmeans(vectors, nlist, iters=kmeans_iters, seed=seed)
        labels = assign_to_centroids(vectors, self.centroids)
        # np.nonzero yields ascending positions, so each inverted list
        # is sorted ascending; its block holds the same rows in the
        # same order, contiguously.
        self.lists: List[np.ndarray] = []
        self.blocks: List[np.ndarray] = []
        for j in range(nlist):
            members = np.nonzero(labels == j)[0].astype(np.int64)
            self.lists.append(members)
            self.blocks.append(np.ascontiguousarray(vectors[members]))

    # -- refresh ---------------------------------------------------------

    def rebuild(self, vectors: np.ndarray) -> "IVFIndex":
        """A fresh index over ``vectors`` with this index's config/seed.

        Returns a *new* :class:`IVFIndex` — this one is untouched and
        keeps serving until the caller swaps the reference, which is
        what lets hot-swap rebuild off-thread.  An explicit ``nlist``
        is carried over (clamped to the new table size); a defaulted
        one is re-derived as ``~sqrt(n)`` for the new catalog.
        """
        requested = self._requested_nlist
        if requested is not None:
            requested = min(requested, int(np.asarray(vectors).shape[0]))
        return IVFIndex(
            vectors,
            nlist=requested,
            nprobe=self.nprobe,
            seed=self._seed,
            kmeans_iters=self._kmeans_iters,
        )

    # -- introspection ---------------------------------------------------

    @property
    def num_vectors(self) -> int:
        return self._num_vectors

    @property
    def dim(self) -> int:
        return self._dim

    def list_sizes(self) -> np.ndarray:
        return np.array([lst.size for lst in self.lists], dtype=np.int64)

    def stats(self) -> dict:
        sizes = self.list_sizes()
        return {
            "num_vectors": self.num_vectors,
            "dim": self.dim,
            "nlist": self.nlist,
            "nprobe": self.nprobe,
            "list_size_min": int(sizes.min()),
            "list_size_mean": float(sizes.mean()),
            "list_size_max": int(sizes.max()),
        }

    # -- retrieval -------------------------------------------------------

    def probe_order(self, query: np.ndarray) -> np.ndarray:
        """Centroid ids by descending query·centroid, ties ascending id."""
        query = self._check_query(query)
        return topk_indices(self.centroids @ query, self.nlist)

    def _gather(
        self,
        query: np.ndarray,
        nprobe: int,
        exclude_mask: Optional[np.ndarray],
        min_results: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scored candidate pool: (positions, inner products), probe order.

        Probes ``nprobe`` lists; when fewer than ``min_results`` valid
        positions came back (heavy exclusion, tiny lists), keeps
        probing further lists — up to all of them — so the caller's
        pool can only be short when the whole catalog is.
        """
        order = self.probe_order(query)
        position_chunks: List[np.ndarray] = []
        score_chunks: List[np.ndarray] = []
        gathered = 0
        probed = 0
        for centroid in order:
            if probed >= nprobe and gathered >= min_results:
                break
            probed += 1
            members = self.lists[int(centroid)]
            if members.size == 0:
                continue
            scores = self.blocks[int(centroid)] @ query
            if exclude_mask is not None:
                valid = ~exclude_mask[members]
                if not valid.all():
                    members = members[valid]
                    scores = scores[valid]
            if members.size:
                position_chunks.append(members)
                score_chunks.append(scores)
                gathered += members.size
        if not position_chunks:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return np.concatenate(position_chunks), np.concatenate(score_chunks)

    def candidates(
        self,
        query: np.ndarray,
        num_candidates: int,
        nprobe: Optional[int] = None,
        exclude_mask: Optional[np.ndarray] = None,
        min_results: int = 0,
    ) -> np.ndarray:
        """Candidate positions for one query, **ascending**.

        Probes ``nprobe`` lists, drops excluded positions, and keeps
        the ``num_candidates`` best by inner product.  When the probed
        pool holds fewer than ``min_results`` valid positions, further
        lists are probed (up to all of them), so a caller asking for at
        least ``k`` candidates gets ``min(k, num_valid)`` — the same
        shrinking-pool contract the exhaustive kernel has.

        The ascending order is deliberate: downstream exact reranking
        with :func:`~repro.engine.topk.topk_indices` then breaks score
        ties by ascending position — i.e. ascending (global) item id —
        exactly like the exhaustive path and the cross-shard merge.
        (Inner-product ties at the truncation boundary itself resolve
        in probe order, not position order.)
        """
        query = self._check_query(query)
        nprobe = self._check_retrieval(num_candidates, nprobe, exclude_mask)
        positions, scores = self._gather(query, nprobe, exclude_mask, min_results)
        if positions.size > num_candidates:
            positions = positions[topk_indices(scores, num_candidates)]
        return np.sort(positions)

    def search(
        self,
        query: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
        exclude_mask: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate inner-product Top-K: (positions, scores), best
        first, score ties broken by ascending position.

        With ``nprobe == nlist`` every list is probed, making the
        result the exhaustive inner-product Top-K (identical whenever
        scores at the boundary are tie-free).
        """
        k = int(k)
        query = self._check_query(query)
        nprobe = self._check_retrieval(max(k, 1), nprobe, exclude_mask)
        positions, scores = self._gather(query, nprobe, exclude_mask, min_results=k)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        if positions.size > k:
            selected = topk_indices(scores, k)
            positions, scores = positions[selected], scores[selected]
        # Re-rank the k survivors in ascending-position order so the
        # returned ordering honors the ascending-index tie contract.
        ascending = np.argsort(positions)
        positions, scores = positions[ascending], scores[ascending]
        chosen = topk_indices(scores, k)
        return positions[chosen], scores[chosen]

    # -- validation ------------------------------------------------------

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape != (self._dim,):
            raise ValueError(
                f"query must have {self._dim} dimensions, got {query.shape}"
            )
        return query

    def _check_retrieval(
        self,
        num_candidates: int,
        nprobe: Optional[int],
        exclude_mask: Optional[np.ndarray],
    ) -> int:
        if num_candidates < 1:
            raise ValueError(f"num_candidates must be >= 1, got {num_candidates}")
        if exclude_mask is not None and exclude_mask.shape != (self._num_vectors,):
            raise ValueError(
                f"exclude_mask shape {exclude_mask.shape} does not match "
                f"index size ({self._num_vectors},)"
            )
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        return max(1, min(nprobe, self.nlist))
