"""Request micro-batching: coalesce concurrent requests into one pass.

Per-member scoring dominates group-serving cost (SIGR, AGREE), so the
win at serving time is amortization: requests that arrive together are
flushed together, and the handler turns each flush into a small number
of vectorized forward passes instead of one per request.

:class:`MicroBatcher` owns a ``queue.Queue`` and a single worker
thread.  ``submit`` returns a :class:`concurrent.futures.Future`; the
worker drains up to ``max_batch_size`` requests per flush, waiting at
most ``flush_interval`` seconds for stragglers once the first request
of a batch has arrived (``0`` = greedy: take whatever is queued, never
wait).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.engine.telemetry import Telemetry
from repro.obs.spans import capture_context, record_span, span, use_span

# Handler contract: payloads in, one result per payload, same order.
BatchHandler = Callable[[Sequence[Any]], Sequence[Any]]

_SHUTDOWN = object()


def _set_result_safe(future: Future, result: Any) -> None:
    """Resolve without racing close(): a future that was already failed
    at shutdown absorbs a late worker result instead of crashing the
    worker thread."""
    try:
        future.set_result(result)
    except InvalidStateError:
        pass


def _set_exception_safe(future: Future, error: BaseException) -> None:
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass


@dataclass
class _Request:
    payload: Any
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    # Submitting thread's span, captured so worker-side spans re-parent
    # onto the request's trace (None when tracing is off).
    span: Any = field(default_factory=capture_context)


class MicroBatcher:
    """Coalesce submitted payloads into batched handler calls.

    Parameters
    ----------
    handler:
        Called on the worker thread with a list of payloads; must
        return one result per payload in order.  An exception fails
        every future in the flush.
    max_batch_size:
        Flush as soon as this many requests are pending.
    flush_interval:
        Seconds to wait for more requests after the first one of a
        batch arrives.  ``0.0`` means greedy draining: anything already
        queued joins the flush, but the worker never sleeps waiting.
    autostart:
        Start the worker immediately.  Pass ``False`` to stage
        requests first (deterministic coalescing in tests) and call
        :meth:`start` later.
    """

    def __init__(
        self,
        handler: BatchHandler,
        max_batch_size: int = 64,
        flush_interval: float = 0.0,
        telemetry: Optional[Telemetry] = None,
        autostart: bool = True,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if flush_interval < 0:
            raise ValueError(f"flush_interval must be >= 0, got {flush_interval}")
        self.handler = handler
        self.max_batch_size = max_batch_size
        self.flush_interval = flush_interval
        self.telemetry = telemetry
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        # The batch the worker is currently executing; close() fails
        # these futures when the worker never comes back.
        self._inflight: Optional[List[_Request]] = None
        if autostart:
            self.start()

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._worker is not None:
            return
        self._worker = threading.Thread(
            target=self._run, name="microbatcher-worker", daemon=True
        )
        self._worker.start()

    def submit(self, payload: Any) -> "Future":
        """Enqueue one payload; resolve its result via the future."""
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        request = _Request(payload)
        self._queue.put(request)
        return request.future

    def close(self, timeout: float = 5.0) -> None:
        """Drain outstanding requests, then stop the worker.

        A healthy worker finishes its current flush, drains what is
        queued and exits.  If the worker does not stop within
        ``timeout`` seconds (a wedged handler), every undrained future
        — the in-flight batch and everything still queued — is failed
        with ``RuntimeError`` so no caller blocks forever on
        ``future.result()``.  The wedged daemon thread itself is
        abandoned; if its handler ever returns, the already-failed
        futures absorb the late results harmlessly.
        """
        if self._closed:
            return
        self._closed = True
        if self._worker is None:
            return
        self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():
            error = RuntimeError(
                f"MicroBatcher worker did not stop within {timeout}s; "
                "request abandoned at shutdown"
            )
            inflight = self._inflight
            if inflight is not None:
                for request in inflight:
                    _set_exception_safe(request.future, error)
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _SHUTDOWN:
                    _set_exception_safe(item.future, error)
        self._worker = None

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _collect(self) -> Optional[List[_Request]]:
        """Block for the first request, then coalesce a batch."""
        first = self._queue.get()
        if first is _SHUTDOWN:
            return None
        batch = [first]
        deadline = time.perf_counter() + self.flush_interval
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Keep the sentinel semantics: finish this flush, exit next.
                self._queue.put(_SHUTDOWN)
                break
            batch.append(item)
        return batch

    def _handle(self, batch: List[_Request], batch_parent: Any) -> Sequence[Any]:
        """Run the handler under the flush's span (no-op when untraced)."""
        payloads = [r.payload for r in batch]
        if batch_parent is None:
            return self.handler(payloads)
        with use_span(batch_parent):
            with span("batch.execute", batch_size=len(batch)) as flush_span:
                if flush_span is not None:
                    traces = {r.span.trace_id for r in batch if r.span is not None}
                    flush_span.set_attr("traces", sorted(traces))
                return self.handler(payloads)

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            now = time.perf_counter()
            if self.telemetry:
                self.telemetry.record_batch(len(batch))
                self.telemetry.increment("batch.flushes")
                self.telemetry.increment("batch.requests", len(batch))
                for request in batch:
                    self.telemetry.record_latency(
                        "batch.queue_wait", now - request.enqueued_at
                    )
            # Per-request queue-wait spans, parented onto each request's
            # captured trace context; the shared flush span is parented
            # onto the first traced request and carries the full trace
            # list so the other participants stay correlated.
            batch_parent = None
            for request in batch:
                if request.span is not None:
                    if batch_parent is None:
                        batch_parent = request.span
                    record_span(
                        "microbatch.wait",
                        request.span,
                        request.enqueued_at,
                        now - request.enqueued_at,
                    )
            self._inflight = batch
            try:
                if self.telemetry:
                    with self.telemetry.time("batch.execute"):
                        results = self._handle(batch, batch_parent)
                else:
                    results = self._handle(batch, batch_parent)
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"handler returned {len(results)} results "
                        f"for {len(batch)} payloads"
                    )
            except Exception as error:  # noqa: BLE001 — forwarded to futures
                for request in batch:
                    _set_exception_safe(request.future, error)
                self._inflight = None
                continue
            for request, result in zip(batch, results):
                _set_result_safe(request.future, result)
            self._inflight = None
