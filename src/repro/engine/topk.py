"""Vectorized Top-K selection kernels.

The seed's Top-K path built the candidate list with a Python loop and
ran a full ``argsort`` per request.  These kernels keep the exact same
ordering contract — descending score, ties broken by ascending index —
but select with :func:`numpy.argpartition`, so the cost is
O(n + k log k) instead of O(n log n) plus interpreter overhead.

Tie handling matters for bit-identical results: ``argpartition`` picks
an *arbitrary* subset among boundary ties, so the kernel partitions
first, then resolves the boundary explicitly — everything strictly
above the k-th score is kept, and the remaining slots are filled from
the threshold ties in ascending index order, which is exactly what a
stable descending argsort would have produced.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def topk_indices(
    scores: np.ndarray,
    k: int,
    exclude_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Indices of the Top-K scores, best first, ties by ascending index.

    Parameters
    ----------
    scores:
        1-D array of scores, one per candidate position.  NaN entries
        are rejected with ``ValueError``: NaN compares false against
        everything, so it would silently corrupt both the partition
        threshold and the tie-break ordering instead of failing loudly.
    k:
        Number of positions to return; fewer when the candidate pool
        (after exclusion) is smaller.
    exclude_mask:
        Optional boolean array, True where a position must never be
        returned regardless of its score.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    if np.isnan(scores).any():
        raise ValueError("scores must not contain NaN")
    size = scores.size
    if k <= 0 or size == 0:
        return np.empty(0, dtype=np.int64)

    if exclude_mask is not None:
        exclude_mask = np.asarray(exclude_mask, dtype=bool)
        if exclude_mask.shape != scores.shape:
            raise ValueError(
                f"exclude_mask shape {exclude_mask.shape} does not match "
                f"scores shape {scores.shape}"
            )
        num_valid = size - int(exclude_mask.sum())
        if num_valid == 0:
            return np.empty(0, dtype=np.int64)
        masked = np.where(exclude_mask, -np.inf, scores)
    else:
        num_valid = size
        masked = scores

    keep = min(k, num_valid)
    if keep >= size:
        # Partition cannot help; a stable full sort is already optimal.
        order = np.argsort(-masked, kind="stable")
        return order[:keep].astype(np.int64)

    part = np.argpartition(-masked, keep - 1)[:keep]
    threshold = masked[part].min()
    above = np.nonzero(masked > threshold)[0]
    # Strictly-above entries sorted by (-score, index); lexsort keys are
    # least-significant first.
    above = above[np.lexsort((above, -masked[above]))]
    need = keep - above.size
    if need > 0:
        at_threshold = masked == threshold
        if exclude_mask is not None:
            # Excluded positions share the -inf sentinel, so when every
            # valid score is itself -inf the threshold ties would
            # include excluded items; resolve ties against validity,
            # not the sentinel value.
            at_threshold &= ~exclude_mask
        ties = np.nonzero(at_threshold)[0][:need]
        return np.concatenate([above, ties]).astype(np.int64)
    return above.astype(np.int64)


def batch_topk(
    score_matrix: np.ndarray,
    k: int,
    exclude_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> List[np.ndarray]:
    """Row-wise :func:`topk_indices` over a (B, n) score matrix."""
    score_matrix = np.asarray(score_matrix, dtype=np.float64)
    if score_matrix.ndim != 2:
        raise ValueError(f"score_matrix must be 2-D, got shape {score_matrix.shape}")
    results = []
    for row_index in range(score_matrix.shape[0]):
        mask = exclude_masks[row_index] if exclude_masks is not None else None
        results.append(topk_indices(score_matrix[row_index], k, mask))
    return results


def exclusion_mask(num_items: int, exclude) -> Optional[np.ndarray]:
    """Boolean exclusion mask from an iterable of item ids (None if empty).

    Accepts any iterable of ids — list, set, tuple, numpy array.  The
    emptiness check is by element count, never by truthiness: ``if not
    exclude`` on a multi-element ndarray raises the ambiguous-truth
    ``ValueError``.
    """
    if exclude is None:
        return None
    ids = np.fromiter((int(i) for i in exclude), dtype=np.int64)
    if ids.size == 0:
        return None
    mask = np.zeros(num_items, dtype=bool)
    mask[ids] = True
    return mask
