"""Serving benchmark harness: direct vs engine-backed Top-K.

Measures closed-loop requests/second and latency percentiles so the
engine's speedup is a recorded number, not an assertion.  Used by the
``repro serve-bench`` CLI command and
``benchmarks/test_bench_engine_throughput.py``.

Also home to :func:`benchmark_ann_crossover`, the recall@K-vs-latency
curve that measures the catalog size past which IVF candidate
generation beats the brute-force inner-product Top-K.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.engine.ann import IVFIndex, recall_at_k
from repro.engine.topk import topk_indices


def latency_summary(latencies: Sequence[float], elapsed: float) -> dict:
    """Throughput plus latency percentiles for one request stream."""
    ordered = np.sort(np.asarray(latencies, dtype=np.float64))
    count = ordered.size

    def pct(q: float) -> float:
        return float(ordered[min(count - 1, int(round(q / 100.0 * (count - 1))))])

    return {
        "requests": int(count),
        "elapsed_s": float(elapsed),
        "rps": float(count / elapsed) if elapsed > 0 else float("inf"),
        "p50_ms": pct(50) * 1000.0,
        "p99_ms": pct(99) * 1000.0,
        "mean_ms": float(ordered.mean()) * 1000.0,
    }


def run_closed_loop(
    request_fn: Callable[[int], object],
    num_requests: int,
    clients: int = 1,
) -> dict:
    """Drive ``request_fn(i)`` for every request index, timing each.

    ``clients`` > 1 spreads the indices over that many threads, so a
    batched backend sees genuinely concurrent submitters.
    """
    latencies: List[float] = [0.0] * num_requests

    def drive(index: int) -> None:
        start = time.perf_counter()
        request_fn(index)
        latencies[index] = time.perf_counter() - start

    wall_start = time.perf_counter()
    if clients <= 1:
        for index in range(num_requests):
            drive(index)
    else:
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(drive, range(num_requests)))
    elapsed = time.perf_counter() - wall_start
    return latency_summary(latencies, elapsed)


def benchmark_user_serving(
    service,
    engine,
    users: Sequence[int],
    k: int = 10,
    clients: int = 8,
    warm: bool = True,
) -> dict:
    """Compare direct vs engine-backed user Top-K on the same requests.

    ``service`` must be a direct-mode
    :class:`~repro.serving.RecommendationService` (its ``engine``
    attribute unset); ``engine`` an
    :class:`~repro.engine.service.InferenceEngine` over the same
    checkpoint.  Returns a JSON-serializable report.
    """
    users = [int(u) for u in users]
    direct = run_closed_loop(
        lambda i: service.recommend_for_user(users[i], k=k), len(users)
    )
    if warm:
        engine.warm(np.asarray(users, dtype=np.int64))
    engine_side = run_closed_loop(
        lambda i: engine.topk_user(users[i], k=k), len(users), clients=clients
    )
    return {
        "k": k,
        "clients": clients,
        "warm": warm,
        "direct": direct,
        "engine": engine_side,
        "speedup_rps": engine_side["rps"] / direct["rps"] if direct["rps"] else 0.0,
        "telemetry": engine.telemetry_snapshot(),
    }


def synthetic_item_vectors(
    num_items: int, dim: int, mode: str = "clustered", seed: int = 0
) -> np.ndarray:
    """Benchmark worlds for the ANN crossover curve.

    ``clustered`` mimics trained embedding tables (items concentrate
    around latent "taste" centers — IVF's friendly case); ``uniform``
    is isotropic Gaussian noise with no cluster structure at all —
    IVF's adversarial case, which is why the recall floor is asserted
    on both.
    """
    rng = np.random.default_rng(seed)
    if mode == "uniform":
        return rng.standard_normal((num_items, dim))
    if mode == "clustered":
        num_centers = max(4, num_items // 256)
        centers = 3.0 * rng.standard_normal((num_centers, dim))
        assignment = rng.integers(0, num_centers, size=num_items)
        return centers[assignment] + 0.5 * rng.standard_normal((num_items, dim))
    raise ValueError(f"unknown mode '{mode}' (choose 'clustered' or 'uniform')")


# Fraction of the inverted lists probed per benchmark world.  The
# clustered world concentrates the Top-K into few lists, so a quarter
# suffices; the structure-free uniform world spreads it out and needs
# half.  The floor keeps small catalogs (where nlist is tiny) above
# the 0.95 recall bar at negligible cost.
_AUTO_NPROBE_DIVISOR = {"clustered": 4, "uniform": 2}
_AUTO_NPROBE_FLOOR = 48


def auto_nprobe(mode: str, nlist: int) -> int:
    """Per-world probe budget used when the caller does not pin one."""
    divisor = _AUTO_NPROBE_DIVISOR.get(mode, 2)
    return min(nlist, max(_AUTO_NPROBE_FLOOR, nlist // divisor))


def benchmark_ann_crossover(
    catalog_sizes: Sequence[int],
    dim: int = 32,
    k: int = 10,
    num_queries: int = 100,
    nprobe: Optional[int] = None,
    modes: Sequence[str] = ("clustered", "uniform"),
    seed: int = 0,
) -> dict:
    """Recall@K and per-query latency, brute force vs IVF, per catalog size.

    For every (mode, size) cell: build an :class:`IVFIndex`, run the
    same queries through a brute-force inner-product Top-K (full
    matrix-vector product + exact kernel) and through ANN candidate
    generation + exact rerank, and record mean per-query latency plus
    mean recall@K against the brute-force lists.  ``crossover_items``
    per mode is the smallest measured catalog size where ANN is
    faster; brute force keeps winning below it because probing
    overhead dominates tiny catalogs.

    ``nprobe=None`` picks a per-cell budget via :func:`auto_nprobe`;
    passing an int pins that budget for every cell.
    """
    points = {mode: [] for mode in modes}
    for mode in modes:
        for num_items in catalog_sizes:
            vectors = synthetic_item_vectors(int(num_items), dim, mode, seed)
            queries = np.random.default_rng(seed + 1).standard_normal(
                (num_queries, dim)
            )
            build_start = time.perf_counter()
            index = IVFIndex(vectors, seed=seed)
            build_s = time.perf_counter() - build_start
            cell_nprobe = (
                auto_nprobe(mode, index.nlist) if nprobe is None else int(nprobe)
            )

            recalls = np.empty(num_queries)
            brute_elapsed = ann_elapsed = 0.0
            for qi, query in enumerate(queries):
                start = time.perf_counter()
                exact = topk_indices(vectors @ query, k)
                brute_elapsed += time.perf_counter() - start
                start = time.perf_counter()
                approx, __ = index.search(query, k, nprobe=cell_nprobe)
                ann_elapsed += time.perf_counter() - start
                recalls[qi] = recall_at_k(approx, exact)
            points[mode].append(
                {
                    "num_items": int(num_items),
                    "nlist": index.nlist,
                    "nprobe": cell_nprobe,
                    "build_s": build_s,
                    "brute_ms": brute_elapsed / num_queries * 1000.0,
                    "ann_ms": ann_elapsed / num_queries * 1000.0,
                    "speedup": brute_elapsed / ann_elapsed if ann_elapsed else 0.0,
                    "recall_at_k": float(recalls.mean()),
                    "recall_min": float(recalls.min()),
                }
            )
    crossover = {}
    for mode in modes:
        faster = [p["num_items"] for p in points[mode] if p["ann_ms"] < p["brute_ms"]]
        crossover[mode] = min(faster) if faster else None
    return {
        "k": k,
        "dim": dim,
        "num_queries": num_queries,
        "catalog_sizes": [int(s) for s in catalog_sizes],
        "points": points,
        "crossover_items": crossover,
    }
