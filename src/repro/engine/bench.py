"""Serving benchmark harness: direct vs engine-backed Top-K.

Measures closed-loop requests/second and latency percentiles so the
engine's speedup is a recorded number, not an assertion.  Used by the
``repro serve-bench`` CLI command and
``benchmarks/test_bench_engine_throughput.py``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence

import numpy as np


def latency_summary(latencies: Sequence[float], elapsed: float) -> dict:
    """Throughput plus latency percentiles for one request stream."""
    ordered = np.sort(np.asarray(latencies, dtype=np.float64))
    count = ordered.size

    def pct(q: float) -> float:
        return float(ordered[min(count - 1, int(round(q / 100.0 * (count - 1))))])

    return {
        "requests": int(count),
        "elapsed_s": float(elapsed),
        "rps": float(count / elapsed) if elapsed > 0 else float("inf"),
        "p50_ms": pct(50) * 1000.0,
        "p99_ms": pct(99) * 1000.0,
        "mean_ms": float(ordered.mean()) * 1000.0,
    }


def run_closed_loop(
    request_fn: Callable[[int], object],
    num_requests: int,
    clients: int = 1,
) -> dict:
    """Drive ``request_fn(i)`` for every request index, timing each.

    ``clients`` > 1 spreads the indices over that many threads, so a
    batched backend sees genuinely concurrent submitters.
    """
    latencies: List[float] = [0.0] * num_requests

    def drive(index: int) -> None:
        start = time.perf_counter()
        request_fn(index)
        latencies[index] = time.perf_counter() - start

    wall_start = time.perf_counter()
    if clients <= 1:
        for index in range(num_requests):
            drive(index)
    else:
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(drive, range(num_requests)))
    elapsed = time.perf_counter() - wall_start
    return latency_summary(latencies, elapsed)


def benchmark_user_serving(
    service,
    engine,
    users: Sequence[int],
    k: int = 10,
    clients: int = 8,
    warm: bool = True,
) -> dict:
    """Compare direct vs engine-backed user Top-K on the same requests.

    ``service`` must be a direct-mode
    :class:`~repro.serving.RecommendationService` (its ``engine``
    attribute unset); ``engine`` an
    :class:`~repro.engine.service.InferenceEngine` over the same
    checkpoint.  Returns a JSON-serializable report.
    """
    users = [int(u) for u in users]
    direct = run_closed_loop(
        lambda i: service.recommend_for_user(users[i], k=k), len(users)
    )
    if warm:
        engine.warm(np.asarray(users, dtype=np.int64))
    engine_side = run_closed_loop(
        lambda i: engine.topk_user(users[i], k=k), len(users), clients=clients
    )
    return {
        "k": k,
        "clients": clients,
        "warm": warm,
        "direct": direct,
        "engine": engine_side,
        "speedup_rps": engine_side["rps"] / direct["rps"] if direct["rps"] else 0.0,
        "telemetry": engine.telemetry_snapshot(),
    }
