"""The inference engine: batched Top-K serving over a trained GroupSA.

Sits between the model and :class:`repro.serving.RecommendationService`.
Three request kinds flow through one micro-batch queue:

- ``user`` — answered from the precomputed score-matrix cache
  (Section II-F fast path): a row fetch, an exclusion mask and a
  partition;
- ``group`` — dataset groups; concurrent requests are concatenated
  into a single chunked ``score_group_items`` forward pass;
- ``adhoc`` — serving-time member lists; the padded batch structure is
  LRU-cached per frozen member tuple, scoring is vectorized over the
  candidate items.

All stages record into a shared :class:`Telemetry`; snapshots expose
per-stage latency, cache hit rates and batch occupancy.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adhoc import build_adhoc_batch
from repro.core.groupsa import GroupSA
from repro.data.dataset import GroupRecommendationDataset
from repro.data.loaders import GroupBatch, GroupBatcher
from repro.engine.ann import IVFIndex
from repro.engine.batching import MicroBatcher
from repro.engine.score_cache import LRUCache, ScoreCache
from repro.engine.telemetry import Telemetry
from repro.engine.topk import exclusion_mask, topk_indices
from repro.obs.spans import span

TopK = Tuple[np.ndarray, np.ndarray]  # (item ids, scores), best first
VersionedTopK = Tuple[np.ndarray, np.ndarray, int]  # + model_version served


#: Legal values for :attr:`EngineConfig.retrieval`.
RETRIEVAL_MODES = ("exhaustive", "ann")


@dataclass
class EngineConfig:
    """Knobs for the inference engine.

    Attributes
    ----------
    max_batch_size:
        Requests coalesced into one flush at most.
    flush_interval:
        Seconds the worker waits for stragglers after the first request
        of a batch; ``0.0`` drains greedily without sleeping.
    score_block_rows:
        Users per score-cache block (residency granularity).
    score_cache_budget_mb:
        Resident score-cache budget in MiB; ``None`` keeps the whole
        user×item matrix.
    adhoc_cache_size:
        LRU capacity for ad-hoc group structures (frozen member tuples).
    warm_on_start:
        Precompute the score cache when the engine is constructed.
    retrieval:
        ``"exhaustive"`` (default) scores the full catalog per request,
        bit-identical to the pre-ANN engine.  ``"ann"`` generates a
        candidate set from an :class:`~repro.engine.ann.IVFIndex` over
        the item-embedding table and exact-reranks only those — per
        request cost O(nlist·d + candidates) instead of O(items), and
        no O(users × items) score matrix is materialized.
    ann_nlist:
        Inverted lists in the IVF coarse quantizer (None = ~sqrt(items)).
    ann_nprobe:
        Lists probed per query; the recall/latency dial.
    ann_candidates:
        Candidate-set size handed to the exact reranker.
    ann_seed:
        K-means seed; same seed + table => identical index.
    """

    max_batch_size: int = 64
    flush_interval: float = 0.0
    score_block_rows: int = 256
    score_cache_budget_mb: Optional[float] = None
    adhoc_cache_size: int = 128
    warm_on_start: bool = False
    retrieval: str = "exhaustive"
    ann_nlist: Optional[int] = None
    ann_nprobe: int = 8
    ann_candidates: int = 256
    ann_seed: int = 0


@dataclass(frozen=True)
class _AdhocEntry:
    """Cached serving structures for one frozen member tuple."""

    batch: GroupBatch  # single-row padded batch
    exclude: frozenset  # union of member interaction histories


@dataclass(frozen=True)
class _EngineState:
    """Everything a batch needs that changes on a model hot-swap.

    The worker captures ``engine._state`` exactly once per batch, so a
    concurrent :meth:`InferenceEngine.swap_model` (one reference
    assignment) can never hand a batch a model from one version and a
    score cache or ANN index from another — the whole bundle is
    immutable and swapped atomically.
    """

    version: int
    model: GroupSA
    score_cache: ScoreCache
    ann_index: Optional[IVFIndex]


class InferenceEngine:
    """Request-oriented batched inference over a trained model.

    Synchronous callers use :meth:`topk_user` / :meth:`topk_group` /
    :meth:`topk_members`; concurrent callers can hold the returned
    futures from the ``submit_*`` variants so their requests coalesce
    into shared forward passes.
    """

    def __init__(
        self,
        model: GroupSA,
        dataset: GroupRecommendationDataset,
        config: Optional[EngineConfig] = None,
        telemetry: Optional[Telemetry] = None,
        autostart: bool = True,
        model_version: int = 0,
    ) -> None:
        self.dataset = dataset
        self.config = config or EngineConfig()
        self.telemetry = telemetry or Telemetry()
        if self.config.retrieval not in ("exhaustive", "ann"):
            raise ValueError(
                f"unknown retrieval mode '{self.config.retrieval}' "
                "(choose 'exhaustive' or 'ann')"
            )
        ann_index: Optional[IVFIndex] = None
        if self.config.retrieval == "ann":
            with self.telemetry.time("ann.build"):
                ann_index = IVFIndex(
                    model.item_embedding.weight.data,
                    nlist=self.config.ann_nlist,
                    nprobe=self.config.ann_nprobe,
                    seed=self.config.ann_seed,
                )
        self._state = _EngineState(
            version=int(model_version),
            model=model,
            score_cache=self._build_score_cache(model, int(model_version)),
            ann_index=ann_index,
        )
        self.telemetry.registry.gauge("engine.model_version").set(
            int(model_version)
        )
        self._user_items = dataset.user_items()
        self._group_items = dataset.group_items()
        self._friend_sets = dataset.friend_set()
        self._batcher = GroupBatcher(dataset)
        self._adhoc_entries = LRUCache(
            capacity=self.config.adhoc_cache_size,
            telemetry=self.telemetry,
            name="adhoc_cache",
        )
        self._adhoc_lock = threading.Lock()
        self._batcher_queue = MicroBatcher(
            self._execute,
            max_batch_size=self.config.max_batch_size,
            flush_interval=self.config.flush_interval,
            telemetry=self.telemetry,
            autostart=autostart,
        )
        if self.config.warm_on_start:
            self.warm()

    def _build_score_cache(self, model: GroupSA, version: int) -> ScoreCache:
        budget = self.config.score_cache_budget_mb
        return ScoreCache(
            model.score_user_items,
            num_users=self.dataset.num_users,
            num_items=self.dataset.num_items,
            block_rows=self.config.score_block_rows,
            memory_budget_bytes=None if budget is None else int(budget * 2**20),
            telemetry=self.telemetry,
            model_version=version,
        )

    # -- hot-swap state -------------------------------------------------

    @property
    def model(self) -> GroupSA:
        return self._state.model

    @property
    def score_cache(self) -> ScoreCache:
        return self._state.score_cache

    @property
    def ann_index(self) -> Optional[IVFIndex]:
        return self._state.ann_index

    @property
    def model_version(self) -> int:
        return self._state.version

    def swap_model(
        self,
        model: GroupSA,
        version: Optional[int] = None,
        ann_index: Optional[IVFIndex] = None,
    ) -> int:
        """Atomically route all future batches to ``model``.

        Builds the new serving bundle (fresh version-keyed score cache,
        and — in ANN mode — a rebuilt IVF index unless a prebuilt
        ``ann_index`` is supplied) and then publishes it as a single
        reference assignment.  In-flight batches captured the previous
        bundle and finish on it; no request is dropped or blocked.

        Returns the new version (``version`` or previous + 1); versions
        must be strictly increasing.
        """
        old = self._state
        version = old.version + 1 if version is None else int(version)
        if version <= old.version:
            raise ValueError(
                f"model_version must increase: {version} <= {old.version}"
            )
        with self.telemetry.time("engine.swap"):
            with span("engine.swap", version=version):
                if self.config.retrieval == "ann" and ann_index is None:
                    with span("engine.swap.ann_rebuild"):
                        with self.telemetry.time("ann.build"):
                            table = model.item_embedding.weight.data
                            ann_index = (
                                old.ann_index.rebuild(table)
                                if old.ann_index is not None
                                else IVFIndex(
                                    table,
                                    nlist=self.config.ann_nlist,
                                    nprobe=self.config.ann_nprobe,
                                    seed=self.config.ann_seed,
                                )
                            )
                elif self.config.retrieval != "ann":
                    ann_index = None
                with span("engine.swap.score_cache", version=version):
                    cache = self._build_score_cache(model, version)
                with span("engine.swap.publish", version=version):
                    self._state = _EngineState(
                        version=version,
                        model=model,
                        score_cache=cache,
                        ann_index=ann_index,
                    )
                # Eagerly free the superseded blocks — in-flight batches
                # holding the old bundle recompute on demand (same model,
                # same version key), so this only costs them latency.
                old.score_cache.invalidate_version(old.version)
        self.telemetry.increment("engine.swaps")
        self.telemetry.registry.gauge("engine.model_version").set(version)
        return version

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the worker (no-op when ``autostart`` already did)."""
        self._batcher_queue.start()

    def close(self) -> None:
        self._batcher_queue.close()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def warm(self, users: Optional[np.ndarray] = None) -> None:
        """Materialize score-cache blocks ahead of traffic."""
        self.score_cache.warm(users)

    def telemetry_snapshot(self) -> dict:
        return self.telemetry.snapshot()

    # -- submission -----------------------------------------------------

    def submit_user(
        self, user: int, k: int = 10, versioned: bool = False
    ) -> "Future[TopK]":
        user = int(user)
        if not 0 <= user < self.dataset.num_users:
            raise IndexError(
                f"user {user} out of range [0, {self.dataset.num_users})"
            )
        self._check_k(k)
        self.telemetry.increment("requests.user")
        return self._batcher_queue.submit(("user", user, k, bool(versioned)))

    def submit_group(
        self, group: int, k: int = 10, versioned: bool = False
    ) -> "Future[TopK]":
        group = int(group)
        if not 0 <= group < self.dataset.num_groups:
            raise IndexError(
                f"group {group} out of range [0, {self.dataset.num_groups})"
            )
        self._check_k(k)
        self.telemetry.increment("requests.group")
        return self._batcher_queue.submit(("group", group, k, bool(versioned)))

    def submit_members(
        self, members: Sequence[int], k: int = 10, versioned: bool = False
    ) -> "Future[TopK]":
        if len(members) == 0:
            raise ValueError("members must be a non-empty sequence of user ids")
        for member in members:
            if not 0 <= int(member) < self.dataset.num_users:
                raise IndexError(
                    f"member {int(member)} out of range [0, {self.dataset.num_users})"
                )
        self._check_k(k)
        self.telemetry.increment("requests.adhoc")
        key = self.canonical_members(members)
        return self._batcher_queue.submit(("adhoc", key, k, bool(versioned)))

    def topk_user(self, user: int, k: int = 10) -> TopK:
        with self.telemetry.time("engine.request"):
            with span("engine.submit", kind="user", user=int(user), k=k):
                return self.submit_user(user, k).result()

    def topk_group(self, group: int, k: int = 10) -> TopK:
        with self.telemetry.time("engine.request"):
            with span("engine.submit", kind="group", group=int(group), k=k):
                return self.submit_group(group, k).result()

    def topk_members(self, members: Sequence[int], k: int = 10) -> TopK:
        with self.telemetry.time("engine.request"):
            with span(
                "engine.submit", kind="adhoc", member_count=len(members), k=k
            ):
                return self.submit_members(members, k).result()

    # Versioned variants: same lists, plus the model version the batch
    # actually executed against (captured atomically with the scores).

    def topk_user_versioned(self, user: int, k: int = 10) -> VersionedTopK:
        with self.telemetry.time("engine.request"):
            with span("engine.submit", kind="user", user=int(user), k=k):
                return self.submit_user(user, k, versioned=True).result()

    def topk_group_versioned(self, group: int, k: int = 10) -> VersionedTopK:
        with self.telemetry.time("engine.request"):
            with span("engine.submit", kind="group", group=int(group), k=k):
                return self.submit_group(group, k, versioned=True).result()

    def topk_members_versioned(
        self, members: Sequence[int], k: int = 10
    ) -> VersionedTopK:
        with self.telemetry.time("engine.request"):
            with span(
                "engine.submit", kind="adhoc", member_count=len(members), k=k
            ):
                return self.submit_members(members, k, versioned=True).result()

    @staticmethod
    def canonical_members(members: Sequence[int]) -> Tuple[int, ...]:
        """Frozen cache key: duplicates collapsed, ascending order.

        Matches the member ordering
        :func:`repro.core.adhoc.build_adhoc_batch` produces via
        ``np.unique``, so gamma weights align with this tuple.
        """
        return tuple(int(m) for m in np.unique(np.asarray(members, dtype=np.int64)))

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")

    # -- execution (worker thread) -------------------------------------

    def _execute(self, payloads: Sequence[tuple]) -> List[TopK]:
        # One atomic read: every request in this batch is answered by a
        # single consistent (model, cache, index, version) bundle, even
        # if swap_model() publishes a new one mid-batch.
        state = self._state
        results: List[Optional[TopK]] = [None] * len(payloads)
        by_kind: Dict[str, List[int]] = {"user": [], "group": [], "adhoc": []}
        for index, payload in enumerate(payloads):
            by_kind[payload[0]].append(index)
        if by_kind["user"]:
            with self.telemetry.time("engine.user_stage"):
                with span("engine.user_stage", requests=len(by_kind["user"])):
                    self._execute_users(state, payloads, by_kind["user"], results)
        if by_kind["group"]:
            with self.telemetry.time("engine.group_stage"):
                with span("engine.group_stage", requests=len(by_kind["group"])):
                    self._execute_groups(state, payloads, by_kind["group"], results)
        if by_kind["adhoc"]:
            with self.telemetry.time("engine.adhoc_stage"):
                with span("engine.adhoc_stage", requests=len(by_kind["adhoc"])):
                    self._execute_adhoc(state, payloads, by_kind["adhoc"], results)
        return [
            result + (state.version,) if payload[3] else result
            for payload, result in zip(payloads, results)
        ]  # type: ignore[return-value]

    # -- ANN candidate generation --------------------------------------

    @staticmethod
    def _user_query(state: _EngineState, user: int) -> np.ndarray:
        """ANN query vector for a user: their embedding row."""
        return np.asarray(
            state.model.user_embedding.weight.data[user], dtype=np.float64
        )

    @staticmethod
    def _members_query(state: _EngineState, members: Sequence[int]) -> np.ndarray:
        """ANN query for a member set: the mean member embedding — the
        Section II-F fast path collapsed into embedding space, so one
        item index serves group and ad-hoc traffic too."""
        rows = np.asarray(
            state.model.user_embedding.weight.data[
                np.asarray(members, dtype=np.int64)
            ],
            dtype=np.float64,
        )
        return rows.mean(axis=0)

    def _ann_candidates(
        self,
        state: _EngineState,
        query: np.ndarray,
        mask: Optional[np.ndarray],
        k: int,
    ) -> np.ndarray:
        """Candidate item ids (ascending) for one query, never excluded."""
        candidates = state.ann_index.candidates(
            query,
            self.config.ann_candidates,
            exclude_mask=mask,
            min_results=k,
        )
        self.telemetry.increment("ann.queries")
        self.telemetry.increment("ann.candidates", int(candidates.size))
        return candidates

    # -- per-kind stages ------------------------------------------------

    def _execute_users(
        self,
        state: _EngineState,
        payloads: Sequence[tuple],
        indices: List[int],
        results: List,
    ) -> None:
        if state.ann_index is not None:
            self._execute_users_ann(state, payloads, indices, results)
            return
        users = np.array([payloads[i][1] for i in indices], dtype=np.int64)
        rows = state.score_cache.scores_for_users(users)
        with span("topk", requests=len(indices)):
            for row, index in zip(rows, indices):
                __, user, k, __v = payloads[index]
                mask = exclusion_mask(self.dataset.num_items, self._user_items[user])
                items = topk_indices(row, k, mask)
                results[index] = (items, row[items])

    def _execute_users_ann(
        self,
        state: _EngineState,
        payloads: Sequence[tuple],
        indices: List[int],
        results: List,
    ) -> None:
        # Candidate generation per request, then one concatenated exact
        # scoring pass over every request's candidates.
        candidate_sets: List[np.ndarray] = []
        user_chunks: List[np.ndarray] = []
        with span("ann.candidates", requests=len(indices)):
            for index in indices:
                __, user, k, __v = payloads[index]
                mask = exclusion_mask(
                    self.dataset.num_items, self._user_items[user]
                )
                candidates = self._ann_candidates(
                    state, self._user_query(state, user), mask, k
                )
                candidate_sets.append(candidates)
                user_chunks.append(np.full(candidates.size, user, dtype=np.int64))
        users_flat = np.concatenate(user_chunks)
        items_flat = np.concatenate(candidate_sets)
        with span("forward", rows=int(items_flat.size), requests=len(indices)):
            scores_flat = (
                state.model.score_user_items(users_flat, items_flat)
                if items_flat.size
                else np.empty(0)
            )
        with span("topk", requests=len(indices)):
            offset = 0
            for index, candidates in zip(indices, candidate_sets):
                __, __u, k, __v = payloads[index]
                scores = scores_flat[offset : offset + candidates.size]
                offset += candidates.size
                chosen = topk_indices(scores, k)
                results[index] = (candidates[chosen], scores[chosen])

    def _execute_groups(
        self,
        state: _EngineState,
        payloads: Sequence[tuple],
        indices: List[int],
        results: List,
    ) -> None:
        # Concatenate every request's candidate set into one chunked
        # group-forward pass, then split and rank per request.
        group_chunks: List[np.ndarray] = []
        item_chunks: List[np.ndarray] = []
        candidate_sets: List[np.ndarray] = []
        for index in indices:
            __, group, k, __v = payloads[index]
            mask = exclusion_mask(self.dataset.num_items, self._group_items[group])
            if state.ann_index is not None:
                keep = self._ann_candidates(
                    state,
                    self._members_query(state, self.dataset.group_members[group]),
                    mask,
                    k,
                )
            elif mask is not None:
                keep = np.nonzero(~mask)[0]
            else:
                keep = np.arange(self.dataset.num_items, dtype=np.int64)
            candidate_sets.append(keep)
            group_chunks.append(np.full(keep.size, group, dtype=np.int64))
            item_chunks.append(keep)
        groups_flat = np.concatenate(group_chunks)
        items_flat = np.concatenate(item_chunks)
        with span("forward", rows=int(items_flat.size), requests=len(indices)):
            scores_flat = state.model.score_group_items(
                self._batcher.batch(groups_flat), items_flat
            )
        with span("topk", requests=len(indices)):
            offset = 0
            for index, candidates in zip(indices, candidate_sets):
                __, __g, k, __v = payloads[index]
                scores = scores_flat[offset : offset + candidates.size]
                offset += candidates.size
                chosen = topk_indices(scores, k)
                results[index] = (candidates[chosen], scores[chosen])

    def _execute_adhoc(
        self,
        state: _EngineState,
        payloads: Sequence[tuple],
        indices: List[int],
        results: List,
    ) -> None:
        for index in indices:
            __, key, k, __v = payloads[index]
            with span("adhoc_cache.lookup", member_count=len(key)) as lookup:
                entry, cached = self._adhoc_entry(key)
                if lookup is not None:
                    lookup.set_attr("hit", cached)
            mask = exclusion_mask(self.dataset.num_items, entry.exclude)
            if state.ann_index is not None:
                candidates = self._ann_candidates(
                    state, self._members_query(state, key), mask, k
                )
            elif mask is not None:
                candidates = np.nonzero(~mask)[0]
            else:
                candidates = np.arange(self.dataset.num_items, dtype=np.int64)
            if candidates.size == 0:
                results[index] = (
                    np.empty(0, dtype=np.int64),
                    np.empty(0),
                )
                continue
            single = entry.batch
            repeated = GroupBatch(
                group_ids=np.full(candidates.size, -1, dtype=np.int64),
                members=np.repeat(single.members, candidates.size, axis=0),
                mask=np.repeat(single.mask, candidates.size, axis=0),
                adjacency=np.repeat(single.adjacency, candidates.size, axis=0),
            )
            with span(
                "forward",
                member_count=len(key),
                candidates=int(candidates.size),
            ):
                scores = state.model.score_group_items(repeated, candidates)
            with span("topk"):
                chosen = topk_indices(scores, k)
            results[index] = (candidates[chosen], scores[chosen])

    def _adhoc_entry(self, key: Tuple[int, ...]) -> Tuple[_AdhocEntry, bool]:
        """The cached entry for ``key`` plus whether it was a cache hit."""
        entry = self._adhoc_entries.get(key)
        if entry is not None:
            return entry, True
        with self._adhoc_lock:
            entry = self._adhoc_entries.peek(key)
            if entry is None:
                with self.telemetry.time("engine.adhoc_build"):
                    with span("engine.adhoc_build", member_count=len(key)):
                        batch = build_adhoc_batch([list(key)], self._friend_sets)
                        exclude: set = set()
                        for member in key:
                            exclude |= self._user_items[member]
                        entry = _AdhocEntry(batch=batch, exclude=frozenset(exclude))
                self._adhoc_entries.put(key, entry)
        return entry, False
