"""repro — a from-scratch reproduction of "Group Recommendation with
Latent Voting Mechanism" (GroupSA, ICDE 2020).

The package is organised bottom-up:

- :mod:`repro.autograd` / :mod:`repro.nn` / :mod:`repro.optim` — the
  neural substrate (numpy reverse-mode autodiff, layers, optimizers);
- :mod:`repro.data` / :mod:`repro.graphs` — datasets, the synthetic
  Yelp/Douban-like world generator, graph utilities;
- :mod:`repro.core` — the GroupSA model family (voting network, user
  modeling, prediction towers, fast recommendation);
- :mod:`repro.baselines` — NCF, Pop, AGREE, SIGR and score-aggregation
  strategies;
- :mod:`repro.training` / :mod:`repro.evaluation` — BPR two-stage
  training and the paper's HR/NDCG protocol;
- :mod:`repro.experiments` — harnesses regenerating every table/figure.

Quickstart::

    from repro.data import yelp_like, split_interactions
    from repro.core import GroupSAConfig
    from repro.training import train_groupsa, TrainingConfig
    from repro.evaluation import prepare_task, evaluate

    world = yelp_like(scale=0.01)
    split = split_interactions(world.dataset, rng=0)
    model, batcher, history = train_groupsa(split, GroupSAConfig(), TrainingConfig())
    task = prepare_task(split.test.group_item, split.full.group_items(),
                        split.full.num_items, rng=0)
    result = evaluate(lambda g, i: model.score_group_items(batcher.batch(g), i), task)
    print(result.metrics)
"""

from repro.core import FastGroupRecommender, GroupSA, GroupSAConfig
from repro.data import (
    GroupRecommendationDataset,
    SyntheticConfig,
    douban_like,
    split_interactions,
    yelp_like,
)
from repro.evaluation import evaluate, prepare_task
from repro.training import TrainingConfig, train_groupsa

__version__ = "1.0.0"

__all__ = [
    "GroupSA",
    "GroupSAConfig",
    "FastGroupRecommender",
    "GroupRecommendationDataset",
    "SyntheticConfig",
    "yelp_like",
    "douban_like",
    "split_interactions",
    "TrainingConfig",
    "train_groupsa",
    "prepare_task",
    "evaluate",
    "__version__",
]
