"""Table IX: performance by group size (small < 3, medium 3-7, large > 7).

Trains one GroupSA per seed, then evaluates the *same* model on test
interactions bucketed by the size of the interacting group (the paper
keeps parameters identical across bins).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.baselines import GroupSARecommender
from repro.core.config import GroupSAConfig
from repro.evaluation.protocol import evaluate_filtered
from repro.experiments.reporting import format_metric_table
from repro.experiments.runner import (
    ExperimentBudget,
    PAPER_BUDGET,
    prepare_run,
)

SIZE_BINS: Tuple[Tuple[str, int, int], ...] = (
    ("l < 3", 0, 3),
    ("3 <= l <= 7", 3, 8),
    ("7 < l", 8, 10**9),
)


def run_group_size(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
) -> Dict[str, Dict[str, float]]:
    totals: Dict[str, Dict[str, list]] = {label: {} for label, *_ in SIZE_BINS}
    for seed in budget.seeds:
        run = prepare_run(dataset, budget, seed)
        sizes = run.split.train.group_sizes()
        model = GroupSARecommender(
            model_config.variant(seed=model_config.seed + seed), budget.training
        ).fit(run.split)
        edge_sizes = sizes[run.group_task.edges[:, 0]]
        for label, low, high in SIZE_BINS:
            keep = (edge_sizes >= low) & (edge_sizes < high)
            if not keep.any():
                continue
            result = evaluate_filtered(
                model.score_group_items, run.group_task, keep, ks=budget.ks
            )
            slot = totals[label]
            for metric, value in result.metrics.items():
                slot.setdefault(metric, []).append(value)
    return {
        label: {metric: float(np.mean(values)) for metric, values in slots.items()}
        for label, slots in totals.items()
        if slots
    }


def format_group_size(rows: Dict[str, Dict[str, float]], dataset: str) -> str:
    return format_metric_table(
        rows,
        title=f"Table IX — performance by group size ({dataset})",
        key_header="group size",
    )


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    text = format_group_size(run_group_size(dataset, budget), dataset)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
