"""Figure 3: importance of the social self-attention and user-modeling
components (RQ2 & RQ3).

Compares GroupSA against Group-A, Group-S, Group-I and Group-F on the
group task of both datasets (the figure plots HR@5/10 and NDCG@5/10).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines import GroupSARecommender
from repro.core.config import GroupSAConfig
from repro.experiments.reporting import format_metric_table
from repro.experiments.runner import (
    ExperimentBudget,
    PAPER_BUDGET,
    average_over_seeds,
)

ABLATION_ORDER: Tuple[str, ...] = ("Group-A", "Group-S", "Group-I", "Group-F", "GroupSA")


def run_ablations(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
    variants: Tuple[str, ...] = ABLATION_ORDER,
) -> Dict[str, Dict[str, float]]:
    """Group-task metrics for each ablation variant."""
    factories = {
        name: (
            lambda seed, name=name: GroupSARecommender(
                model_config.variant(seed=model_config.seed + seed),
                budget.training,
                variant=name,
            )
        )
        for name in variants
    }
    rows = average_over_seeds(factories, dataset, budget)
    return {name: rows[name]["group"] for name in variants if name in rows}


def format_ablations(rows: Dict[str, Dict[str, float]], dataset: str) -> str:
    from repro.experiments.figures import render_bar_chart

    table = format_metric_table(
        rows, title=f"Figure 3 — component importance ({dataset}, group task)"
    )
    chart = render_bar_chart(rows, "HR@10", title=f"HR@10 bars ({dataset})")
    return f"{table}\n\n{chart}"


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    text = format_ablations(run_ablations(dataset, budget), dataset)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
