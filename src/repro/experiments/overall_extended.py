"""Extended overall comparison (beyond the paper's Table II rows).

Adds the classic CF reference points (ItemKNN, BPR-MF) and the
generative related-work models (PIT, COM) to the paper's comparison,
all under the identical protocol.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import (
    BPRMF,
    COM,
    GroupSARecommender,
    ItemKNN,
    PIT,
    Popularity,
)
from repro.core.config import GroupSAConfig
from repro.experiments.reporting import ResultRows, format_overall_table
from repro.experiments.runner import (
    ExperimentBudget,
    PAPER_BUDGET,
    average_over_seeds,
)

MODEL_ORDER = ("Pop", "ItemKNN", "BPR-MF", "PIT", "COM", "GroupSA")


def run_overall_extended(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
) -> ResultRows:
    factories = {
        "Pop": lambda seed: Popularity(),
        "ItemKNN": lambda seed: ItemKNN(),
        "BPR-MF": lambda seed: BPRMF(epochs=budget.training.user_epochs, seed=seed),
        "PIT": lambda seed: PIT(seed=seed),
        "COM": lambda seed: COM(seed=seed),
        "GroupSA": lambda seed: GroupSARecommender(
            model_config.variant(seed=model_config.seed + seed), budget.training
        ),
    }
    rows = average_over_seeds(factories, dataset, budget)
    return {name: rows[name] for name in MODEL_ORDER if name in rows}


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    rows = run_overall_extended(dataset, budget)
    text = format_overall_table(rows, f"{dataset}, extended")
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
