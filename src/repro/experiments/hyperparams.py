"""Tables VI-VIII: hyper-parameter impact on the group task (RQ5).

- Table VI: depth of the stacked self-attention ``N_X`` in 1..5;
- Table VII: blend weight ``w^u`` in {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
- Table VIII: negatives per positive ``N`` in 1..5.

The paper reports Yelp only ("similar results on Douban-Event"); the
harness accepts either dataset.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.baselines import GroupSARecommender
from repro.core.config import GroupSAConfig
from repro.experiments.reporting import format_metric_table
from repro.experiments.runner import (
    ExperimentBudget,
    PAPER_BUDGET,
    average_over_seeds,
    with_training,
)

NX_VALUES: Tuple[int, ...] = (1, 2, 3, 4, 5)
WU_VALUES: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
NEGATIVE_VALUES: Tuple[int, ...] = (1, 2, 3, 4, 5)


def sweep_attention_layers(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
    values: Sequence[int] = NX_VALUES,
) -> Dict[str, Dict[str, float]]:
    """Table VI: N_X sweep."""
    factories = {
        str(nx): (
            lambda seed, nx=nx: GroupSARecommender(
                model_config.variant(
                    num_attention_layers=nx, seed=model_config.seed + seed
                ),
                budget.training,
            )
        )
        for nx in values
    }
    rows = average_over_seeds(factories, dataset, budget)
    return {key: rows[key]["group"] for key in map(str, values)}


def sweep_blend_weight(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
    values: Sequence[float] = WU_VALUES,
) -> Dict[str, Dict[str, float]]:
    """Table VII: w^u sweep (evaluated on the group task like the paper,
    where the user-task quality feeds through the shared embeddings)."""
    factories = {
        str(wu): (
            lambda seed, wu=wu: GroupSARecommender(
                model_config.variant(blend_weight=wu, seed=model_config.seed + seed),
                budget.training,
            )
        )
        for wu in values
    }
    rows = average_over_seeds(factories, dataset, budget)
    return {key: rows[key]["group"] for key in map(str, values)}


def sweep_negatives(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
    values: Sequence[int] = NEGATIVE_VALUES,
) -> Dict[str, Dict[str, float]]:
    """Table VIII: N (negatives per positive) sweep."""
    factories = {}
    for count in values:
        sweep_budget = with_training(budget, negatives_per_positive=count)
        factories[str(count)] = (
            lambda seed, sweep_budget=sweep_budget: GroupSARecommender(
                model_config.variant(seed=model_config.seed + seed),
                sweep_budget.training,
            )
        )
    rows = average_over_seeds(factories, dataset, budget)
    return {key: rows[key]["group"] for key in map(str, values)}


def format_sweep(
    rows: Dict[str, Dict[str, float]], parameter: str, dataset: str
) -> str:
    return format_metric_table(
        rows,
        title=f"Impact of parameter {parameter} ({dataset}, group task)",
        key_header=parameter,
    )


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    sections = [
        format_sweep(sweep_attention_layers(dataset, budget), "N_X", dataset),
        format_sweep(sweep_blend_weight(dataset, budget), "w^u", dataset),
        format_sweep(sweep_negatives(dataset, budget), "N", dataset),
    ]
    text = "\n\n".join(sections)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
