"""Experiment registry mapping paper artifacts to harness callables.

``python -m repro.experiments <id>`` runs one experiment; ids follow
the paper's numbering (``table1`` .. ``table9``, ``figure3``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    case_study,
    dataset_stats,
    group_size,
    hyperparams,
    joint_training,
    overall,
    significance,
)
from repro.experiments.runner import ExperimentBudget, PAPER_BUDGET


@dataclass(frozen=True)
class Experiment:
    identifier: str
    description: str
    run: Callable[..., str]


def _table1(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    return dataset_stats.main(budget)


def _table2(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    return overall.main("yelp", budget)


def _table3(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    return overall.main("douban", budget)


def _figure3(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    return "\n\n".join(
        ablations.main(dataset, budget) for dataset in ("yelp", "douban")
    )


def _table4(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    return case_study.main("yelp", budget)


def _table5(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    return "\n\n".join(
        joint_training.main(dataset, budget) for dataset in ("yelp", "douban")
    )


def _table6(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    rows = hyperparams.sweep_attention_layers("yelp", budget)
    text = hyperparams.format_sweep(rows, "N_X", "yelp")
    print(text)
    return text


def _table7(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    rows = hyperparams.sweep_blend_weight("yelp", budget)
    text = hyperparams.format_sweep(rows, "w^u", "yelp")
    print(text)
    return text


def _table8(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    rows = hyperparams.sweep_negatives("yelp", budget)
    text = hyperparams.format_sweep(rows, "N", "yelp")
    print(text)
    return text


def _table9(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    return group_size.main("yelp", budget)


def _significance(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    return significance.main("yelp", budget)


EXPERIMENTS: Dict[str, Experiment] = {
    "table1": Experiment("table1", "dataset statistics (Table I)", _table1),
    "table2": Experiment("table2", "overall comparison on Yelp (Table II)", _table2),
    "table3": Experiment("table3", "overall comparison on Douban (Table III)", _table3),
    "figure3": Experiment("figure3", "component ablations (Figure 3)", _figure3),
    "table4": Experiment("table4", "attention case study (Table IV)", _table4),
    "table5": Experiment("table5", "user-item data importance (Table V)", _table5),
    "table6": Experiment("table6", "N_X sweep (Table VI)", _table6),
    "table7": Experiment("table7", "w^u sweep (Table VII)", _table7),
    "table8": Experiment("table8", "negatives sweep (Table VIII)", _table8),
    "table9": Experiment("table9", "group-size breakdown (Table IX)", _table9),
    "significance": Experiment(
        "significance", "paired t-tests vs baselines (Section III-E)", _significance
    ),
}


def run_experiment(identifier: str, budget: ExperimentBudget = PAPER_BUDGET) -> str:
    if identifier not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment '{identifier}'; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[identifier].run(budget)
