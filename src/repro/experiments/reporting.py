"""Text-table rendering for experiment results.

The harnesses print tables in the same row/column layout as the paper
so a side-by-side comparison with the published numbers is direct.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

Metrics = Dict[str, float]
TaskMetrics = Dict[str, Metrics]  # task -> metric -> value
ResultRows = Dict[str, TaskMetrics]  # model -> task -> metric -> value


def format_overall_table(
    rows: ResultRows,
    dataset: str,
    reference: str = "GroupSA",
    ks: Sequence[int] = (5, 10),
) -> str:
    """Render a Table II/III-shaped comparison.

    For each K: user HR/NDCG, group HR/NDCG, and the Delta% improvement
    of ``reference`` over each model in group HR@K (the paper's Delta).
    """
    lines = [f"Overall Performance Comparison ({dataset})"]
    header = f"{'Model':<12}"
    for k in ks:
        header += (
            f"{f'uHR@{k}':>9}{f'uNDCG@{k}':>10}"
            f"{f'gHR@{k}':>9}{f'gNDCG@{k}':>10}{f'Δ%@{k}':>9}"
        )
    lines.append(header)
    lines.append("-" * len(header))
    reference_group = rows.get(reference, {}).get("group", {})
    for model, tasks in rows.items():
        line = f"{model:<12}"
        for k in ks:
            user = tasks.get("user", {})
            group = tasks.get("group", {})
            line += _cell(user.get(f"HR@{k}"), 9)
            line += _cell(user.get(f"NDCG@{k}"), 10)
            line += _cell(group.get(f"HR@{k}"), 9)
            line += _cell(group.get(f"NDCG@{k}"), 10)
            line += _delta_cell(reference_group.get(f"HR@{k}"), group.get(f"HR@{k}"), model, reference)
        lines.append(line)
    return "\n".join(lines)


def format_metric_table(
    rows: Dict[str, Metrics],
    title: str,
    metrics: Sequence[str] = ("HR@5", "HR@10", "NDCG@5", "NDCG@10"),
    key_header: str = "Model",
) -> str:
    """Render a simple keyed metric table (Tables V-IX shapes)."""
    lines = [title]
    header = f"{key_header:<14}" + "".join(f"{m:>10}" for m in metrics)
    lines.append(header)
    lines.append("-" * len(header))
    for key, values in rows.items():
        line = f"{str(key):<14}"
        for metric in metrics:
            line += _cell(values.get(metric), 10)
        lines.append(line)
    return "\n".join(lines)


def _cell(value: Optional[float], width: int) -> str:
    if value is None:
        return f"{'-':>{width}}"
    return f"{value:>{width}.4f}"


def _delta_cell(
    reference_value: Optional[float],
    value: Optional[float],
    model: str,
    reference: str,
) -> str:
    if model == reference or value in (None, 0.0) or reference_value is None:
        return f"{'-':>9}"
    delta = 100.0 * (reference_value - value) / value
    return f"{delta:>9.2f}"
