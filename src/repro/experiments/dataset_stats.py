"""Table I: statistics of the (synthetic) Yelp and Douban-Event worlds."""

from __future__ import annotations

from typing import Dict

from repro.data.stats import format_table1, table1_statistics
from repro.data.synthetic import generate
from repro.experiments.runner import ExperimentBudget, PAPER_BUDGET, dataset_config

#: Published values for side-by-side comparison.
PAPER_TABLE1 = {
    "yelp": {
        "# Users": 34504,
        "# Items/Events": 22611,
        "# Groups": 24103,
        "Avg. group size": 4.45,
        "Avg. # interactions per user": 13.98,
        "Avg. # friends per user": 20.77,
        "Avg. # interactions per group": 1.12,
    },
    "douban": {
        "# Users": 29181,
        "# Items/Events": 46097,
        "# Groups": 17826,
        "Avg. group size": 4.84,
        "Avg. # interactions per user": 25.22,
        "Avg. # friends per user": 40.86,
        "Avg. # interactions per group": 1.47,
    },
}


def run_dataset_stats(
    budget: ExperimentBudget = PAPER_BUDGET,
) -> Dict[str, Dict[str, float]]:
    """Statistics of both generated worlds at the budget's scale."""
    stats = {}
    for dataset in ("yelp", "douban"):
        world = generate(dataset_config(dataset, budget.scale, budget.seeds[0]))
        stats[dataset] = table1_statistics(world.dataset)
    return stats


def format_dataset_stats(stats: Dict[str, Dict[str, float]]) -> str:
    return format_table1(stats)


def main(budget: ExperimentBudget = PAPER_BUDGET) -> str:
    text = format_dataset_stats(run_dataset_stats(budget))
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
