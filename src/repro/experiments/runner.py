"""Shared experiment machinery: budgets, worlds, tasks, seed averaging.

Every table/figure harness follows the same recipe the paper describes
in Section III: generate a dataset, split 80/20 (+10% validation),
freeze the 100-candidate evaluation lists, train each model, average
metrics over repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import Recommender
from repro.data.presets import douban_like_config, yelp_like_config
from repro.data.splits import DataSplit, split_interactions
from repro.data.synthetic import SyntheticWorld, generate
from repro.evaluation.protocol import EvaluationTask, evaluate, prepare_task
from repro.training.trainer import TrainingConfig

DATASETS = ("yelp", "douban")


@dataclass(frozen=True)
class ExperimentBudget:
    """Compute budget for a harness run.

    ``seeds`` controls repeats ("repeat each setting 5 times and report
    the average", Section III-E); the bench default uses fewer repeats
    and a smaller world so the whole suite finishes on a laptop CPU.
    """

    scale: float = 0.02
    seeds: Tuple[int, ...] = (0, 1, 2)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    num_candidates: int = 100
    ks: Tuple[int, ...] = (5, 10)


#: Quick budget used by the pytest benchmarks.
BENCH_BUDGET = ExperimentBudget(
    scale=0.01,
    seeds=(0,),
    training=TrainingConfig(user_epochs=12, group_epochs=30),
)

#: Budget approximating the paper's protocol at reduced scale.
PAPER_BUDGET = ExperimentBudget(
    scale=0.02,
    seeds=(0, 1, 2),
    training=TrainingConfig(user_epochs=25, group_epochs=60),
)


@dataclass
class PreparedRun:
    """One seeded world + split + frozen evaluation tasks."""

    world: SyntheticWorld
    split: DataSplit
    user_task: EvaluationTask
    group_task: EvaluationTask


def dataset_config(dataset: str, scale: float, seed: int):
    if dataset == "yelp":
        return yelp_like_config(scale=scale, seed=7 + seed)
    if dataset == "douban":
        return douban_like_config(scale=scale, seed=13 + seed)
    raise ValueError(f"unknown dataset '{dataset}'; choose from {DATASETS}")


def prepare_run(dataset: str, budget: ExperimentBudget, seed: int) -> PreparedRun:
    """Generate world, split and frozen candidate lists for one seed."""
    world = generate(dataset_config(dataset, budget.scale, seed))
    split = split_interactions(world.dataset, rng=1000 + seed)
    full = split.full
    user_task = prepare_task(
        split.test.user_item,
        full.user_items(),
        full.num_items,
        num_candidates=budget.num_candidates,
        rng=2000 + seed,
    )
    group_task = prepare_task(
        split.test.group_item,
        full.group_items(),
        full.num_items,
        num_candidates=budget.num_candidates,
        rng=3000 + seed,
    )
    return PreparedRun(world=world, split=split, user_task=user_task, group_task=group_task)


ModelFactory = Callable[[int], Recommender]
# Maps a seed to a fresh (unfitted) recommender, so repeated runs are
# independent.


def evaluate_model(
    model: Recommender, run: PreparedRun, ks: Tuple[int, ...]
) -> Dict[str, Dict[str, float]]:
    """Fit one model on one run; return {'user': {...}, 'group': {...}}."""
    model.fit(run.split)
    metrics: Dict[str, Dict[str, float]] = {}
    if model.supports_user_task:
        metrics["user"] = evaluate(model.score_user_items, run.user_task, ks=ks).metrics
    if model.supports_group_task:
        metrics["group"] = evaluate(model.score_group_items, run.group_task, ks=ks).metrics
    return metrics


def average_over_seeds(
    factories: Dict[str, ModelFactory],
    dataset: str,
    budget: ExperimentBudget,
    shared_base: Optional[Callable[[int, PreparedRun], Dict[str, Recommender]]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Run every model across all seeds, averaging the metric values.

    ``shared_base`` optionally produces extra pre-wired models per run
    (used to share one trained GroupSA across the score-aggregation
    strategies instead of retraining it three times).
    """
    totals: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for seed in budget.seeds:
        run = prepare_run(dataset, budget, seed)
        models: Dict[str, Recommender] = {
            name: factory(seed) for name, factory in factories.items()
        }
        if shared_base is not None:
            models.update(shared_base(seed, run))
        for name, model in models.items():
            result = evaluate_model(model, run, budget.ks)
            slot = totals.setdefault(name, {})
            for task, values in result.items():
                task_slot = slot.setdefault(task, {})
                for metric, value in values.items():
                    task_slot.setdefault(metric, []).append(value)
    return {
        name: {
            task: {metric: float(np.mean(values)) for metric, values in task_values.items()}
            for task, task_values in tasks.items()
        }
        for name, tasks in totals.items()
    }


def with_training(budget: ExperimentBudget, **changes) -> ExperimentBudget:
    """Budget with a modified training config."""
    return replace(budget, training=replace(budget.training, **changes))
