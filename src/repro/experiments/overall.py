"""Tables II & III: overall Top-K performance comparison.

Compares NCF, Pop, AGREE, SIGR, the three static score-aggregation
strategies (over GroupSA's user predictor) and GroupSA itself, on both
the user-item and group-item tasks.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import (
    AGREE,
    NCF,
    GroupSARecommender,
    Popularity,
    Recommender,
    ScoreAggregationRecommender,
    SIGR,
)
from repro.core.config import GroupSAConfig
from repro.experiments.reporting import ResultRows, format_overall_table
from repro.experiments.runner import (
    ExperimentBudget,
    PAPER_BUDGET,
    PreparedRun,
    average_over_seeds,
)

#: Row order of Tables II/III.
MODEL_ORDER = (
    "NCF",
    "Pop",
    "AGREE",
    "SIGR",
    "Group+avg",
    "Group+lm",
    "Group+ms",
    "GroupSA",
)


def run_overall(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
) -> ResultRows:
    """Run the full comparison; returns model -> task -> metric rows."""

    factories = {
        "NCF": lambda seed: NCF(epochs=budget.training.user_epochs, seed=seed),
        "Pop": lambda seed: Popularity(),
        "AGREE": lambda seed: AGREE(epochs=budget.training.user_epochs, seed=seed),
        "SIGR": lambda seed: SIGR(epochs=budget.training.user_epochs, seed=seed),
    }

    def shared_groupsa(seed: int, run: PreparedRun) -> Dict[str, Recommender]:
        base = GroupSARecommender(
            model_config.variant(seed=model_config.seed + seed), budget.training
        )
        base.fit(run.split)
        return {
            "Group+avg": ScoreAggregationRecommender(base, "avg"),
            "Group+lm": ScoreAggregationRecommender(base, "lm"),
            "Group+ms": ScoreAggregationRecommender(base, "ms"),
            "GroupSA": base,
        }

    rows = average_over_seeds(factories, dataset, budget, shared_base=shared_groupsa)
    return {name: rows[name] for name in MODEL_ORDER if name in rows}


def format_overall(rows: ResultRows, dataset: str) -> str:
    return format_overall_table(rows, dataset)


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    rows = run_overall(dataset, budget)
    text = format_overall(rows, dataset)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
