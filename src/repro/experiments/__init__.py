"""Experiment harnesses regenerating every table and figure."""

from repro.experiments.runner import (
    BENCH_BUDGET,
    DATASETS,
    ExperimentBudget,
    PAPER_BUDGET,
    PreparedRun,
    average_over_seeds,
    dataset_config,
    evaluate_model,
    prepare_run,
    with_training,
)

__all__ = [
    "ExperimentBudget",
    "BENCH_BUDGET",
    "PAPER_BUDGET",
    "DATASETS",
    "PreparedRun",
    "prepare_run",
    "dataset_config",
    "evaluate_model",
    "average_over_seeds",
    "with_training",
]
