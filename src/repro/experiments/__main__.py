"""CLI entry point: ``python -m repro.experiments <id> [--bench]``."""

from __future__ import annotations

import argparse

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import BENCH_BUDGET, PAPER_BUDGET


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Reproduce a table/figure from the GroupSA paper."
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper numbering) or 'all'",
    )
    parser.add_argument(
        "--bench",
        action="store_true",
        help="use the quick benchmark budget instead of the paper budget",
    )
    arguments = parser.parse_args()
    budget = BENCH_BUDGET if arguments.bench else PAPER_BUDGET
    targets = sorted(EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for identifier in targets:
        print(f"=== {identifier}: {EXPERIMENTS[identifier].description} ===")
        run_experiment(identifier, budget)
        print()


if __name__ == "__main__":
    main()
