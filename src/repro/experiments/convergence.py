"""Training-dynamics harness: loss and validation metric vs. epoch.

Not a numbered paper artifact, but the evidence behind the two-stage
training story: the group-task loss starts far lower when stage 1 ran
first (shared embeddings transfer), and the validation metric shows
where fine-tuning saturates.  Produces CSV-ready rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import GroupSAConfig
from repro.data.splits import DataSplit
from repro.evaluation.protocol import evaluate
from repro.experiments.runner import ExperimentBudget, PAPER_BUDGET, prepare_run
from repro.training.trainer import GroupSATrainer, TrainingConfig
from repro.training.two_stage import build_model
from repro.tuning import validation_task


@dataclass
class ConvergencePoint:
    stage: str
    epoch: int
    loss: float
    validation_hr10: Optional[float]


@dataclass
class ConvergenceCurve:
    points: List[ConvergencePoint]

    def to_csv(self) -> str:
        lines = ["stage,epoch,loss,validation_hr10"]
        for point in self.points:
            validation = (
                f"{point.validation_hr10:.4f}"
                if point.validation_hr10 is not None
                else ""
            )
            lines.append(f"{point.stage},{point.epoch},{point.loss:.4f},{validation}")
        return "\n".join(lines)

    def losses(self, stage: str) -> List[float]:
        return [p.loss for p in self.points if p.stage == stage]


def trace_convergence(
    split: DataSplit,
    model_config: GroupSAConfig = GroupSAConfig(),
    training: TrainingConfig = TrainingConfig(),
    check_every: int = 5,
    num_candidates: int = 100,
) -> ConvergenceCurve:
    """Train with the two-stage schedule, recording a curve."""
    model, batcher = build_model(split, model_config)
    trainer = GroupSATrainer(model, split, batcher, training)
    task = (
        validation_task(split, num_candidates=num_candidates)
        if len(split.validation.group_item)
        else None
    )
    points: List[ConvergencePoint] = []

    def validation_value() -> Optional[float]:
        if task is None:
            return None
        return evaluate(
            lambda groups, items: model.score_group_items(batcher.batch(groups), items),
            task,
        ).metrics["HR@10"]

    if model.config.use_user_task:
        for epoch in range(1, training.user_epochs + 1):
            trainer.train_user_task(epochs=1)
            points.append(
                ConvergencePoint(
                    stage="user",
                    epoch=epoch,
                    loss=trainer.history.final_loss("user"),
                    validation_hr10=None,
                )
            )
        if training.init_group_tower_from_user:
            model.group_tower.load_state_dict(model.user_tower.state_dict())

    interleave = training.interleave_user_every if model.config.use_user_task else 0
    for epoch in range(1, training.group_epochs + 1):
        trainer.train_group_task(epochs=1)
        if interleave and epoch % interleave == 0:
            trainer.train_user_task(epochs=1)
        validation = validation_value() if epoch % check_every == 0 else None
        points.append(
            ConvergencePoint(
                stage="group",
                epoch=epoch,
                loss=trainer.history.final_loss("group"),
                validation_hr10=validation,
            )
        )
    return ConvergenceCurve(points=points)


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    run = prepare_run(dataset, budget, budget.seeds[0])
    curve = trace_convergence(run.split, training=budget.training)
    text = curve.to_csv()
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
