"""Table IV: case study of member attention weights (RQ2).

Reproduces the qualitative analysis: pick a test group, compare how
GroupSA and Group-S (no self-attention) distribute attention over the
members for positive and negative items, and how close the predicted
scores get to the 1 / 0 targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines import GroupSARecommender
from repro.core.config import GroupSAConfig
from repro.experiments.runner import (
    ExperimentBudget,
    PAPER_BUDGET,
    PreparedRun,
    prepare_run,
)
from repro.utils import ensure_rng


@dataclass
class CaseStudyRow:
    """Attention weights and prediction for one (item, model) pair."""

    item: int
    is_positive: bool
    model: str
    member_weights: np.ndarray
    score: float


@dataclass
class CaseStudy:
    group: int
    members: np.ndarray
    rows: List[CaseStudyRow]

    def format(self) -> str:
        header = f"{'Item':>8} {'Model':<9}"
        for member in self.members:
            header += f"{f'User#{member}':>10}"
        header += f"{'sigmoid(r_G)':>14}"
        lines = [
            f"Table IV — case study, group #{self.group} "
            f"(members: {', '.join(map(str, self.members))})",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            label = f"{'+' if row.is_positive else '-'}#{row.item}"
            line = f"{label:>8} {row.model:<9}"
            for weight in row.member_weights:
                line += f"{weight:>10.4f}"
            line += f"{row.score:>14.4f}"
            lines.append(line)
        return "\n".join(lines)


def select_case_group(
    run: PreparedRun, group_size: int = 3, rng_seed: int = 0
) -> Optional[int]:
    """Pick a test group of the requested size with a test positive."""
    sizes = run.split.train.group_sizes()
    tested = np.unique(run.group_task.edges[:, 0])
    eligible = [int(g) for g in tested if sizes[g] == group_size]
    if not eligible:
        eligible = [int(g) for g in tested]
    if not eligible:
        return None
    return eligible[int(ensure_rng(rng_seed).integers(0, len(eligible)))]


def run_case_study(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
    num_negatives: int = 2,
) -> CaseStudy:
    seed = budget.seeds[0]
    run = prepare_run(dataset, budget, seed)
    group = select_case_group(run)
    if group is None:
        raise RuntimeError("no test group available for the case study")

    models: Dict[str, GroupSARecommender] = {
        "Group-S": GroupSARecommender(model_config, budget.training, variant="Group-S"),
        "GroupSA": GroupSARecommender(model_config, budget.training),
    }
    for model in models.values():
        model.fit(run.split)

    edges = run.group_task.edges
    positives = edges[edges[:, 0] == group][:, 1][:2]
    candidate_row = run.group_task.candidates[int(np.flatnonzero(edges[:, 0] == group)[0])]
    negatives = candidate_row[:num_negatives]

    members = run.split.train.group_members[group]
    rows: List[CaseStudyRow] = []
    for item, is_positive in [(int(i), True) for i in positives] + [
        (int(i), False) for i in negatives
    ]:
        for name, wrapped in models.items():
            model, batcher = wrapped._require()
            batch = batcher.batch([group])
            weights = model.member_attention(batch, np.array([item]))[0]
            score = model.score_group_items(batch, np.array([item]))[0]
            rows.append(
                CaseStudyRow(
                    item=item,
                    is_positive=is_positive,
                    model=name,
                    member_weights=weights[: members.size],
                    score=float(1.0 / (1.0 + np.exp(-score))),
                )
            )
    return CaseStudy(group=group, members=members, rows=rows)


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    study = run_case_study(dataset, budget)
    text = study.format()
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
