"""Table V: importance of the user-item interaction data (RQ4).

Compares NCF (virtual-user CF), Group-G (GroupSA without the user-item
task) and full GroupSA on the group task of both datasets.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import NCF, GroupSARecommender
from repro.core.config import GroupSAConfig
from repro.experiments.reporting import format_metric_table
from repro.experiments.runner import (
    ExperimentBudget,
    PAPER_BUDGET,
    average_over_seeds,
)

MODEL_ORDER = ("NCF", "Group-G", "GroupSA")


def run_joint_training(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
) -> Dict[str, Dict[str, float]]:
    factories = {
        "NCF": lambda seed: NCF(epochs=budget.training.user_epochs, seed=seed),
        "Group-G": lambda seed: GroupSARecommender(
            model_config.variant(seed=model_config.seed + seed),
            budget.training,
            variant="Group-G",
        ),
        "GroupSA": lambda seed: GroupSARecommender(
            model_config.variant(seed=model_config.seed + seed), budget.training
        ),
    }
    rows = average_over_seeds(factories, dataset, budget)
    return {name: rows[name]["group"] for name in MODEL_ORDER if name in rows}


def format_joint_training(rows: Dict[str, Dict[str, float]], dataset: str) -> str:
    return format_metric_table(
        rows, title=f"Table V — importance of user-item data ({dataset}, group task)"
    )


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    text = format_joint_training(run_joint_training(dataset, budget), dataset)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
