"""ASCII figure rendering.

The paper's Figure 3 is a bar chart; on a text-only substrate we render
horizontal bars so the harness output still *reads* like the figure.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def render_bar_chart(
    rows: Dict[str, Dict[str, float]],
    metric: str,
    title: Optional[str] = None,
    width: int = 40,
) -> str:
    """Horizontal bar chart of ``metric`` across models.

    ``rows`` maps model name -> metric dict (the ablation harness
    output shape).  Bars are scaled to the maximum value.
    """
    if not rows:
        raise ValueError("rows must not be empty")
    values = {name: metrics[metric] for name, metrics in rows.items()}
    peak = max(values.values()) or 1.0
    label_width = max(len(name) for name in values)
    lines = [title or metric]
    for name, value in values.items():
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{name:<{label_width}} |{bar:<{width}} {value:.4f}")
    return "\n".join(lines)


def render_figure3(
    rows: Dict[str, Dict[str, float]],
    dataset: str,
    metrics: Sequence[str] = ("HR@5", "HR@10", "NDCG@5", "NDCG@10"),
) -> str:
    """Figure 3's four panels as stacked ASCII bar charts."""
    panels = [
        render_bar_chart(rows, metric, title=f"{metric} ({dataset})")
        for metric in metrics
    ]
    return "\n\n".join(panels)
