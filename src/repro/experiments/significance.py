"""Significance testing between GroupSA and the baselines.

Section III-E / IV: "we conduct the one sample paired t-tests to verify
that all improvements are statistically significant with p < 0.01".
Because every model ranks the *same* frozen candidate lists (see
:class:`~repro.evaluation.protocol.EvaluationTask`), per-example HR/NDCG
vectors are paired and the t-test is valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines import AGREE, NCF, GroupSARecommender, Popularity, SIGR
from repro.core.config import GroupSAConfig
from repro.evaluation.protocol import RankingResult, evaluate
from repro.evaluation.significance import TTestResult, paired_ttest
from repro.experiments.runner import (
    ExperimentBudget,
    PAPER_BUDGET,
    prepare_run,
)


@dataclass
class SignificanceRow:
    baseline: str
    metric: str
    groupsa_mean: float
    baseline_mean: float
    ttest: TTestResult


def run_significance(
    dataset: str = "yelp",
    budget: ExperimentBudget = PAPER_BUDGET,
    model_config: GroupSAConfig = GroupSAConfig(),
    metrics: tuple[str, ...] = ("HR@10", "NDCG@10"),
) -> List[SignificanceRow]:
    """Paired t-tests of GroupSA vs each baseline on the group task."""
    run = prepare_run(dataset, budget, budget.seeds[0])
    epochs = budget.training.user_epochs

    models = {
        "Pop": Popularity(),
        "NCF": NCF(epochs=epochs),
        "AGREE": AGREE(epochs=epochs),
        "SIGR": SIGR(epochs=epochs),
        "GroupSA": GroupSARecommender(model_config, budget.training),
    }
    results: Dict[str, RankingResult] = {}
    for name, model in models.items():
        model.fit(run.split)
        results[name] = evaluate(model.score_group_items, run.group_task, ks=(5, 10))

    rows: List[SignificanceRow] = []
    reference = results["GroupSA"]
    for name, result in results.items():
        if name == "GroupSA":
            continue
        for metric in metrics:
            rows.append(
                SignificanceRow(
                    baseline=name,
                    metric=metric,
                    groupsa_mean=reference.metrics[metric],
                    baseline_mean=result.metrics[metric],
                    ttest=paired_ttest(
                        reference.per_example(metric), result.per_example(metric)
                    ),
                )
            )
    return rows


def format_significance(rows: List[SignificanceRow], dataset: str) -> str:
    lines = [
        f"Paired t-tests, GroupSA vs baselines ({dataset}, group task)",
        f"{'baseline':<10}{'metric':<10}{'GroupSA':>10}{'baseline':>10}"
        f"{'t':>9}{'p':>12}{'sig(0.01)':>11}",
    ]
    lines.append("-" * len(lines[1]))
    for row in rows:
        lines.append(
            f"{row.baseline:<10}{row.metric:<10}{row.groupsa_mean:>10.4f}"
            f"{row.baseline_mean:>10.4f}{row.ttest.statistic:>9.2f}"
            f"{row.ttest.p_value:>12.2e}{str(row.ttest.significant()):>11}"
        )
    return "\n".join(lines)


def main(dataset: str = "yelp", budget: ExperimentBudget = PAPER_BUDGET) -> str:
    text = format_significance(run_significance(dataset, budget), dataset)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
