"""Validation-monitored fine-tuning with early stopping.

The paper selects parameters on the 10% validation split; this module
adds the operational counterpart: watch a validation metric during the
stage-2 fine-tuning, keep the best weights, and stop once the metric
has not improved for ``patience`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.groupsa import GroupSA
from repro.data.loaders import GroupBatcher
from repro.data.splits import DataSplit
from repro.evaluation.protocol import EvaluationTask, evaluate
from repro.training.callbacks import History
from repro.training.trainer import GroupSATrainer, TrainingConfig
from repro.tuning import validation_task


@dataclass
class ValidationMonitor:
    """Track a validation metric; remember and restore the best state."""

    model: GroupSA
    batcher: GroupBatcher
    task: EvaluationTask
    metric: str = "HR@10"
    patience: int = 3
    best_value: float = -np.inf
    checks_since_best: int = 0
    history: List[float] = field(default_factory=list)
    _best_state: Optional[Dict[str, np.ndarray]] = None

    def check(self) -> bool:
        """Evaluate once; return True when training should stop."""
        result = evaluate(
            lambda groups, items: self.model.score_group_items(
                self.batcher.batch(groups), items
            ),
            self.task,
        )
        value = result.metrics[self.metric]
        self.history.append(value)
        if value > self.best_value:
            self.best_value = value
            self.checks_since_best = 0
            self._best_state = self.model.state_dict()
        else:
            self.checks_since_best += 1
        return self.checks_since_best >= self.patience

    def restore_best(self) -> None:
        """Load the best-seen weights back into the model."""
        if self._best_state is not None:
            self.model.load_state_dict(self._best_state)


def fit_with_early_stopping(
    model: GroupSA,
    split: DataSplit,
    batcher: GroupBatcher,
    training: TrainingConfig = TrainingConfig(),
    metric: str = "HR@10",
    patience: int = 3,
    check_every: int = 5,
    max_group_epochs: Optional[int] = None,
    num_candidates: int = 100,
) -> tuple[History, ValidationMonitor]:
    """Two-stage training with validation-based early stopping.

    Stage 1 (user task) runs as configured; stage 2 checks the
    validation group metric every ``check_every`` epochs and stops when
    it plateaus, restoring the best checkpoint.
    """
    if len(split.validation.group_item) == 0:
        raise ValueError(
            "early stopping needs validation group interactions; use a "
            "non-zero validation_fraction when splitting"
        )
    trainer = GroupSATrainer(model, split, batcher, training)
    if model.config.use_user_task:
        trainer.train_user_task()
        if training.init_group_tower_from_user:
            model.group_tower.load_state_dict(model.user_tower.state_dict())

    monitor = ValidationMonitor(
        model=model,
        batcher=batcher,
        task=validation_task(split, num_candidates=num_candidates),
        metric=metric,
        patience=patience,
    )
    limit = max_group_epochs or 10 * training.group_epochs
    interleave = training.interleave_user_every if model.config.use_user_task else 0
    for epoch in range(limit):
        trainer.train_group_task(epochs=1)
        if interleave and (epoch + 1) % interleave == 0:
            trainer.train_user_task(epochs=1)
        if (epoch + 1) % check_every == 0 and monitor.check():
            break
    monitor.restore_best()
    return trainer.history, monitor
