"""Bayesian Personalized Ranking loss [31] (Eqs. 21 and 24).

Both recommendation tasks are optimized with the pair-wise objective
``-ln sigma(r_pos - r_neg)``; the L2 term ``lambda * ||Theta||^2`` is
applied as weight decay inside the optimizers.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Mean BPR loss over aligned positive/negative score vectors.

    Uses the numerically stable ``log_sigmoid`` primitive, so extreme
    score margins cannot overflow.
    """
    if positive_scores.shape != negative_scores.shape:
        raise ValueError(
            f"score shapes differ: {positive_scores.shape} vs {negative_scores.shape}"
        )
    margin = positive_scores - negative_scores
    return -(margin.log_sigmoid().mean())


def bpr_accuracy(positive_scores: Tensor, negative_scores: Tensor) -> float:
    """Fraction of pairs ranked correctly (a cheap training diagnostic)."""
    return float((positive_scores.data > negative_scores.data).mean())
