"""Training: BPR loss, epoch trainers, two-stage joint optimization."""

from repro.training.bpr import bpr_accuracy, bpr_loss
from repro.training.callbacks import EpochLog, History, print_progress
from repro.training.checkpointing import CheckpointManager, SchedulePosition
from repro.training.trainer import GroupSATrainer, TrainingConfig
from repro.training.two_stage import build_model, fit_groupsa, train_groupsa

__all__ = [
    "bpr_loss",
    "bpr_accuracy",
    "EpochLog",
    "History",
    "print_progress",
    "CheckpointManager",
    "SchedulePosition",
    "GroupSATrainer",
    "TrainingConfig",
    "build_model",
    "fit_groupsa",
    "train_groupsa",
]
