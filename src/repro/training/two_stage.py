"""Two-stage joint training (the Training Method of Section II-E).

Stage 1 optimizes the user-item loss L_R on the abundant user-item and
user-user data, learning the shared user/item embeddings.  Stage 2
fine-tunes everything on the sparse group-item interactions with L_G.
Because the embeddings are *shared parameters of one model*, stage 2
starts from the stage-1 representations — exactly the paper's
"use the learned embeddings to initialize ... then fine-tune".

For the Group-G variant (``use_user_task=False``) stage 1 is skipped,
which is what Table V measures.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import GroupSAConfig
from repro.core.groupsa import GroupSA
from repro.data.loaders import GroupBatcher
from repro.data.splits import DataSplit
from repro.graphs.tfidf import tfidf_top_neighbours
from repro.training.callbacks import History, ProgressCallback
from repro.training.trainer import GroupSATrainer, TrainingConfig


def build_model(
    split: DataSplit,
    config: GroupSAConfig,
    batcher: Optional[GroupBatcher] = None,
) -> tuple[GroupSA, GroupBatcher]:
    """Construct a GroupSA model wired to a split's training data."""
    train = split.train
    model = GroupSA(train.num_users, train.num_items, config)
    if config.uses_user_modeling:
        model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))
    if batcher is None:
        if config.closeness == "direct":
            batcher = GroupBatcher(train)
        else:
            from repro.graphs.closeness import CLOSENESS_REGISTRY, full_attention

            if config.closeness == "full":
                closeness = full_attention()
            else:
                closeness = CLOSENESS_REGISTRY[config.closeness](train)
            batcher = GroupBatcher(train, closeness=closeness)
    return model, batcher


def fit_groupsa(
    model: GroupSA,
    split: DataSplit,
    batcher: GroupBatcher,
    training: TrainingConfig = TrainingConfig(),
    callback: Optional[ProgressCallback] = None,
) -> History:
    """Run the two-stage training schedule and return the history."""
    trainer = GroupSATrainer(model, split, batcher, training)
    uses_user_task = model.config.use_user_task
    if uses_user_task:
        trainer.train_user_task(callback=callback)
        if training.init_group_tower_from_user:
            model.group_tower.load_state_dict(model.user_tower.state_dict())
    interleave = training.interleave_user_every if uses_user_task else 0
    for epoch in range(training.group_epochs):
        trainer.train_group_task(epochs=1, callback=callback)
        if interleave and (epoch + 1) % interleave == 0:
            trainer.train_user_task(epochs=1, callback=callback)
    return trainer.history


def train_groupsa(
    split: DataSplit,
    config: GroupSAConfig = GroupSAConfig(),
    training: TrainingConfig = TrainingConfig(),
    callback: Optional[ProgressCallback] = None,
) -> tuple[GroupSA, GroupBatcher, History]:
    """Convenience: build + fit in one call.

    Returns the trained model, the batcher used for group forwards
    (needed again at evaluation time) and the training history.
    """
    model, batcher = build_model(split, config)
    history = fit_groupsa(model, split, batcher, training, callback=callback)
    return model, batcher, history
