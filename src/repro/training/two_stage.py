"""Two-stage joint training (the Training Method of Section II-E).

Stage 1 optimizes the user-item loss L_R on the abundant user-item and
user-user data, learning the shared user/item embeddings.  Stage 2
fine-tunes everything on the sparse group-item interactions with L_G.
Because the embeddings are *shared parameters of one model*, stage 2
starts from the stage-1 representations — exactly the paper's
"use the learned embeddings to initialize ... then fine-tune".

For the Group-G variant (``use_user_task=False``) stage 1 is skipped,
which is what Table V measures.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.config import GroupSAConfig
from repro.core.groupsa import GroupSA
from repro.data.loaders import GroupBatcher
from repro.data.splits import DataSplit
from repro.graphs.tfidf import tfidf_top_neighbours
from repro.persistence import PathLike
from repro.training.callbacks import History, ProgressCallback
from repro.training.checkpointing import CheckpointManager, SchedulePosition
from repro.training.trainer import GroupSATrainer, TrainingConfig


def build_model(
    split: DataSplit,
    config: GroupSAConfig,
    batcher: Optional[GroupBatcher] = None,
) -> tuple[GroupSA, GroupBatcher]:
    """Construct a GroupSA model wired to a split's training data."""
    train = split.train
    model = GroupSA(train.num_users, train.num_items, config)
    if config.uses_user_modeling:
        model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))
    if batcher is None:
        if config.closeness == "direct":
            batcher = GroupBatcher(train)
        else:
            from repro.graphs.closeness import CLOSENESS_REGISTRY, full_attention

            if config.closeness == "full":
                closeness = full_attention()
            else:
                closeness = CLOSENESS_REGISTRY[config.closeness](train)
            batcher = GroupBatcher(train, closeness=closeness)
    return model, batcher


def _restore_position(
    trainer: GroupSATrainer,
    model: GroupSA,
    manager: CheckpointManager,
    training: TrainingConfig,
) -> SchedulePosition:
    """Load the newest checkpoint into ``model``/``trainer`` and return
    the schedule position to continue from (the start, if none exist)."""
    loaded = manager.load_latest(model=model)
    if loaded is None:
        return SchedulePosition()
    __, state = loaded
    if state is None or state.trainer is None or state.schedule is None:
        raise ValueError(
            f"'{manager.latest_path()}' is a weight-only checkpoint; "
            "training cannot resume from it"
        )
    stored_training = state.schedule.get("training")
    if stored_training != dataclasses.asdict(training):
        raise ValueError(
            "resume requires the TrainingConfig the run was started with; "
            f"checkpoint has {stored_training!r}"
        )
    trainer.load_state_dict(state.trainer)
    return SchedulePosition(**state.schedule["position"])


def fit_groupsa(
    model: GroupSA,
    split: DataSplit,
    batcher: GroupBatcher,
    training: TrainingConfig = TrainingConfig(),
    callback: Optional[ProgressCallback] = None,
    *,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    keep_last: int = 3,
    grad_monitor: Optional[object] = None,
) -> History:
    """Run the two-stage training schedule and return the history.

    With ``checkpoint_dir`` set, a v2 checkpoint (weights + optimizer +
    RNG + schedule position) is written atomically every
    ``checkpoint_every`` epochs (plus at every stage boundary), with
    keep-last-``keep_last`` and best-by-group-loss retention.  With
    ``resume=True`` the newest checkpoint in that directory is loaded
    and the schedule continues where it stopped; a resumed run produces
    the same final weights, bit for bit, as an uninterrupted one.

    Observability hooks: a ``callback`` exposing a ``bind`` method (such
    as :class:`repro.obs.RunMetrics`) is bound to the trainer before the
    first epoch, and ``grad_monitor`` (a
    :class:`repro.obs.GradientHealthMonitor`) checks gradients after
    every backward pass.  Neither perturbs training.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least 1")
    trainer = GroupSATrainer(model, split, batcher, training)
    trainer.grad_monitor = grad_monitor
    bind = getattr(callback, "bind", None)
    if callable(bind):
        bind(trainer)
    manager = (
        CheckpointManager(checkpoint_dir, keep_last=keep_last, mode="min")
        if checkpoint_dir is not None
        else None
    )
    if resume and manager is None:
        raise ValueError("resume=True requires checkpoint_dir")
    position = (
        _restore_position(trainer, model, manager, training)
        if resume
        else SchedulePosition()
    )

    def save() -> None:
        group_losses = trainer.history.losses("group")
        manager.save(
            model,
            trainer_state=trainer.state_dict(),
            schedule={
                "position": dataclasses.asdict(position),
                "training": dataclasses.asdict(training),
            },
            metric=group_losses[-1] if group_losses else None,
        )

    uses_user_task = model.config.use_user_task
    if uses_user_task:
        while position.user_epochs_done < training.user_epochs:
            trainer.train_user_task(epochs=1, callback=callback)
            position.user_epochs_done += 1
            if manager is not None and (
                position.user_epochs_done % checkpoint_every == 0
                or position.user_epochs_done == training.user_epochs
            ):
                save()
        if training.init_group_tower_from_user and not position.tower_initialized:
            model.group_tower.load_state_dict(model.user_tower.state_dict())
            position.tower_initialized = True
            if manager is not None:
                save()
    interleave = training.interleave_user_every if uses_user_task else 0
    while position.group_epochs_done < training.group_epochs:
        trainer.train_group_task(epochs=1, callback=callback)
        # The interleaved user epoch belongs to the same resume unit as
        # its group epoch: the position only advances once both ran.
        if interleave and (position.group_epochs_done + 1) % interleave == 0:
            trainer.train_user_task(epochs=1, callback=callback)
        position.group_epochs_done += 1
        if manager is not None and (
            position.group_epochs_done % checkpoint_every == 0
            or position.group_epochs_done == training.group_epochs
        ):
            save()
    return trainer.history


def train_groupsa(
    split: DataSplit,
    config: GroupSAConfig = GroupSAConfig(),
    training: TrainingConfig = TrainingConfig(),
    callback: Optional[ProgressCallback] = None,
    *,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    keep_last: int = 3,
    grad_monitor: Optional[object] = None,
) -> tuple[GroupSA, GroupBatcher, History]:
    """Convenience: build + fit in one call.

    Returns the trained model, the batcher used for group forwards
    (needed again at evaluation time) and the training history.  The
    checkpoint arguments are forwarded to :func:`fit_groupsa`; because
    :func:`build_model` is deterministic in ``config``, resuming with
    the same config restores the interrupted run exactly.
    """
    model, batcher = build_model(split, config)
    history = fit_groupsa(
        model,
        split,
        batcher,
        training,
        callback=callback,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        checkpoint_every=checkpoint_every,
        keep_last=keep_last,
        grad_monitor=grad_monitor,
    )
    return model, batcher, history
