"""Checkpoint retention and resume bookkeeping for long training runs.

:class:`CheckpointManager` owns a directory of numbered v2 checkpoints
(``ckpt-000042.npz``), applies a keep-last-N retention policy, and
mirrors the best checkpoint by a metric (lower-is-better by default,
matching the group-task loss) to ``best.npz``.  All archive writes go
through :func:`repro.persistence.save_checkpoint`, so a crash at any
point — including mid-write — leaves every previously written
checkpoint intact.

:class:`SchedulePosition` records where in the two-stage schedule
(Section II-E) a run is, with the granularity at which
:func:`repro.training.two_stage.fit_groupsa` checkpoints: after each
stage-1 user epoch, after the stage-boundary tower transfer, and after
each stage-2 group epoch (together with its interleaved user epoch).
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.groupsa import GroupSA
from repro.persistence import (
    PathLike,
    TrainingState,
    checkpoint_metadata,
    load_checkpoint,
    save_checkpoint,
)

_CHECKPOINT_PATTERN = re.compile(r"^ckpt-(\d+)\.npz$")
BEST_CHECKPOINT_NAME = "best.npz"


@dataclass
class SchedulePosition:
    """Progress marker inside the two-stage training schedule."""

    user_epochs_done: int = 0
    #: Whether the stage-boundary group-tower initialization from the
    #: user tower has already been applied (must happen exactly once).
    tower_initialized: bool = False
    group_epochs_done: int = 0


class CheckpointManager:
    """Numbered checkpoints with keep-last-N and best-by-metric retention.

    Re-instantiating over an existing directory continues the numbering
    and the best-metric tracking, so retention survives process
    restarts.
    """

    def __init__(
        self,
        directory: PathLike,
        keep_last: int = 3,
        mode: str = "min",
    ) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be at least 1")
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        self.mode = mode
        existing = self._indexed_checkpoints()
        self._counter = existing[-1][0] if existing else 0
        self._best_value: Optional[float] = None
        best = self.best_path()
        if best is not None:
            self._best_value = checkpoint_metadata(best).get("metric")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _indexed_checkpoints(self) -> List[Tuple[int, Path]]:
        found = []
        for path in self.directory.iterdir():
            match = _CHECKPOINT_PATTERN.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def checkpoints(self) -> List[Path]:
        """Retained numbered checkpoints, oldest first."""
        return [path for __, path in self._indexed_checkpoints()]

    def latest_path(self) -> Optional[Path]:
        existing = self.checkpoints()
        return existing[-1] if existing else None

    def best_path(self) -> Optional[Path]:
        path = self.directory / BEST_CHECKPOINT_NAME
        return path if path.exists() else None

    @property
    def best_value(self) -> Optional[float]:
        return self._best_value

    @property
    def next_index(self) -> int:
        """Index the next :meth:`save` will write (current counter + 1)."""
        return self._counter + 1

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def save(
        self,
        model: GroupSA,
        trainer_state: Optional[Dict[str, Any]] = None,
        schedule: Optional[Dict[str, Any]] = None,
        metric: Optional[float] = None,
    ) -> Path:
        """Write the next numbered checkpoint; prune per retention policy."""
        self._counter += 1
        path = self.directory / f"ckpt-{self._counter:06d}.npz"
        save_checkpoint(
            model,
            path,
            trainer_state=trainer_state,
            schedule=schedule,
            metric=metric,
        )
        if metric is not None and self._improves(float(metric)):
            self._best_value = float(metric)
            self._mirror_best(path)
        self._prune()
        return path

    def _improves(self, metric: float) -> bool:
        if self._best_value is None:
            return True
        if self.mode == "min":
            return metric < self._best_value
        return metric > self._best_value

    def _mirror_best(self, source: Path) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".best.", suffix=".tmp"
        )
        os.close(fd)
        try:
            shutil.copyfile(source, tmp_name)
            os.replace(tmp_name, self.directory / BEST_CHECKPOINT_NAME)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def _prune(self) -> None:
        existing = self.checkpoints()
        for path in existing[: -self.keep_last]:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load_latest(
        self, model: Optional[GroupSA] = None
    ) -> Optional[Tuple[GroupSA, Optional[TrainingState]]]:
        """Load the newest checkpoint, or ``None`` when the directory is
        empty (a fresh run)."""
        latest = self.latest_path()
        if latest is None:
            return None
        return load_checkpoint(latest, model=model)
