"""Training history and progress callbacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class EpochLog:
    """One epoch's summary for one task.

    ``duration_s`` is the epoch's wall time as measured by the trainer
    (0.0 in logs restored from checkpoints written before the field
    existed).
    """

    task: str
    epoch: int
    loss: float
    pairwise_accuracy: float
    duration_s: float = 0.0


@dataclass
class History:
    """Accumulated epoch logs for a training run."""

    epochs: List[EpochLog] = field(default_factory=list)

    def record(self, log: EpochLog) -> None:
        self.epochs.append(log)

    def losses(self, task: Optional[str] = None) -> List[float]:
        return [e.loss for e in self.epochs if task is None or e.task == task]

    def final_loss(self, task: str) -> float:
        losses = self.losses(task)
        if not losses:
            raise ValueError(f"no epochs recorded for task '{task}'")
        return losses[-1]


ProgressCallback = Callable[[EpochLog], None]


def print_progress(log: EpochLog) -> None:
    """Simple stdout progress callback for examples and scripts.

    Flushes every line: progress must reach piped consumers (``tee``,
    CI log streaming) as epochs finish, not when the buffer fills.
    """
    print(
        f"[{log.task}] epoch {log.epoch:>3}  "
        f"loss {log.loss:.4f}  pair-acc {log.pairwise_accuracy:.3f}  "
        f"{log.duration_s:.2f}s",
        flush=True,
    )
