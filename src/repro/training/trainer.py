"""Epoch-level BPR trainers for the user-item and group-item tasks."""

from __future__ import annotations

import copy
import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.autograd.context import fused_ops as fused_ops_context
from repro.autograd.context import sparse_grads as sparse_grads_context
from repro.core.groupsa import GroupSA
from repro.data.loaders import GroupBatcher
from repro.data.sampling import NegativeSampler, bpr_triple_batches
from repro.data.splits import DataSplit
from repro.nn.dropout import Dropout
from repro.optim import Adam, SGD, Optimizer, clip_grad_norm
from repro.training.bpr import bpr_accuracy, bpr_loss
from repro.training.callbacks import EpochLog, History, ProgressCallback
from repro.utils import ensure_rng


@dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyper-parameters (Section III-E).

    ``negatives_per_positive`` is the paper's ``N`` (set to 1 for
    training efficiency; Table VIII sweeps it).
    """

    user_epochs: int = 25
    group_epochs: int = 30
    batch_size: int = 256
    negatives_per_positive: int = 1
    learning_rate: float = 0.01
    weight_decay: float = 1e-5
    optimizer: str = "adam"
    #: Global gradient-norm clip; 0 disables clipping.
    grad_clip: float = 0.0
    seed: int = 42
    #: Initialize the group tower from the stage-1 user tower before
    #: fine-tuning.  The paper transfers the learned *embeddings*
    #: between stages; transferring the scorer too markedly improves
    #: generalization at our reduced data scale (the group tower sees
    #: two orders of magnitude fewer interactions than the user tower).
    init_group_tower_from_user: bool = True
    #: During stage 2, replay one user-task epoch every k group epochs
    #: so the shared embeddings stay anchored to the dense user-item
    #: signal (the "simultaneous" joint training of the abstract).
    #: 0 disables interleaving.
    interleave_user_every: int = 2
    #: Emit row-sparse gradients for embedding gathers and take the
    #: optimizer's lazy per-row fast path.  Produces weights
    #: bit-identical to dense training at a per-step cost that scales
    #: with the batch instead of the embedding tables; disable to force
    #: the reference dense path.
    sparse_grads: bool = True
    #: Run the attention blocks and MLP hidden layers through the fused
    #: autograd ops (one graph node + one backward closure per block).
    #: In float64 the fused graphs are bit-identical to the op-by-op
    #: reference; disable to force the unfused path.
    fused_ops: bool = True

    def build_optimizer(self, model: GroupSA) -> Optimizer:
        if self.optimizer == "adam":
            return Adam(
                model.parameters(),
                lr=self.learning_rate,
                weight_decay=self.weight_decay,
            )
        if self.optimizer == "sgd":
            return SGD(
                model.parameters(),
                lr=self.learning_rate,
                weight_decay=self.weight_decay,
            )
        raise ValueError(f"unknown optimizer '{self.optimizer}'")


class GroupSATrainer:
    """Runs the paper's two tasks over one model.

    The trainer owns the negative samplers (built from the *training*
    interactions only) and the optimizer; stage orchestration lives in
    :mod:`repro.training.two_stage`.
    """

    def __init__(
        self,
        model: GroupSA,
        split: DataSplit,
        batcher: GroupBatcher,
        config: TrainingConfig = TrainingConfig(),
    ) -> None:
        self.model = model
        self.split = split
        self.batcher = batcher
        self.config = config
        self._rng = ensure_rng(config.seed)
        train = split.train
        self.user_sampler = NegativeSampler(
            train.user_items(), train.num_items, rng=self._rng
        )
        self.group_sampler = NegativeSampler(
            train.group_items(), train.num_items, rng=self._rng
        )
        self.optimizer = config.build_optimizer(model)
        self.history = History()
        self._epoch_counter = {"user": 0, "group": 0}
        #: Optional :class:`repro.obs.GradientHealthMonitor`; when set,
        #: every step's gradients are checked right after ``backward``.
        self.grad_monitor: Optional[Any] = None

    # ------------------------------------------------------------------
    # Serialization (checkpoint/resume support)
    # ------------------------------------------------------------------

    def _dropout_modules(self) -> list:
        return [m for m in self.model.modules() if isinstance(m, Dropout)]

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot everything (besides the model weights) needed to
        resume training bit-exactly: optimizer state, the trainer's RNG
        bit-generator state, the dropout generators inside the model,
        epoch counters and the recorded history.

        The negative samplers and the batch shuffler draw from
        ``self._rng``, so one bit-generator state covers all sampling
        randomness; dropout layers hold their own generators and are
        captured per module in traversal order.
        """
        return {
            "optimizer": self.optimizer.state_dict(),
            "rng": copy.deepcopy(self._rng.bit_generator.state),
            "model_rng": [
                copy.deepcopy(module._rng.bit_generator.state)
                for module in self._dropout_modules()
            ],
            "epoch_counters": dict(self._epoch_counter),
            "history": [dataclasses.asdict(log) for log in self.history.epochs],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.optimizer.load_state_dict(state["optimizer"])
        self._rng.bit_generator.state = state["rng"]
        dropouts = self._dropout_modules()
        model_rng = state.get("model_rng", [])
        if len(model_rng) != len(dropouts):
            raise ValueError(
                f"checkpoint captured {len(model_rng)} dropout generators "
                f"but the model has {len(dropouts)}"
            )
        for module, rng_state in zip(dropouts, model_rng):
            module._rng.bit_generator.state = rng_state
        self._epoch_counter = {
            task: int(count) for task, count in state["epoch_counters"].items()
        }
        self.history = History(epochs=[EpochLog(**log) for log in state["history"]])

    # ------------------------------------------------------------------

    def train_user_task(
        self, epochs: Optional[int] = None, callback: Optional[ProgressCallback] = None
    ) -> History:
        """Optimize L_R (Eq. 24) for ``epochs`` passes over R^U."""
        epochs = self.config.user_epochs if epochs is None else epochs
        edges = self.split.train.user_item
        for __ in range(epochs):
            log = self._run_epoch("user", edges, self._user_step)
            if callback is not None:
                callback(log)
        return self.history

    def train_group_task(
        self, epochs: Optional[int] = None, callback: Optional[ProgressCallback] = None
    ) -> History:
        """Optimize L_G (Eq. 21) for ``epochs`` passes over R^G."""
        epochs = self.config.group_epochs if epochs is None else epochs
        edges = self.split.train.group_item
        for __ in range(epochs):
            log = self._run_epoch("group", edges, self._group_step)
            if callback is not None:
                callback(log)
        return self.history

    # ------------------------------------------------------------------

    def _run_epoch(self, task: str, edges: np.ndarray, step) -> EpochLog:
        if len(edges) == 0:
            raise ValueError(
                f"no training edges for task '{task}'; refusing to log a "
                "zero-loss epoch over an empty dataset"
            )
        sampler = self.user_sampler if task == "user" else self.group_sampler
        self._epoch_counter[task] += 1
        epoch = self._epoch_counter[task]
        started = time.perf_counter()
        total_loss = 0.0
        total_accuracy = 0.0
        batches = 0
        with sparse_grads_context(self.config.sparse_grads), fused_ops_context(
            self.config.fused_ops
        ):
            for entities, positives, negatives in bpr_triple_batches(
                edges,
                sampler,
                batch_size=self.config.batch_size,
                negatives_per_positive=self.config.negatives_per_positive,
                rng=self._rng,
            ):
                loss, accuracy = step(entities, positives, negatives)
                total_loss += loss
                total_accuracy += accuracy
                batches += 1
        # Flush lazily deferred row updates so everything downstream of
        # an epoch boundary (evaluation, checkpoints, update-ratio
        # metrics) sees dense-current weights.  Included in the epoch
        # duration: it is real training cost.
        self.optimizer.sync()
        log = EpochLog(
            task=task,
            epoch=epoch,
            loss=total_loss / batches,
            pairwise_accuracy=total_accuracy / batches,
            duration_s=time.perf_counter() - started,
        )
        self.history.record(log)
        return log

    def _user_step(
        self, users: np.ndarray, positives: np.ndarray, negatives: np.ndarray
    ) -> tuple[float, float]:
        self.optimizer.zero_grad()
        positive_scores, positive_embedding = self.model.user_score_components(
            users, positives
        )
        negative_scores, negative_embedding = self.model.user_score_components(
            users, negatives
        )
        loss = bpr_loss(positive_scores, negative_scores)
        if positive_embedding is not None:
            # Auxiliary ranking loss on the raw embedding path so the
            # shared embeddings (consumed by the group voting network)
            # are trained at full strength regardless of w^u.
            loss = loss + bpr_loss(positive_embedding, negative_embedding)
        loss.backward()
        self._check_gradients("user")
        self._clip()
        self.optimizer.step()
        return loss.item(), bpr_accuracy(positive_scores, negative_scores)

    def _group_step(
        self, groups: np.ndarray, positives: np.ndarray, negatives: np.ndarray
    ) -> tuple[float, float]:
        self.optimizer.zero_grad()
        batch = self.batcher.batch(groups)
        positive_scores = self.model.group_scores(batch, positives)
        negative_scores = self.model.group_scores(batch, negatives)
        loss = bpr_loss(positive_scores, negative_scores)
        loss.backward()
        self._check_gradients("group")
        self._clip()
        self.optimizer.step()
        return loss.item(), bpr_accuracy(positive_scores, negative_scores)

    def _check_gradients(self, task: str) -> None:
        if self.grad_monitor is not None:
            self.grad_monitor.check(
                self.model.named_parameters(), context=f"{task} step"
            )

    def _clip(self) -> None:
        if self.config.grad_clip > 0:
            clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
