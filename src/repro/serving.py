"""A small serving layer over trained models.

Wraps a checkpoint plus dataset into a request-oriented service:
Top-K for users, dataset groups and ad-hoc member lists, with
explanation payloads (voting weights) and basic input validation —
the surface an application would actually integrate against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.adhoc import AdhocGroupRecommender
from repro.core.groupsa import GroupSA
from repro.data.dataset import GroupRecommendationDataset
from repro.data.loaders import GroupBatcher
from repro.evaluation.ranking import top_k_items
from repro.persistence import load_model


@dataclass
class Recommendation:
    """One ranked recommendation list plus its explanation."""

    entity: str
    items: List[int]
    scores: List[float]
    voting_weights: Optional[Dict[int, float]] = None


@dataclass
class RecommendationService:
    """Serve Top-K requests from a trained GroupSA model.

    Build directly or from a checkpoint::

        service = RecommendationService.from_checkpoint("model.npz", dataset)
        service.recommend_for_group(3, k=5)
        service.recommend_for_members([1, 2, 3], k=5)
    """

    model: GroupSA
    dataset: GroupRecommendationDataset
    _batcher: GroupBatcher = field(init=False, repr=False)
    _adhoc: AdhocGroupRecommender = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._batcher = GroupBatcher(self.dataset)
        self._adhoc = AdhocGroupRecommender(self.model, self.dataset)

    @classmethod
    def from_checkpoint(
        cls, path, dataset: GroupRecommendationDataset
    ) -> "RecommendationService":
        model = load_model(path)
        if model.num_users != dataset.num_users or model.num_items != dataset.num_items:
            raise ValueError(
                "checkpoint entity counts do not match the dataset: "
                f"model ({model.num_users} users, {model.num_items} items) vs "
                f"dataset ({dataset.num_users} users, {dataset.num_items} items)"
            )
        return cls(model=model, dataset=dataset)

    # ------------------------------------------------------------------

    def recommend_for_user(self, user: int, k: int = 10) -> Recommendation:
        """Top-K items for an individual user (seen items excluded)."""
        self._check_user(user)
        exclude = self.dataset.user_items()[user]
        items = top_k_items(
            self.model.score_user_items, user, self.dataset.num_items, k, exclude
        )
        scores = self.model.score_user_items(
            np.full(items.size, user, dtype=np.int64), items
        )
        return Recommendation(
            entity=f"user:{user}", items=items.tolist(), scores=scores.tolist()
        )

    def recommend_for_group(self, group: int, k: int = 10) -> Recommendation:
        """Top-K items for a dataset group, with voting explanation."""
        if not 0 <= group < self.dataset.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.dataset.num_groups})")
        exclude = self.dataset.group_items()[group]

        def scorer(groups, items):
            return self.model.score_group_items(self._batcher.batch(groups), items)

        items = top_k_items(scorer, group, self.dataset.num_items, k, exclude)
        scores = scorer(np.full(items.size, group, dtype=np.int64), items)
        weights = self._explain(group, int(items[0])) if items.size else None
        return Recommendation(
            entity=f"group:{group}",
            items=items.tolist(),
            scores=scores.tolist(),
            voting_weights=weights,
        )

    def recommend_for_members(
        self, members: Sequence[int], k: int = 10
    ) -> Recommendation:
        """Top-K items for an ad-hoc member list (true OGR serving)."""
        for member in members:
            self._check_user(int(member))
        items = self._adhoc.recommend(members, k=k)
        scores = self._adhoc.score(members, items) if items.size else np.empty(0)
        weights = None
        if items.size:
            gamma = self._adhoc.voting_weights(members, int(items[0]))
            unique_members = sorted(set(int(m) for m in members))
            weights = {m: float(w) for m, w in zip(unique_members, gamma)}
        return Recommendation(
            entity=f"adhoc:{','.join(str(m) for m in members)}",
            items=items.tolist(),
            scores=scores.tolist(),
            voting_weights=weights,
        )

    # ------------------------------------------------------------------

    def _explain(self, group: int, item: int) -> Dict[int, float]:
        members = self.dataset.group_members[group]
        gamma = self.model.member_attention(
            self._batcher.batch([group]), np.array([item])
        )[0]
        return {int(m): float(w) for m, w in zip(members, gamma[: members.size])}

    def _check_user(self, user: int) -> None:
        if not 0 <= user < self.dataset.num_users:
            raise IndexError(f"user {user} out of range [0, {self.dataset.num_users})")
