"""A small serving layer over trained models.

Wraps a checkpoint plus dataset into a request-oriented service:
Top-K for users, dataset groups and ad-hoc member lists, with
explanation payloads (voting weights) and basic input validation —
the surface an application would actually integrate against.

Three execution modes share this surface:

- **direct** (the default): every request runs its own forward pass;
- **engine-backed**: requests route through an
  :class:`~repro.engine.service.InferenceEngine` — precomputed score
  caches, micro-batched forward passes and serving telemetry — and
  return the same recommendation lists.  Enable with
  :meth:`RecommendationService.enable_engine`.
- **cluster-backed**: Top-K computation scatters across a pool of
  shard worker processes through a
  :class:`~repro.cluster.router.ShardRouter` (shared mmap-backed
  weights, exact cross-shard merge) and returns the same
  recommendation lists.  Enable with
  :meth:`RecommendationService.enable_cluster`; explanations stay
  in-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.adhoc import AdhocGroupRecommender
from repro.core.groupsa import GroupSA
from repro.data.dataset import GroupRecommendationDataset
from repro.data.loaders import GroupBatcher
from repro.engine.service import EngineConfig, InferenceEngine
from repro.engine.telemetry import Telemetry
from repro.evaluation.ranking import top_k_items
from repro.obs.spans import span
from repro.persistence import load_model

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.cluster.router import ClusterConfig, ShardRouter


@dataclass
class Recommendation:
    """One ranked recommendation list plus its explanation.

    ``trace_id`` correlates the response with the request's span tree
    in the tracer's span log; it is ``None`` whenever tracing is off
    (see docs/observability.md, "Serving observability").

    ``model_version`` is the version of the model that actually scored
    this request — captured atomically with the scores, so during a
    hot-swap it names the exact snapshot served (see docs/online.md).
    It is ``None`` when the service has never been given a version.
    """

    entity: str
    items: List[int]
    scores: List[float]
    voting_weights: Optional[Dict[int, float]] = None
    trace_id: Optional[str] = None
    model_version: Optional[int] = None


@dataclass
class RecommendationService:
    """Serve Top-K requests from a trained GroupSA model.

    Build directly or from a checkpoint::

        service = RecommendationService.from_checkpoint("model.npz", dataset)
        service.recommend_for_group(3, k=5)
        service.recommend_for_members([1, 2, 3], k=5)

    Call :meth:`enable_engine` to route Top-K computation through the
    batched inference engine, or :meth:`enable_cluster` to scatter it
    across shard worker processes; explanations and payload shapes
    are unchanged either way.
    """

    model: GroupSA
    dataset: GroupRecommendationDataset
    engine: Optional[InferenceEngine] = None
    router: Optional["ShardRouter"] = None
    model_version: Optional[int] = None
    _batcher: GroupBatcher = field(init=False, repr=False)
    _adhoc: AdhocGroupRecommender = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._batcher = GroupBatcher(self.dataset)
        self._adhoc = AdhocGroupRecommender(self.model, self.dataset)

    @classmethod
    def from_checkpoint(
        cls,
        path,
        dataset: GroupRecommendationDataset,
        engine_config: Optional[EngineConfig] = None,
        use_engine: bool = False,
    ) -> "RecommendationService":
        model = load_model(path)
        if model.num_users != dataset.num_users or model.num_items != dataset.num_items:
            raise ValueError(
                "checkpoint entity counts do not match the dataset: "
                f"model ({model.num_users} users, {model.num_items} items) vs "
                f"dataset ({dataset.num_users} users, {dataset.num_items} items)"
            )
        service = cls(model=model, dataset=dataset)
        if use_engine or engine_config is not None:
            service.enable_engine(engine_config)
        return service

    # ------------------------------------------------------------------
    # Engine mode
    # ------------------------------------------------------------------

    def enable_engine(
        self,
        config: Optional[EngineConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> InferenceEngine:
        """Switch to engine-backed serving; returns the engine."""
        if self.engine is None:
            self.engine = InferenceEngine(
                self.model,
                self.dataset,
                config=config,
                telemetry=telemetry,
                model_version=self.model_version or 0,
            )
        return self.engine

    def enable_cluster(
        self,
        config: Optional["ClusterConfig"] = None,
        workdir=None,
        dataset_path=None,
    ) -> "ShardRouter":
        """Switch to cluster-backed serving; returns the router.

        Launches a pool of shard worker processes sharing one
        mmap-backed weight store (see docs/serving.md, "Sharded
        multi-process serving").  Top-K computation scatters across
        the pool; explanation payloads (voting weights) are still
        computed in-process from ``self.model``.  When both an engine
        and a router are enabled, the router takes precedence.
        """
        if self.router is None:
            from repro.cluster.router import ShardRouter

            self.router = ShardRouter.launch(
                self.model,
                self.dataset,
                config=config,
                workdir=workdir,
                dataset_path=dataset_path,
            )
        return self.router

    def apply_model(
        self,
        model: GroupSA,
        version: int,
        ann_index=None,
    ) -> int:
        """Hot-swap the service onto ``model`` at ``version``.

        Propagates the swap through whichever execution mode is live:
        the engine gets :meth:`InferenceEngine.swap_model` (atomic
        bundle swap, in-flight batches unaffected), the cluster router
        gets :meth:`ShardRouter.swap_model` (rolling per-worker store
        re-attach), and direct mode simply rebinds ``self.model`` and
        the ad-hoc recommender.  Explanations always follow the new
        model.  Returns ``version``.
        """
        version = int(version)
        with span("service.apply_model", mode=self._mode(), version=version):
            if self.engine is not None:
                self.engine.swap_model(model, version=version, ann_index=ann_index)
            if self.router is not None:
                self.router.swap_model(model, version=version)
            self.model = model
            self._adhoc = AdhocGroupRecommender(model, self.dataset)
            self.model_version = version
        return version

    def close(self) -> None:
        """Stop the engine worker and/or shard workers, if attached."""
        if self.engine is not None:
            self.engine.close()
            self.engine = None
        if self.router is not None:
            self.router.close()
            self.router = None

    def telemetry_snapshot(self) -> Optional[dict]:
        """The engine's telemetry snapshot (None in direct mode)."""
        return self.engine.telemetry_snapshot() if self.engine is not None else None

    def fleet_metrics(self):
        """One merged :class:`~repro.obs.metrics_registry.MetricsRegistry`
        covering whichever execution tiers are live.

        Cluster mode folds in every reachable worker's registry (exact
        histogram merge); engine mode contributes the telemetry
        registry; direct mode yields an empty registry.  This is the
        scrape point the ops report and SLO time series sample.
        """
        from repro.obs.metrics_registry import MetricsRegistry

        merged = MetricsRegistry()
        if self.router is not None:
            merged.merge(self.router.metrics())
        if self.engine is not None:
            merged.merge(self.engine.telemetry.registry)
        return merged

    # ------------------------------------------------------------------

    def recommend_for_user(self, user: int, k: int = 10) -> Recommendation:
        """Top-K items for an individual user (seen items excluded)."""
        self._check_user(user)
        self._check_k(k)
        with span(
            "service.recommend_for_user", mode=self._mode(), user=int(user), k=k
        ) as root:
            version = self.model_version
            if self.router is not None:
                items, scores, version = self.router.topk_user_versioned(user, k=k)
            elif self.engine is not None:
                items, scores, version = self.engine.topk_user_versioned(user, k)
            else:
                exclude = self.dataset.user_items()[user]
                with span("direct.score"):
                    items = top_k_items(
                        self.model.score_user_items,
                        user,
                        self.dataset.num_items,
                        k,
                        exclude,
                    )
                    scores = self.model.score_user_items(
                        np.full(items.size, user, dtype=np.int64), items
                    )
            return Recommendation(
                entity=f"user:{user}",
                items=items.tolist(),
                scores=scores.tolist(),
                trace_id=root.trace_id if root is not None else None,
                model_version=version,
            )

    def recommend_for_group(self, group: int, k: int = 10) -> Recommendation:
        """Top-K items for a dataset group, with voting explanation."""
        if not 0 <= group < self.dataset.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.dataset.num_groups})")
        self._check_k(k)
        with span(
            "service.recommend_for_group", mode=self._mode(), group=int(group), k=k
        ) as root:
            version = self.model_version
            if self.router is not None:
                items, scores, version = self.router.topk_group_versioned(group, k=k)
            elif self.engine is not None:
                items, scores, version = self.engine.topk_group_versioned(group, k)
            else:
                exclude = self.dataset.group_items()[group]

                def scorer(groups, target_items):
                    return self.model.score_group_items(
                        self._batcher.batch(groups), target_items
                    )

                with span("direct.score"):
                    items = top_k_items(
                        scorer, group, self.dataset.num_items, k, exclude
                    )
                    scores = scorer(np.full(items.size, group, dtype=np.int64), items)
            weights = self._explain(group, int(items[0])) if items.size else None
            return Recommendation(
                entity=f"group:{group}",
                items=items.tolist(),
                scores=scores.tolist(),
                voting_weights=weights,
                trace_id=root.trace_id if root is not None else None,
                model_version=version,
            )

    def recommend_for_members(
        self, members: Sequence[int], k: int = 10
    ) -> Recommendation:
        """Top-K items for an ad-hoc member list (true OGR serving).

        Duplicate member ids collapse to one vote: the model scores the
        *set* of members, and ``voting_weights`` is keyed by the
        canonical member order (ascending unique ids — the order the
        ad-hoc batch feeds the voting network).
        """
        if len(members) == 0:
            raise ValueError("members must be a non-empty sequence of user ids")
        for member in members:
            self._check_user(int(member))
        self._check_k(k)
        canonical = self._adhoc.canonical_members(members)
        with span(
            "service.recommend_for_members",
            mode=self._mode(),
            member_count=len(canonical),
            k=k,
        ) as root:
            version = self.model_version
            if self.router is not None:
                items, scores, version = self.router.topk_members_versioned(
                    members, k=k
                )
            elif self.engine is not None:
                items, scores, version = self.engine.topk_members_versioned(
                    members, k
                )
            else:
                with span("direct.score"):
                    items = self._adhoc.recommend(members, k=k)
                    scores = (
                        self._adhoc.score(members, items) if items.size else np.empty(0)
                    )
            weights = None
            if items.size:
                gamma = self._adhoc.voting_weights(members, int(items[0]))
                # gamma rows follow the ad-hoc batch's member axis, which is
                # exactly `canonical`; zip them explicitly.
                weights = {int(m): float(w) for m, w in zip(canonical, gamma)}
            return Recommendation(
                entity=f"adhoc:{','.join(str(m) for m in members)}",
                items=items.tolist(),
                scores=scores.tolist(),
                voting_weights=weights,
                trace_id=root.trace_id if root is not None else None,
                model_version=version,
            )

    # ------------------------------------------------------------------

    def _mode(self) -> str:
        if self.router is not None:
            return "cluster"
        return "engine" if self.engine is not None else "direct"

    def _explain(self, group: int, item: int) -> Dict[int, float]:
        members = self.dataset.group_members[group]
        gamma = self.model.member_attention(
            self._batcher.batch([group]), np.array([item])
        )[0]
        return {int(m): float(w) for m, w in zip(members, gamma[: members.size])}

    def _check_user(self, user: int) -> None:
        if not 0 <= user < self.dataset.num_users:
            raise IndexError(f"user {user} out of range [0, {self.dataset.num_users})")

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
