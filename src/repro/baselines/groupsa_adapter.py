"""Adapters exposing GroupSA (and its variants) as :class:`Recommender`.

The evaluation harness treats every model uniformly through the
``Recommender`` interface; these adapters wrap model construction, the
two-stage training schedule and the group batcher.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import Recommender
from repro.core.config import GroupSAConfig
from repro.core.fast import FastGroupRecommender
from repro.core.groupsa import GroupSA
from repro.core.variants import variant_config
from repro.data.loaders import GroupBatcher
from repro.data.splits import DataSplit
from repro.training.trainer import TrainingConfig
from repro.training.two_stage import build_model, fit_groupsa


class GroupSARecommender(Recommender):
    """GroupSA (or a named ablation variant) behind the benchmark API."""

    def __init__(
        self,
        config: GroupSAConfig = GroupSAConfig(),
        training: TrainingConfig = TrainingConfig(),
        variant: str = "GroupSA",
    ) -> None:
        self.config = variant_config(variant, config)
        self.training = training
        self.name = variant
        self.model: Optional[GroupSA] = None
        self.batcher: Optional[GroupBatcher] = None

    def fit(self, split: DataSplit) -> "GroupSARecommender":
        """Train once; subsequent calls are no-ops.

        Idempotence lets one trained instance be shared between the
        main row and the score-aggregation rows of the overall
        comparison without retraining.  Construct a fresh instance to
        retrain (e.g. for a different split or seed).
        """
        if self.model is not None:
            return self
        model, batcher = build_model(split, self.config)
        fit_groupsa(model, split, batcher, self.training)
        self.model = model
        self.batcher = batcher
        return self

    def _require(self) -> tuple[GroupSA, GroupBatcher]:
        if self.model is None or self.batcher is None:
            raise RuntimeError(f"{self.name}.fit() must be called before scoring")
        return self.model, self.batcher

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        model, __ = self._require()
        return model.score_user_items(users, items)

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        model, batcher = self._require()
        return model.score_group_items(batcher.batch(groups), items)


class ScoreAggregationRecommender(Recommender):
    """Group+avg / Group+lm / Group+ms (Section III-D).

    Per the paper: "we first run GroupSA to predict each member's
    personal preferences, and then apply static aggregation strategies"
    — so this wraps a (possibly shared, already fitted) GroupSA and
    only replaces the group scorer.
    """

    def __init__(self, base: GroupSARecommender, strategy: str) -> None:
        self.base = base
        self.strategy = strategy
        self.name = f"Group+{strategy}"

    def fit(self, split: DataSplit) -> "ScoreAggregationRecommender":
        if self.base.model is None:
            self.base.fit(split)
        return self

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        model, batcher = self.base._require()
        fast = FastGroupRecommender(model, self.strategy)
        return fast.score_group_items(batcher.batch(groups), items)
