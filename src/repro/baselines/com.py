"""COM [13]: a generative COnsensus Model for group recommendation.

COM generates a group's choice at the *topic* level: the group forms a
consensus topic mixture by blending its members' topic preferences with
member-specific influence weights, then draws the item from the topic's
item distribution:

    p(z | g) ~ (1 - kappa) * sum_{u in g} lambda(u) * theta_u(z)
               + kappa * p(z | groups)
    p(i | g) = sum_z p(z | g) * phi_z(i)

Two ingredients distinguish COM from PIT (which mixes member *item*
preferences directly): consensus forms at the topic level, and members
partially conform to what groups in general do — the global group-topic
prior ``p(z | groups)`` estimated from all observed group choices,
mixed in with weight ``kappa`` (COM's observation that users behave
differently in groups than alone).  Influence weights are estimated by
EM on the group-item interactions, like PIT's impacts.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import Recommender
from repro.baselines.topic_model import PLSATopicModel, TopicModelConfig
from repro.data.splits import DataSplit


class COM(Recommender):
    """Consensus generative model baseline."""

    name = "COM"

    def __init__(
        self,
        num_topics: int = 16,
        topic_iterations: int = 30,
        influence_iterations: int = 15,
        influence_smoothing: float = 0.5,
        conformity: float = 0.3,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= conformity <= 1.0:
            raise ValueError("conformity (kappa) must be in [0, 1]")
        self.topic_config = TopicModelConfig(
            num_topics=num_topics, iterations=topic_iterations, seed=seed
        )
        self.influence_iterations = influence_iterations
        self.influence_smoothing = influence_smoothing
        self.conformity = conformity
        self.topic_model = PLSATopicModel(self.topic_config)
        self.influence: Optional[np.ndarray] = None
        self.group_topic_prior: Optional[np.ndarray] = None
        self._members: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------

    def fit(self, split: DataSplit) -> "COM":
        train = split.train
        self.topic_model.fit_dataset(train)
        self._members = train.group_members
        self.influence = self._fit_influence(train.group_item)
        self.group_topic_prior = self._fit_group_topic_prior(train.group_item)
        return self

    def _fit_group_topic_prior(self, group_edges: np.ndarray) -> np.ndarray:
        """Global p(z | groups): topic posterior mass of observed group
        choices (what kinds of activities groups in general pick)."""
        phi = self.topic_model.phi
        assert phi is not None
        topics = phi.shape[0]
        prior = np.full(topics, 1e-3)
        for __, item in group_edges:
            posterior = phi[:, item]
            total = posterior.sum()
            if total > 0:
                prior += posterior / total
        return prior / prior.sum()

    def _group_topic_mixture(self, members: np.ndarray) -> np.ndarray:
        """Consensus topic distribution p(z | g) for one member set."""
        assert self.influence is not None and self.group_topic_prior is not None
        theta = self.topic_model.user_topics(members)
        weights = self.influence[members]
        weights = weights / max(weights.sum(), 1e-300)
        mixture = weights @ theta
        mixture = mixture / max(mixture.sum(), 1e-300)
        blended = (1.0 - self.conformity) * mixture + self.conformity * self.group_topic_prior
        return blended / max(blended.sum(), 1e-300)

    def _fit_influence(self, group_edges: np.ndarray) -> np.ndarray:
        """EM over which member's topic taste drove each group choice."""
        assert self._members is not None
        theta, phi = self.topic_model.theta, self.topic_model.phi
        assert theta is not None and phi is not None
        num_users = theta.shape[0]
        influence = np.ones(num_users)
        if len(group_edges) == 0:
            return influence / influence.sum()
        for __ in range(self.influence_iterations):
            counts = np.full(num_users, self.influence_smoothing)
            for group, item in group_edges:
                members = self._members[group]
                # Likelihood of the item under each member's topics.
                member_likelihood = theta[members] @ phi[:, item]
                weights = influence[members] * np.maximum(member_likelihood, 1e-300)
                total = weights.sum()
                if total <= 0:
                    continue
                counts[members] += weights / total
            influence = counts / counts.sum()
        return influence

    # ------------------------------------------------------------------

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self.topic_model.score(users, items)

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        if self.influence is None or self._members is None:
            raise RuntimeError("COM.fit() must be called before scoring")
        phi = self.topic_model.phi
        assert phi is not None
        groups = np.asarray(groups, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        scores = np.empty(len(groups))
        mixture_cache: dict[int, np.ndarray] = {}
        for position, (group, item) in enumerate(zip(groups, items)):
            group = int(group)
            if group not in mixture_cache:
                mixture_cache[group] = self._group_topic_mixture(self._members[group])
            scores[position] = float(mixture_cache[group] @ phi[:, item])
        return scores
