"""Baseline recommenders compared against GroupSA (Section III-D)."""

from repro.baselines.agree import AGREE, AGREENetwork
from repro.baselines.base import Recommender
from repro.baselines.bprmf import BPRMF, MFNetwork
from repro.baselines.com import COM
from repro.baselines.itemknn import ItemKNN
from repro.baselines.groupsa_adapter import (
    GroupSARecommender,
    ScoreAggregationRecommender,
)
from repro.baselines.ncf import NCF, NCFNetwork
from repro.baselines.pit import PIT
from repro.baselines.pop import Popularity
from repro.baselines.sigr import SIGR, SIGRNetwork
from repro.baselines.topic_model import PLSATopicModel, TopicModelConfig

__all__ = [
    "Recommender",
    "Popularity",
    "NCF",
    "NCFNetwork",
    "AGREE",
    "AGREENetwork",
    "SIGR",
    "SIGRNetwork",
    "PIT",
    "COM",
    "ItemKNN",
    "BPRMF",
    "MFNetwork",
    "PLSATopicModel",
    "TopicModelConfig",
    "GroupSARecommender",
    "ScoreAggregationRecommender",
]
