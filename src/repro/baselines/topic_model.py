"""PLSA-style topic model substrate for the generative baselines.

PIT [3] and COM [13] (Section VI-B) are probabilistic generative models
over user-item interactions.  Both need the same substrate: per-user
topic mixtures ``theta`` and per-topic item distributions ``phi``
estimated from the implicit feedback matrix.  This module implements
that substrate with vectorised Expectation-Maximisation over the edge
list (each observed interaction has count 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import GroupRecommendationDataset
from repro.utils import RngLike, ensure_rng


@dataclass
class TopicModelConfig:
    """EM hyper-parameters.

    ``alpha``/``beta`` are Dirichlet-style pseudo-counts smoothing the
    user-topic and topic-item distributions (they keep unseen items at
    non-zero probability, which the ranking protocol needs).
    """

    num_topics: int = 16
    iterations: int = 30
    alpha: float = 0.1
    beta: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_topics < 1:
            raise ValueError("num_topics must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("smoothing must be non-negative")


class PLSATopicModel:
    """User-topic / topic-item model fit by EM on implicit feedback."""

    def __init__(self, config: TopicModelConfig = TopicModelConfig()) -> None:
        self.config = config
        self.theta: np.ndarray | None = None  # (m, K) p(z | u)
        self.phi: np.ndarray | None = None  # (K, n) p(i | z)
        self._log_likelihoods: list[float] = []

    # ------------------------------------------------------------------

    def fit(
        self,
        edges: np.ndarray,
        num_users: int,
        num_items: int,
        rng: RngLike = None,
    ) -> "PLSATopicModel":
        """Run EM over the (user, item) edge list."""
        if len(edges) == 0:
            raise ValueError("cannot fit a topic model on zero interactions")
        generator = ensure_rng(self.config.seed if rng is None else rng)
        topics = self.config.num_topics
        users = edges[:, 0]
        items = edges[:, 1]

        theta = generator.random((num_users, topics)) + 0.1
        theta /= theta.sum(axis=1, keepdims=True)
        phi = generator.random((topics, num_items)) + 0.1
        phi /= phi.sum(axis=1, keepdims=True)

        self._log_likelihoods = []
        for __ in range(self.config.iterations):
            # E-step: responsibilities p(z | u, i) per observed edge.
            joint = theta[users] * phi[:, items].T  # (E, K)
            normaliser = joint.sum(axis=1, keepdims=True)
            normaliser = np.maximum(normaliser, 1e-300)
            responsibility = joint / normaliser
            self._log_likelihoods.append(float(np.log(normaliser).sum()))

            # M-step with additive smoothing.
            theta = np.full((num_users, topics), self.config.alpha)
            np.add.at(theta, users, responsibility)
            theta /= theta.sum(axis=1, keepdims=True)

            phi = np.full((topics, num_items), self.config.beta)
            np.add.at(phi.T, items, responsibility)
            phi /= phi.sum(axis=1, keepdims=True)

        self.theta = theta
        self.phi = phi
        return self

    def fit_dataset(self, dataset: GroupRecommendationDataset) -> "PLSATopicModel":
        return self.fit(dataset.user_item, dataset.num_users, dataset.num_items)

    # ------------------------------------------------------------------

    def _require_fit(self) -> tuple[np.ndarray, np.ndarray]:
        if self.theta is None or self.phi is None:
            raise RuntimeError("PLSATopicModel.fit() must be called first")
        return self.theta, self.phi

    @property
    def log_likelihood_trace(self) -> list[float]:
        """Per-iteration training log-likelihood (monotone under EM)."""
        return list(self._log_likelihoods)

    def item_probabilities(self, users: np.ndarray) -> np.ndarray:
        """p(i | u) for each requested user, shape (len(users), n)."""
        theta, phi = self._require_fit()
        return theta[np.asarray(users, dtype=np.int64)] @ phi

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """p(i | u) for aligned (user, item) pairs."""
        theta, phi = self._require_fit()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        return np.einsum("ek,ek->e", theta[users], phi[:, items].T)

    def user_topics(self, users: np.ndarray) -> np.ndarray:
        theta, __ = self._require_fit()
        return theta[np.asarray(users, dtype=np.int64)]
