"""Popularity baseline [34] — non-personalized Top-N.

Items are ranked by their interaction count in the training set; the
same ranking serves users and groups alike.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Recommender
from repro.data.splits import DataSplit


class Popularity(Recommender):
    """Rank by training-set interaction counts.

    ``include_group_interactions`` adds group-item edges to the counts;
    the user-item edges dominate either way because group interactions
    are two orders of magnitude sparser.
    """

    name = "Pop"

    def __init__(self, include_group_interactions: bool = True) -> None:
        self.include_group_interactions = include_group_interactions
        self._counts: np.ndarray | None = None

    def fit(self, split: DataSplit) -> "Popularity":
        train = split.train
        counts = np.zeros(train.num_items, dtype=np.float64)
        np.add.at(counts, train.user_item[:, 1], 1.0)
        if self.include_group_interactions and len(train.group_item):
            np.add.at(counts, train.group_item[:, 1], 1.0)
        self._counts = counts
        return self

    def _require_counts(self) -> np.ndarray:
        if self._counts is None:
            raise RuntimeError("Popularity.fit() must be called before scoring")
        return self._counts

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._require_counts()[np.asarray(items, dtype=np.int64)]

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._require_counts()[np.asarray(items, dtype=np.int64)]
