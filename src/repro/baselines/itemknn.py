"""Item-KNN collaborative filtering baseline.

The classic neighbourhood method: item-item cosine similarity over the
binary interaction matrix; a user's score for an item is the summed
similarity to the items in their history (truncated to the K most
similar neighbours per item).  Groups are scored by averaging member
scores — the standard late-aggregation treatment for methods without a
native group model.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import Recommender
from repro.data.splits import DataSplit
from repro.graphs.bipartite import interaction_matrix


class ItemKNN(Recommender):
    """Item-based K-nearest-neighbour recommender."""

    name = "ItemKNN"

    def __init__(self, neighbours: int = 20) -> None:
        if neighbours < 1:
            raise ValueError("neighbours must be positive")
        self.neighbours = neighbours
        self._similarity: Optional[np.ndarray] = None
        self._interactions: Optional[sp.csr_matrix] = None
        self._members: Optional[List[np.ndarray]] = None

    def fit(self, split: DataSplit) -> "ItemKNN":
        train = split.train
        matrix = interaction_matrix(train)  # (m, n) binary
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=0))).ravel()
        norms = np.where(norms > 0, norms, 1.0)
        similarity = np.asarray((matrix.T @ matrix).todense(), dtype=float)
        similarity /= norms[:, None]
        similarity /= norms[None, :]
        np.fill_diagonal(similarity, 0.0)
        # Truncate each item's neighbourhood to the strongest K entries.
        if self.neighbours < similarity.shape[0] - 1:
            for row in similarity:
                cutoff = np.partition(row, -self.neighbours)[-self.neighbours]
                row[row < cutoff] = 0.0
        self._similarity = similarity
        self._interactions = matrix
        self._members = train.group_members
        return self

    def _require_fit(self) -> tuple[np.ndarray, sp.csr_matrix]:
        if self._similarity is None or self._interactions is None:
            raise RuntimeError("ItemKNN.fit() must be called before scoring")
        return self._similarity, self._interactions

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        similarity, interactions = self._require_fit()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        history = interactions[users]  # (B, n) sparse rows
        # score(u, i) = sum_{j in history(u)} sim(j, i)
        return np.asarray(
            history.multiply(similarity[:, items].T).sum(axis=1)
        ).ravel()

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        if self._members is None:
            raise RuntimeError("ItemKNN.fit() must be called before scoring")
        groups = np.asarray(groups, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        scores = np.empty(len(groups))
        for position, (group, item) in enumerate(zip(groups, items)):
            members = self._members[group]
            member_scores = self.score_user_items(
                members, np.full(members.size, item, dtype=np.int64)
            )
            scores[position] = float(member_scores.mean())
        return scores
