"""BPR-MF [31]: matrix factorization with the BPR objective.

The pure latent-factor reference point: dot-product scores with user
and item embeddings plus an item bias, trained with the same pair-wise
loss every neural model here uses.  Groups are scored by averaging
member scores (late aggregation).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.baselines.base import Recommender
from repro.data.sampling import NegativeSampler, bpr_triple_batches
from repro.data.splits import DataSplit
from repro.nn import Embedding, Module
from repro.nn.module import Parameter
from repro.optim import Adam
from repro.training.bpr import bpr_loss
from repro.utils import RngLike, ensure_rng


class MFNetwork(Module):
    """Dot-product factor model with item biases."""

    def __init__(
        self, num_users: int, num_items: int, dim: int = 32, rng: RngLike = None
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.user_factors = Embedding(num_users, dim, weight_init="gaussian", rng=generator)
        self.item_factors = Embedding(num_items, dim, weight_init="gaussian", rng=generator)
        self.item_bias = Parameter(np.zeros(num_items))

    def forward(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        interaction = (self.user_factors(users) * self.item_factors(items)).sum(axis=-1)
        return interaction + self.item_bias[items]


class BPRMF(Recommender):
    """BPR matrix factorization baseline."""

    name = "BPR-MF"

    def __init__(
        self,
        dim: int = 32,
        epochs: int = 40,
        batch_size: int = 256,
        learning_rate: float = 0.02,
        weight_decay: float = 1e-5,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.seed = seed
        self._network: Optional[MFNetwork] = None
        self._members: Optional[List[np.ndarray]] = None

    def fit(self, split: DataSplit) -> "BPRMF":
        rng = ensure_rng(self.seed)
        train = split.train
        network = MFNetwork(train.num_users, train.num_items, self.dim, rng=rng)
        optimizer = Adam(
            network.parameters(), lr=self.learning_rate, weight_decay=self.weight_decay
        )
        sampler = NegativeSampler(train.user_items(), train.num_items, rng=rng)
        for __ in range(self.epochs):
            for users, positives, negatives in bpr_triple_batches(
                train.user_item, sampler, self.batch_size, rng=rng
            ):
                optimizer.zero_grad()
                loss = bpr_loss(network(users, positives), network(users, negatives))
                loss.backward()
                optimizer.step()
        self._network = network
        self._members = train.group_members
        return self

    def _require_fit(self) -> MFNetwork:
        if self._network is None:
            raise RuntimeError("BPRMF.fit() must be called before scoring")
        return self._network

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        network = self._require_fit()
        with no_grad():
            return network(users, items).data

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        network = self._require_fit()
        assert self._members is not None
        groups = np.asarray(groups, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        scores = np.empty(len(groups))
        with no_grad():
            for position, (group, item) in enumerate(zip(groups, items)):
                members = self._members[group]
                member_scores = network(
                    members, np.full(members.size, item, dtype=np.int64)
                ).data
                scores[position] = float(member_scores.mean())
        return scores
