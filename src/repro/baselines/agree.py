"""AGREE [9]: attentive group recommendation.

AGREE represents a group as the attention-weighted sum of its member
embeddings (attention conditioned on the target item) *plus* a learned
group preference embedding, then scores (group representation, item)
pairs under the NCF framework.  User and group tasks are trained
jointly on shared user/item embeddings.

Differences from GroupSA that this baseline deliberately keeps:
no member-member interaction modeling (no self-attention), no social
information, no user modeling from auxiliary graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.baselines.base import Recommender
from repro.core.prediction import PredictionTower
from repro.data.loaders import GroupBatcher
from repro.data.sampling import NegativeSampler, bpr_triple_batches
from repro.data.splits import DataSplit
from repro.nn import Embedding, Module, PairwiseAttention
from repro.optim import Adam
from repro.training.bpr import bpr_loss
from repro.utils import RngLike, ensure_rng


class AGREENetwork(Module):
    """The AGREE scoring network."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        num_groups: int,
        embedding_dim: int = 32,
        attention_hidden: int = 32,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.user_embedding = Embedding(num_users, embedding_dim, rng=generator)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=generator)
        #: The "group preference embedding" capturing group-level taste
        #: beyond its members.
        self.group_embedding = Embedding(num_groups, embedding_dim, rng=generator)
        self.member_attention = PairwiseAttention(
            query_features=embedding_dim,
            candidate_features=embedding_dim,
            hidden_features=attention_hidden,
            rng=generator,
        )
        self.tower = PredictionTower(embedding_dim, (32,), rng=generator)

    def group_scores(
        self,
        group_ids: np.ndarray,
        members: np.ndarray,
        mask: np.ndarray,
        item_ids: np.ndarray,
    ) -> Tensor:
        item_emb = self.item_embedding(item_ids)
        member_emb = self.user_embedding(members)
        aggregated, __ = self.member_attention(
            query=item_emb, candidates=member_emb, mask=mask
        )
        group_repr = aggregated + self.group_embedding(group_ids)
        return self.tower(group_repr, item_emb)

    def user_scores(self, user_ids: np.ndarray, item_ids: np.ndarray) -> Tensor:
        return self.tower(self.user_embedding(user_ids), self.item_embedding(item_ids))


class AGREE(Recommender):
    """AGREE trained jointly on both tasks with BPR."""

    name = "AGREE"

    def __init__(
        self,
        embedding_dim: int = 32,
        epochs: int = 30,
        batch_size: int = 256,
        learning_rate: float = 0.01,
        weight_decay: float = 1e-5,
        seed: int = 0,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.seed = seed
        self._network: Optional[AGREENetwork] = None
        self._batcher: Optional[GroupBatcher] = None

    def fit(self, split: DataSplit) -> "AGREE":
        rng = ensure_rng(self.seed)
        train = split.train
        network = AGREENetwork(
            train.num_users,
            train.num_items,
            train.num_groups,
            self.embedding_dim,
            rng=rng,
        )
        batcher = GroupBatcher(train)
        optimizer = Adam(
            network.parameters(), lr=self.learning_rate, weight_decay=self.weight_decay
        )
        user_sampler = NegativeSampler(train.user_items(), train.num_items, rng=rng)
        group_sampler = NegativeSampler(train.group_items(), train.num_items, rng=rng)
        # AGREE alternates user and group batches each epoch.
        for __ in range(self.epochs):
            for users, positives, negatives in bpr_triple_batches(
                train.user_item, user_sampler, self.batch_size, rng=rng
            ):
                optimizer.zero_grad()
                loss = bpr_loss(
                    network.user_scores(users, positives),
                    network.user_scores(users, negatives),
                )
                loss.backward()
                optimizer.step()
            for groups, positives, negatives in bpr_triple_batches(
                train.group_item, group_sampler, self.batch_size, rng=rng
            ):
                optimizer.zero_grad()
                batch = batcher.batch(groups)
                positive_scores = network.group_scores(
                    batch.group_ids, batch.members, batch.mask, positives
                )
                negative_scores = network.group_scores(
                    batch.group_ids, batch.members, batch.mask, negatives
                )
                loss = bpr_loss(positive_scores, negative_scores)
                loss.backward()
                optimizer.step()
        self._network = network
        self._batcher = batcher
        return self

    def _require(self) -> tuple[AGREENetwork, GroupBatcher]:
        if self._network is None or self._batcher is None:
            raise RuntimeError("AGREE.fit() must be called before scoring")
        return self._network, self._batcher

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        network, __ = self._require()
        network.eval()
        with no_grad():
            scores = network.user_scores(users, items).data
        network.train()
        return scores

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        network, batcher = self._require()
        batch = batcher.batch(groups)
        network.eval()
        with no_grad():
            scores = network.group_scores(
                batch.group_ids, batch.members, batch.mask, items
            ).data
        network.train()
        return scores
