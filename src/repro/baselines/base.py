"""Common interface for all compared recommenders (Section III-D).

Every model — GroupSA included, via an adapter — exposes two scoring
surfaces after :meth:`fit`:

- ``score_user_items(users, items)`` for the user-item task,
- ``score_group_items(groups, items)`` for the group-item task,

both over aligned id arrays, returning plain numpy scores.  The
evaluation protocol only ever touches this interface, so models and
experiments stay decoupled.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.splits import DataSplit


class Recommender(abc.ABC):
    """Abstract recommender for the OGR benchmark suite."""

    #: Display name used in result tables.
    name: str = "recommender"

    @abc.abstractmethod
    def fit(self, split: DataSplit) -> "Recommender":
        """Train on ``split.train``; returns self for chaining."""

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Score aligned (user, item) pairs; higher = more relevant."""
        raise NotImplementedError(f"{self.name} does not support the user-item task")

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Score aligned (group, item) pairs; higher = more relevant."""
        raise NotImplementedError(f"{self.name} does not support the group-item task")

    @property
    def supports_user_task(self) -> bool:
        return type(self).score_user_items is not Recommender.score_user_items

    @property
    def supports_group_task(self) -> bool:
        return type(self).score_group_items is not Recommender.score_group_items
