"""SIGR [6]: social influence-based group representation learning.

The published system combines (a) a vanilla attention mechanism whose
member weights encode each user's *social influence*, (b) a bipartite
user-item graph embedding, and (c) global + local social-network
structure features.  We implement the documented core:

- user embeddings are enhanced by one round of bipartite graph
  propagation (the graph-embedding component);
- each member's attention logit is the sum of an item-conditioned
  attention score and a learned transform of the user's global social
  centrality (PageRank) — the social-influence component;
- group representation = influence-weighted member sum + group bias
  embedding; scoring and joint training follow the NCF recipe.

What is intentionally missing relative to GroupSA — and what the
paper's comparison isolates — is any modeling of member *interactions*
(no self-attention among members).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.baselines.base import Recommender
from repro.core.prediction import PredictionTower
from repro.data.loaders import GroupBatcher
from repro.data.sampling import NegativeSampler, bpr_triple_batches
from repro.data.splits import DataSplit
from repro.graphs.bipartite import interaction_matrix, normalized_propagation
from repro.graphs.closeness import _pagerank
from repro.graphs.social import social_adjacency
from repro.nn import Embedding, Linear, Module, PairwiseAttention
from repro.optim import Adam
from repro.training.bpr import bpr_loss
from repro.utils import RngLike, ensure_rng


class SIGRNetwork(Module):
    """The SIGR scoring network."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        num_groups: int,
        user_to_item,
        centrality: np.ndarray,
        embedding_dim: int = 32,
        attention_hidden: int = 32,
        propagation_mix: float = 0.3,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.user_embedding = Embedding(num_users, embedding_dim, rng=generator)
        self.item_embedding = Embedding(num_items, embedding_dim, rng=generator)
        self.group_embedding = Embedding(num_groups, embedding_dim, rng=generator)
        self.member_attention = PairwiseAttention(
            query_features=embedding_dim,
            candidate_features=embedding_dim,
            hidden_features=attention_hidden,
            rng=generator,
        )
        #: Learned transform of global centrality into influence logits.
        self.influence = Linear(1, 1, rng=generator)
        self.tower = PredictionTower(embedding_dim, (32,), rng=generator)
        self._user_to_item = user_to_item  # row-normalised sparse (m, n)
        # Standardize centrality so the influence transform starts tame.
        centered = centrality - centrality.mean()
        scale = centered.std() or 1.0
        self._centrality = (centered / scale).astype(np.float64)
        self.propagation_mix = propagation_mix

    def enhanced_user_embeddings(self, user_ids: np.ndarray) -> Tensor:
        """Bipartite graph embedding: mix own embedding with the mean
        embedding of interacted items (one propagation round)."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        own = self.user_embedding(user_ids)
        rows = self._user_to_item[user_ids.ravel()].toarray()
        propagated = Tensor(rows) @ self.item_embedding.weight
        if user_ids.ndim > 1:
            propagated = propagated.reshape(*user_ids.shape, -1)
        return own * (1.0 - self.propagation_mix) + propagated * self.propagation_mix

    def member_logits(
        self, item_emb: Tensor, member_emb: Tensor, members: np.ndarray
    ) -> Tensor:
        attention = self.member_attention.logits(item_emb, member_emb)
        centrality = self._centrality[members][..., None]  # (B, L, 1)
        batch, length = members.shape
        influence = self.influence(Tensor(centrality)).reshape(batch, length)
        return attention + influence

    def group_scores(
        self,
        group_ids: np.ndarray,
        members: np.ndarray,
        mask: np.ndarray,
        item_ids: np.ndarray,
    ) -> Tensor:
        from repro.nn.attention import MASK_VALUE

        item_emb = self.item_embedding(item_ids)
        member_emb = self.enhanced_user_embeddings(members)
        logits = self.member_logits(item_emb, member_emb, members)
        bias = np.where(mask, 0.0, MASK_VALUE)
        weights = (logits + Tensor(bias)).softmax(axis=-1)
        batch, length = members.shape
        aggregated = (weights.reshape(batch, length, 1) * member_emb).sum(axis=1)
        group_repr = aggregated + self.group_embedding(group_ids)
        return self.tower(group_repr, item_emb)

    def user_scores(self, user_ids: np.ndarray, item_ids: np.ndarray) -> Tensor:
        user_emb = self.enhanced_user_embeddings(user_ids)
        return self.tower(user_emb, self.item_embedding(item_ids))


class SIGR(Recommender):
    """SIGR trained jointly on both tasks with BPR."""

    name = "SIGR"

    def __init__(
        self,
        embedding_dim: int = 32,
        epochs: int = 30,
        batch_size: int = 256,
        learning_rate: float = 0.01,
        weight_decay: float = 1e-5,
        propagation_mix: float = 0.3,
        seed: int = 0,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.propagation_mix = propagation_mix
        self.seed = seed
        self._network: Optional[SIGRNetwork] = None
        self._batcher: Optional[GroupBatcher] = None

    def fit(self, split: DataSplit) -> "SIGR":
        rng = ensure_rng(self.seed)
        train = split.train
        user_to_item, __ = normalized_propagation(interaction_matrix(train))
        centrality = _pagerank(social_adjacency(train))
        network = SIGRNetwork(
            train.num_users,
            train.num_items,
            train.num_groups,
            user_to_item,
            centrality,
            self.embedding_dim,
            propagation_mix=self.propagation_mix,
            rng=rng,
        )
        batcher = GroupBatcher(train)
        optimizer = Adam(
            network.parameters(), lr=self.learning_rate, weight_decay=self.weight_decay
        )
        user_sampler = NegativeSampler(train.user_items(), train.num_items, rng=rng)
        group_sampler = NegativeSampler(train.group_items(), train.num_items, rng=rng)
        for __ in range(self.epochs):
            for users, positives, negatives in bpr_triple_batches(
                train.user_item, user_sampler, self.batch_size, rng=rng
            ):
                optimizer.zero_grad()
                loss = bpr_loss(
                    network.user_scores(users, positives),
                    network.user_scores(users, negatives),
                )
                loss.backward()
                optimizer.step()
            for groups, positives, negatives in bpr_triple_batches(
                train.group_item, group_sampler, self.batch_size, rng=rng
            ):
                optimizer.zero_grad()
                batch = batcher.batch(groups)
                loss = bpr_loss(
                    network.group_scores(batch.group_ids, batch.members, batch.mask, positives),
                    network.group_scores(batch.group_ids, batch.members, batch.mask, negatives),
                )
                loss.backward()
                optimizer.step()
        self._network = network
        self._batcher = batcher
        return self

    def _require(self) -> tuple[SIGRNetwork, GroupBatcher]:
        if self._network is None or self._batcher is None:
            raise RuntimeError("SIGR.fit() must be called before scoring")
        return self._network, self._batcher

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        network, __ = self._require()
        network.eval()
        with no_grad():
            scores = network.user_scores(users, items).data
        network.train()
        return scores

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        network, batcher = self._require()
        batch = batcher.batch(groups)
        network.eval()
        with no_grad():
            scores = network.group_scores(
                batch.group_ids, batch.members, batch.mask, items
            ).data
        network.train()
        return scores
