"""Neural Collaborative Filtering [32] baseline.

Full NCF = GMF (element-wise product pathway) fused with an MLP over
the concatenated embeddings, a final linear scorer on both pathways.
For the group task a group is treated as a *virtual user* with its own
embedding and the member information is ignored — the paper uses NCF
exactly this way to show why individual CF cannot solve OGR (occasional
groups have almost no training interactions to learn embeddings from).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor, concatenate
from repro.baselines.base import Recommender
from repro.data.sampling import NegativeSampler, bpr_triple_batches
from repro.data.splits import DataSplit
from repro.nn import Embedding, Linear, Module, ModuleList
from repro.optim import Adam
from repro.training.bpr import bpr_loss
from repro.utils import RngLike, ensure_rng


class NCFNetwork(Module):
    """One NCF tower over (entity, item) pairs."""

    def __init__(
        self,
        num_entities: int,
        num_items: int,
        embedding_dim: int = 32,
        mlp_hidden: tuple[int, ...] = (32, 16),
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        # Separate embedding tables for the GMF and MLP pathways, as in
        # the published architecture.
        self.gmf_entity = Embedding(num_entities, embedding_dim, rng=generator)
        self.gmf_item = Embedding(num_items, embedding_dim, rng=generator)
        self.mlp_entity = Embedding(num_entities, embedding_dim, rng=generator)
        self.mlp_item = Embedding(num_items, embedding_dim, rng=generator)
        dims = [2 * embedding_dim, *mlp_hidden]
        self.mlp_layers = ModuleList(
            Linear(dims[i], dims[i + 1], rng=generator) for i in range(len(dims) - 1)
        )
        self.scorer = Linear(embedding_dim + dims[-1], 1, bias=False, rng=generator)

    def forward(self, entities: np.ndarray, items: np.ndarray) -> Tensor:
        entities = np.asarray(entities, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        gmf = self.gmf_entity(entities) * self.gmf_item(items)
        mlp = concatenate([self.mlp_entity(entities), self.mlp_item(items)], axis=-1)
        for layer in self.mlp_layers:
            mlp = layer(mlp).relu()
        return self.scorer(concatenate([gmf, mlp], axis=-1)).reshape(-1)


class NCF(Recommender):
    """NCF with groups as virtual users, per the paper's setup.

    One tower over an entity space of ``num_users + num_groups``:
    group ids are offset past the user ids and both edge types train
    the same network ("we treat a group as a virtual user, and ignore
    the member information of the group").  Occasional groups have
    almost no training interactions, so their virtual-user embeddings
    stay uninformative — which is exactly the failure mode Table II
    demonstrates.
    """

    name = "NCF"

    def __init__(
        self,
        embedding_dim: int = 32,
        epochs: int = 30,
        batch_size: int = 256,
        learning_rate: float = 0.01,
        weight_decay: float = 1e-5,
        seed: int = 0,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.seed = seed
        self._tower: Optional[NCFNetwork] = None
        self._group_offset = 0

    def fit(self, split: DataSplit) -> "NCF":
        rng = ensure_rng(self.seed)
        train = split.train
        self._group_offset = train.num_users
        num_entities = train.num_users + train.num_groups

        # Merge both edge types into one virtual-user edge list.
        group_edges = train.group_item.copy()
        if len(group_edges):
            group_edges[:, 0] += self._group_offset
        edges = np.concatenate([train.user_item, group_edges])
        interacted = list(train.user_items()) + list(train.group_items())

        tower = NCFNetwork(num_entities, train.num_items, self.embedding_dim, rng=rng)
        optimizer = Adam(
            tower.parameters(), lr=self.learning_rate, weight_decay=self.weight_decay
        )
        sampler = NegativeSampler(interacted, train.num_items, rng=rng)
        for __ in range(self.epochs):
            for entities, positives, negatives in bpr_triple_batches(
                edges, sampler, self.batch_size, rng=rng
            ):
                optimizer.zero_grad()
                loss = bpr_loss(tower(entities, positives), tower(entities, negatives))
                loss.backward()
                optimizer.step()
        self._tower = tower
        return self

    def _score(self, entities, items) -> np.ndarray:
        if self._tower is None:
            raise RuntimeError("NCF.fit() must be called before scoring")
        self._tower.eval()
        with no_grad():
            scores = self._tower(entities, items).data
        self._tower.train()
        return scores

    def score_user_items(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._score(np.asarray(users, dtype=np.int64), items)

    def score_group_items(self, groups: np.ndarray, items: np.ndarray) -> np.ndarray:
        return self._score(
            np.asarray(groups, dtype=np.int64) + self._group_offset, items
        )
