"""Serving-time recommendation for ad-hoc member lists.

Occasional groups form at serving time — a set of user ids that never
appears in the training data.  This module builds the padded batch
structures (members, mask, social adjacency) for such a member list on
the fly, so a trained :class:`~repro.core.groupsa.GroupSA` can score it
exactly like a dataset group.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.core.groupsa import GroupSA
from repro.data.dataset import GroupRecommendationDataset
from repro.data.loaders import GroupBatch


def build_adhoc_batch(
    member_lists: Sequence[Sequence[int]],
    friend_sets: List[Set[int]],
) -> GroupBatch:
    """Assemble a :class:`GroupBatch` for ad-hoc member lists.

    ``friend_sets`` is the social network view (one set of neighbour
    ids per user, e.g. ``dataset.friend_set()``); the adjacency block
    is derived from it just like the training batcher does.
    """
    if not member_lists:
        raise ValueError("need at least one member list")
    rows = [np.unique(np.asarray(m, dtype=np.int64)) for m in member_lists]
    for row in rows:
        if row.size == 0:
            raise ValueError("ad-hoc groups must have at least one member")
    length = max(row.size for row in rows)
    count = len(rows)
    members = np.zeros((count, length), dtype=np.int64)
    mask = np.zeros((count, length), dtype=bool)
    adjacency = np.zeros((count, length, length), dtype=bool)
    for index, row in enumerate(rows):
        size = row.size
        members[index, :size] = row
        mask[index, :size] = True
        for a in range(size):
            friends = friend_sets[int(row[a])]
            for b in range(a + 1, size):
                if int(row[b]) in friends:
                    adjacency[index, a, b] = True
                    adjacency[index, b, a] = True
    return GroupBatch(
        group_ids=np.full(count, -1, dtype=np.int64),
        members=members,
        mask=mask,
        adjacency=adjacency,
    )


class AdhocGroupRecommender:
    """Score and rank items for serving-time groups.

    Wraps a trained model plus the social view of the world it was
    trained on.  Typical use::

        recommender = AdhocGroupRecommender(model, dataset)
        top = recommender.recommend([12, 57, 301], k=5)
    """

    def __init__(self, model: GroupSA, dataset: GroupRecommendationDataset) -> None:
        self.model = model
        self.dataset = dataset
        self._friend_sets = dataset.friend_set()
        self._user_items = dataset.user_items()

    def score(self, members: Sequence[int], item_ids: np.ndarray) -> np.ndarray:
        """r^G scores of one ad-hoc group for the given items."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        single = build_adhoc_batch([members], self._friend_sets)
        batch = GroupBatch(
            group_ids=np.full(len(item_ids), -1, dtype=np.int64),
            members=np.repeat(single.members, len(item_ids), axis=0),
            mask=np.repeat(single.mask, len(item_ids), axis=0),
            adjacency=np.repeat(single.adjacency, len(item_ids), axis=0),
        )
        return self.model.score_group_items(batch, item_ids)

    def recommend(
        self,
        members: Sequence[int],
        k: int = 10,
        exclude_member_history: bool = True,
    ) -> np.ndarray:
        """Top-K item ids for an ad-hoc group, best first."""
        exclude: Set[int] = set()
        if exclude_member_history:
            for member in members:
                exclude |= self._user_items[int(member)]
        candidates = np.array(
            [item for item in range(self.dataset.num_items) if item not in exclude],
            dtype=np.int64,
        )
        if candidates.size == 0:
            return candidates
        scores = self.score(members, candidates)
        order = np.argsort(-scores, kind="stable")
        return candidates[order[:k]]

    @staticmethod
    def canonical_members(members: Sequence[int]) -> np.ndarray:
        """Deduplicated, ascending member ids — the batch member order.

        :func:`build_adhoc_batch` lays members out via ``np.unique``;
        any per-member output (e.g. :meth:`voting_weights`) follows
        this order, so callers should pair against it explicitly.
        """
        return np.unique(np.asarray(members, dtype=np.int64))

    def voting_weights(self, members: Sequence[int], item_id: int) -> np.ndarray:
        """Member gamma weights (Eq. 10) for one target item.

        Returned in :meth:`canonical_members` order (one weight per
        unique member; duplicates in ``members`` collapse).
        """
        batch = build_adhoc_batch([members], self._friend_sets)
        gamma = self.model.member_attention(batch, np.array([item_id]))
        return gamma[0][: self.canonical_members(members).size]
