"""Voting-scheme modeling (Section II-C).

The decision making of a group with ``l`` members is simulated as ``l``
simultaneous sub-voting processes: one stacked social self-attention
network whose i-th output row is the representation of the i-th
*sub-group* (the group as seen through member i's votes).  A vanilla
attention network conditioned on the target item then aggregates the
sub-group representations into the group representation (Eqs. 7-10).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn import (
    Dropout,
    LayerNorm,
    Linear,
    ModuleList,
    Module,
    PairwiseAttention,
    Parameter,
    ScaledDotProductSelfAttention,
    social_bias_matrix,
)
from repro.core.config import GroupSAConfig
from repro.utils import RngLike, ensure_rng


class VotingLayer(Module):
    """One voting round: social self-attention + FFN sub-layers.

    Both sub-layers are wrapped with residual connections and layer
    normalization, following the transformer recipe the paper adopts:
    ``LayerNorm(x + Sublayer(x))``.
    """

    def __init__(self, config: GroupSAConfig, rng: RngLike = None) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        dim = config.embedding_dim
        self.attention = ScaledDotProductSelfAttention(
            model_features=dim,
            key_features=config.key_dim,
            value_features=config.value_dim,
            num_heads=config.num_heads,
            rng=generator,
        )
        self.ffn_expand = Linear(dim, config.ffn_hidden, rng=generator)
        self.ffn_contract = Linear(config.ffn_hidden, dim, rng=generator)
        self.attention_norm = LayerNorm(dim)
        self.ffn_norm = LayerNorm(dim)
        self.dropout = Dropout(config.dropout, rng=generator)

    def forward(self, x: Tensor, bias: np.ndarray) -> Tuple[Tensor, Tensor]:
        """Return (next member representations, attention weights)."""
        attended, weights = self.attention(x, bias=bias)
        x = self.attention_norm(x + self.dropout(attended))
        transformed = self.ffn_contract(self.ffn_expand.forward_relu(x))
        x = self.ffn_norm(x + self.dropout(transformed))
        return x, weights


class VotingNetwork(Module):
    """Stacked voting rounds (N_X identical layers).

    With ``use_self_attention=False`` (the Group-S/Group-A variants) the
    member embeddings pass through unchanged and only the vanilla
    attention aggregation below applies.
    """

    def __init__(self, config: GroupSAConfig, rng: RngLike = None) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.enabled = config.use_self_attention and config.num_attention_layers > 0
        layer_count = config.num_attention_layers if self.enabled else 0
        self.layers = ModuleList(
            VotingLayer(config, rng=generator) for __ in range(layer_count)
        )
        # Zero-initialized residual gate (ReZero-style): the voting
        # stack starts as the identity over the shared member
        # embeddings, so the stage-2 fine-tuning begins from the
        # geometry learned in stage 1 and learns the voting correction
        # on top.  Without this, the LayerNorm sub-layers re-scale the
        # member representations and the sparse group-item data cannot
        # recover the taste signal.  Built through init.zeros so the
        # gate follows the model's dtype policy.
        self.gate = Parameter(init.zeros((1,)))

    def forward(
        self,
        member_embeddings: Tensor,
        adjacency: np.ndarray,
        member_mask: np.ndarray,
    ) -> Tuple[Tensor, Optional[np.ndarray]]:
        """Run the voting rounds.

        Parameters
        ----------
        member_embeddings: (B, L, d) member representations.
        adjacency: (B, L, L) boolean social connectivity within groups.
        member_mask: (B, L) boolean validity mask (padding = False).

        Returns the final member representations and the last layer's
        attention weights (None when self-attention is disabled).
        """
        if not self.enabled:
            return member_embeddings, None
        bias = social_bias_matrix(adjacency, member_mask=member_mask)
        x = member_embeddings
        weights: Optional[np.ndarray] = None
        for layer in self.layers:
            x, attention = layer(x, bias)
            weights = attention.data
        return member_embeddings + x * self.gate, weights


class GroupAggregation(Module):
    """Vanilla-attention preference aggregation (Eqs. 7-10).

    The expertise of each member varies with the topic, so the member
    weight gamma is produced by a two-layer network over the
    concatenation of the *target item embedding* and the member's
    sub-group representation, then softmax-normalized over members.
    """

    def __init__(self, config: GroupSAConfig, rng: RngLike = None) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        dim = config.embedding_dim
        self.member_attention = PairwiseAttention(
            query_features=dim,
            candidate_features=dim,
            hidden_features=config.attention_hidden,
            rng=generator,
        )
        self.output = Linear(dim, dim, rng=generator)
        # Same ReZero trick as the voting stack: the Eq. (7) output
        # transform starts as the identity over the aggregated member
        # representation.
        self.gate = Parameter(init.zeros((1,)))

    def forward(
        self,
        member_representations: Tensor,
        item_embeddings: Tensor,
        member_mask: np.ndarray,
    ) -> Tuple[Tensor, Tensor]:
        """Return (group representation (B, d), member weights (B, L))."""
        aggregated, weights = self.member_attention(
            query=item_embeddings,
            candidates=member_representations,
            mask=member_mask,
        )
        transformed = self.output.forward_relu(aggregated)
        return aggregated + transformed * self.gate, weights
