"""The paper's primary contribution: the GroupSA model family."""

from repro.core.adhoc import AdhocGroupRecommender, build_adhoc_batch
from repro.core.config import GroupSAConfig
from repro.core.fast import (
    STRATEGIES,
    FastGroupRecommender,
    average_strategy,
    least_misery_strategy,
    maximum_satisfaction_strategy,
)
from repro.core.groupsa import GroupSA
from repro.core.prediction import PredictionTower
from repro.core.user_modeling import UserModeling
from repro.core.variants import VARIANTS, variant_config
from repro.core.voting import GroupAggregation, VotingLayer, VotingNetwork

__all__ = [
    "GroupSA",
    "AdhocGroupRecommender",
    "build_adhoc_batch",
    "GroupSAConfig",
    "VotingNetwork",
    "VotingLayer",
    "GroupAggregation",
    "UserModeling",
    "PredictionTower",
    "FastGroupRecommender",
    "STRATEGIES",
    "average_strategy",
    "least_misery_strategy",
    "maximum_satisfaction_strategy",
    "VARIANTS",
    "variant_config",
]
