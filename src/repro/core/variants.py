"""Named ablation variants of GroupSA (Sections V-A and V-B).

========  =======================================================
Variant   What is removed
========  =======================================================
Group-A   voting scheme *and* user modeling (vanilla attention only)
Group-S   the social self-attention network
Group-I   the item aggregation component of user modeling
Group-F   the social aggregation component of user modeling
Group-G   the user-item recommendation task (no joint training)
========  =======================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.config import GroupSAConfig

VariantFn = Callable[[GroupSAConfig], GroupSAConfig]


def group_sa(config: GroupSAConfig) -> GroupSAConfig:
    """The full model, unchanged."""
    return config


def group_a(config: GroupSAConfig) -> GroupSAConfig:
    """Vanilla attention aggregation only (no voting, no user modeling)."""
    return config.variant(
        use_self_attention=False,
        use_item_aggregation=False,
        use_social_aggregation=False,
    )


def group_s(config: GroupSAConfig) -> GroupSAConfig:
    """Remove the social self-attention network."""
    return config.variant(use_self_attention=False)


def group_i(config: GroupSAConfig) -> GroupSAConfig:
    """Remove item aggregation (social aggregation only)."""
    return config.variant(use_item_aggregation=False)


def group_f(config: GroupSAConfig) -> GroupSAConfig:
    """Remove social aggregation (item aggregation only)."""
    return config.variant(use_social_aggregation=False)


def group_g(config: GroupSAConfig) -> GroupSAConfig:
    """Group-item data only: drop the user-item task entirely."""
    return config.variant(
        use_user_task=False,
        use_item_aggregation=False,
        use_social_aggregation=False,
    )


VARIANTS: Dict[str, VariantFn] = {
    "GroupSA": group_sa,
    "Group-A": group_a,
    "Group-S": group_s,
    "Group-I": group_i,
    "Group-F": group_f,
    "Group-G": group_g,
}


def variant_config(name: str, base: GroupSAConfig) -> GroupSAConfig:
    """Look up a variant by its paper name and derive its config."""
    if name not in VARIANTS:
        raise KeyError(f"unknown variant '{name}'; choose from {sorted(VARIANTS)}")
    return VARIANTS[name](base)
