"""Configuration for the GroupSA model and its ablation variants."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class GroupSAConfig:
    """Hyper-parameters of GroupSA (defaults follow Section III-E).

    The four ``use_*`` switches carve out the paper's ablation variants
    (Section V-A/V-B):

    - ``Group-A``: ``use_self_attention=False`` and both aggregations off
      (vanilla attention aggregation only);
    - ``Group-S``: ``use_self_attention=False``;
    - ``Group-I``: ``use_item_aggregation=False``;
    - ``Group-F``: ``use_social_aggregation=False``;
    - ``Group-G``: ``use_user_task=False`` (no joint training).
    """

    #: Embedding size for users, items and groups (paper: 32).
    embedding_dim: int = 32
    #: Dimensions of queries/keys and values in self-attention (paper: 32).
    key_dim: int = 32
    value_dim: int = 32
    #: Hidden width of the position-wise FFN (paper: d_model = 32).
    ffn_hidden: int = 32
    #: Attention heads in the social self-attention.  The paper uses a
    #: single head; values > 1 are an extension (see the heads bench).
    num_heads: int = 1
    #: Number of stacked self-attention layers N_X (paper: 1 for Yelp,
    #: 2 for Douban-Event; Table VI sweeps 1..5).
    num_attention_layers: int = 1
    #: Hidden width of the two-layer vanilla attention nets (Eqs. 9/13/17).
    attention_hidden: int = 32
    #: Top-H items/friends kept by TF-IDF ranking (paper searches 2..6).
    top_h: int = 4
    #: Blend weight w^u between embedding score and latent-factor score
    #: (Eq. 23; paper's best: 0.9).
    blend_weight: float = 0.9
    #: Hidden sizes of the prediction towers (Eqs. 20/22).
    prediction_hidden: Tuple[int, ...] = (32,)
    #: Hidden sizes of the user-factor fusion MLP (Eq. 19).
    fusion_hidden: Tuple[int, ...] = (32,)
    #: Dropout ratio (paper: 0.1).
    dropout: float = 0.1
    #: Component switches (see class docstring).
    use_self_attention: bool = True
    use_item_aggregation: bool = True
    use_social_aggregation: bool = True
    use_user_task: bool = True
    #: Name of the closeness function for the social mask
    #: ('direct' | 'common-neighbours' | 'pagerank' | 'full').
    closeness: str = "direct"
    #: Floating dtype of the model's parameter tables and activations
    #: ('float64' | 'float32').  float64 is the reference precision —
    #: fused and unfused graphs are bit-identical there; float32 halves
    #: the memory traffic for throughput-oriented runs.
    dtype: str = "float64"
    seed: int = 2020

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_attention_layers < 0:
            raise ValueError("num_attention_layers must be >= 0")
        if not 0.0 <= self.blend_weight <= 1.0:
            raise ValueError("blend_weight (w^u) must be in [0, 1]")
        if self.top_h <= 0:
            raise ValueError("top_h must be positive")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")

    @property
    def uses_user_modeling(self) -> bool:
        return self.use_item_aggregation or self.use_social_aggregation

    def variant(self, **changes) -> "GroupSAConfig":
        """Return a modified copy (convenience for ablations/sweeps)."""
        return replace(self, **changes)
