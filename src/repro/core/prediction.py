"""Ranking-score prediction towers (Eqs. 20 and 22).

Both towers concatenate two d-dimensional representations and feed them
through an MLP ending in a bias-free linear scorer ``w^T c``.
The user tower is *shared* between the embedding-based score
``r^{R_1}(emb^U, emb^V)`` and the latent-factor score
``r^{R_2}(h, x^V)`` — the paper feeds both pairs "into the same MLP
network".
"""

from __future__ import annotations

from typing import Sequence

from repro.autograd.tensor import Tensor, concatenate
from repro.nn import Dropout, Linear, Module, ModuleList
from repro.utils import RngLike, ensure_rng


class PredictionTower(Module):
    """MLP scorer over the concatenation of two representations.

    In addition to the paper's plain concatenation we feed the
    element-wise product of the two representations as an extra input
    block (the GMF pathway of the NCF framework the paper builds on).
    A concat-only MLP must *learn* multiplicative interactions from
    scratch, which converges far too slowly on CPU-scale budgets; the
    product feature restores the inner-product inductive bias without
    changing the scorer's expressiveness.
    """

    def __init__(
        self,
        embedding_dim: int,
        hidden: Sequence[int],
        dropout: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        dims = [3 * embedding_dim, *hidden]
        self.hidden_layers = ModuleList(
            Linear(dims[i], dims[i + 1], rng=generator) for i in range(len(dims) - 1)
        )
        self.scorer = Linear(dims[-1], 1, bias=False, rng=generator)
        self.dropout = Dropout(dropout, rng=generator) if dropout > 0 else None

    def forward(self, left: Tensor, right: Tensor) -> Tensor:
        """Score each row pair; returns shape (B,)."""
        x = concatenate([left, right, left * right], axis=-1)
        for layer in self.hidden_layers:
            x = layer.forward_relu(x)
            if self.dropout is not None:
                x = self.dropout(x)
        return self.scorer(x).reshape(-1)
