"""Fast group recommendation (Section II-F).

For large groups the multi-layer voting forward pass can be avoided:
each member is scored individually with the user-item predictor
(Eq. 23) and a static strategy combines the member scores.  Because the
user representations were trained jointly with the voting network, they
already carry group-aware signal, which is why the paper reports these
fast scores as competitive.

The same machinery doubles as the Group+avg / Group+lm / Group+ms
baselines of Section III-D (strategies of [12], [17]).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.core.groupsa import GroupSA
from repro.data.loaders import GroupBatch

AggregationFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
# Maps (member_scores (B, L), mask (B, L)) -> group scores (B,).


def average_strategy(scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Average satisfaction: every member contributes equally [12]."""
    weights = mask.astype(scores.dtype)
    return (scores * weights).sum(axis=1) / np.maximum(weights.sum(axis=1), 1.0)


def least_misery_strategy(scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Least misery: the least satisfied member decides [17]."""
    masked = np.where(mask, scores, np.inf)
    return masked.min(axis=1)


def maximum_satisfaction_strategy(scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Maximum satisfaction: follow the happiest member [12]."""
    masked = np.where(mask, scores, -np.inf)
    return masked.max(axis=1)


STRATEGIES: Dict[str, AggregationFn] = {
    "avg": average_strategy,
    "lm": least_misery_strategy,
    "ms": maximum_satisfaction_strategy,
}


class FastGroupRecommender:
    """Score groups from member-level predictions only.

    Parameters
    ----------
    model:
        A trained :class:`GroupSA` (only its user-item predictor runs).
    strategy:
        One of ``'avg'``, ``'lm'``, ``'ms'`` or a custom callable.
    """

    def __init__(self, model: GroupSA, strategy: str | AggregationFn = "avg") -> None:
        self.model = model
        if callable(strategy):
            self.strategy: AggregationFn = strategy
            self.strategy_name = getattr(strategy, "__name__", "custom")
        else:
            if strategy not in STRATEGIES:
                raise ValueError(
                    f"unknown strategy '{strategy}'; choose from {sorted(STRATEGIES)}"
                )
            self.strategy = STRATEGIES[strategy]
            self.strategy_name = strategy

    def score_group_items(self, batch: GroupBatch, item_ids: np.ndarray) -> np.ndarray:
        """Score each (group, item) pair via member score aggregation."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        batch_size, length = batch.members.shape
        flat_users = batch.members.reshape(-1)
        flat_items = np.repeat(item_ids, length)
        member_scores = self.model.score_user_items(flat_users, flat_items)
        member_scores = member_scores.reshape(batch_size, length)
        return self.strategy(member_scores, batch.mask)
