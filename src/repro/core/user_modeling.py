"""User modeling (Section II-D): item + social aggregation.

Users appear in two graphs — the user-item graph and the social graph.
This module learns item-space latent factors ``x^V`` and social-space
latent factors ``x^S``, attends over each user's Top-H TF-IDF-ranked
items (Eqs. 11-14) and friends (Eqs. 15-18) with the user-item
embedding ``emb^U`` as the attention signal, and fuses the two
aggregated views into the final user latent factor ``h_j`` via an MLP
(Eq. 19).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor, concatenate
from repro.core.config import GroupSAConfig
from repro.data.loaders import TopNeighbours
from repro.nn import Embedding, Linear, MLP, Module, PairwiseAttention
from repro.utils import RngLike, ensure_rng


class UserModeling(Module):
    """Latent-factor learner for users from item- and social-space."""

    def __init__(
        self,
        num_users: int,
        num_items: int,
        config: GroupSAConfig,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if not config.uses_user_modeling:
            raise ValueError(
                "UserModeling instantiated although both aggregations are disabled"
            )
        generator = ensure_rng(rng)
        dim = config.embedding_dim
        self.config = config

        #: x^V — item latent factors in item-space (distinct from emb^V).
        self.item_latent = Embedding(num_items, dim, rng=generator)
        #: x^S — user latent factors in social-space (distinct from emb^U).
        self.social_latent = Embedding(num_users, dim, rng=generator)

        if config.use_item_aggregation:
            self.item_attention = PairwiseAttention(
                query_features=dim,
                candidate_features=dim,
                hidden_features=config.attention_hidden,
                rng=generator,
            )
            self.item_transform = Linear(dim, dim, rng=generator)
        if config.use_social_aggregation:
            self.social_attention = PairwiseAttention(
                query_features=dim,
                candidate_features=dim,
                hidden_features=config.attention_hidden,
                rng=generator,
            )
            self.social_transform = Linear(dim, dim, rng=generator)

        fusion_inputs = dim * (
            int(config.use_item_aggregation) + int(config.use_social_aggregation)
        )
        self.fusion = MLP(
            in_features=fusion_inputs,
            hidden_features=list(config.fusion_hidden),
            out_features=dim,
            output_activation="relu",
            dropout=config.dropout,
            rng=generator,
        )

    # ------------------------------------------------------------------

    def item_space_factor(
        self, user_embeddings: Tensor, user_ids: np.ndarray, tables: TopNeighbours
    ) -> Tensor:
        """h^V — attention-aggregate the user's Top-H items (Eq. 11)."""
        items = tables.items[user_ids]
        mask = tables.item_mask[user_ids]
        candidates = self.item_latent(items)
        aggregated, __ = self.item_attention(
            query=user_embeddings, candidates=candidates, mask=mask
        )
        return self.item_transform.forward_relu(aggregated)

    def social_space_factor(
        self, user_embeddings: Tensor, user_ids: np.ndarray, tables: TopNeighbours
    ) -> Tensor:
        """h^S — attention-aggregate the user's Top-H friends (Eq. 15)."""
        friends = tables.friends[user_ids]
        mask = tables.friend_mask[user_ids]
        candidates = self.social_latent(friends)
        aggregated, __ = self.social_attention(
            query=user_embeddings, candidates=candidates, mask=mask
        )
        return self.social_transform.forward_relu(aggregated)

    def forward(
        self,
        user_embeddings: Tensor,
        user_ids: np.ndarray,
        tables: TopNeighbours,
    ) -> Tensor:
        """Final user latent factor ``h_j`` of shape (B, d) (Eq. 19)."""
        parts = []
        if self.config.use_item_aggregation:
            parts.append(self.item_space_factor(user_embeddings, user_ids, tables))
        if self.config.use_social_aggregation:
            parts.append(self.social_space_factor(user_embeddings, user_ids, tables))
        joint = parts[0] if len(parts) == 1 else concatenate(parts, axis=-1)
        return self.fusion(joint)

    def item_factor(self, item_ids: np.ndarray) -> Tensor:
        """Item-space latent factor ``x^V`` for the r^R2 score (Eq. 23)."""
        return self.item_latent(item_ids)
