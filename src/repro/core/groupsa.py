"""GroupSA: the paper's full model (Fig. 1).

Three components around shared user/item embeddings:

- :class:`~repro.core.voting.VotingNetwork` + group aggregation — the
  latent voting mechanism over group members (Section II-C);
- :class:`~repro.core.user_modeling.UserModeling` — item/social
  aggregation enhancing user representations (Section II-D);
- two :class:`~repro.core.prediction.PredictionTower` scorers for the
  group-item and user-item ranking tasks (Section II-E).

The embeddings ``emb^U``/``emb^V`` are shared between the two tasks;
that is the bridge the joint two-stage training exploits.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import dtype_policy, no_grad
from repro.autograd.tensor import Tensor
from repro.core.config import GroupSAConfig
from repro.core.prediction import PredictionTower
from repro.core.user_modeling import UserModeling
from repro.core.voting import GroupAggregation, VotingNetwork
from repro.data.loaders import GroupBatch, TopNeighbours
from repro.nn import Embedding, Module
from repro.utils import RngLike, ensure_rng


class GroupSA(Module):
    """Group Self-Attention recommender.

    Parameters
    ----------
    num_users, num_items:
        Entity counts of the dataset.
    config:
        Hyper-parameters and component switches.
    top_neighbours:
        Top-H TF-IDF tables from the *training* split; required when
        user modeling is enabled (set later via
        :meth:`set_top_neighbours` if more convenient).
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        config: GroupSAConfig,
        top_neighbours: Optional[TopNeighbours] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(config.seed if rng is None else rng)
        self.config = config
        self.num_users = num_users
        self.num_items = num_items

        # All parameter tables are created under the configured dtype
        # policy; a given seed yields the same weights (up to the final
        # cast) regardless of the dtype chosen.
        with dtype_policy(config.dtype):
            # Shared embeddings bridging the user-item and group-item spaces.
            self.user_embedding = Embedding(
                num_users, config.embedding_dim, rng=generator
            )
            self.item_embedding = Embedding(
                num_items, config.embedding_dim, rng=generator
            )

            self.voting = VotingNetwork(config, rng=generator)
            self.aggregation = GroupAggregation(config, rng=generator)
            self.group_tower = PredictionTower(
                config.embedding_dim,
                config.prediction_hidden,
                dropout=config.dropout,
                rng=generator,
            )
            self.user_tower = PredictionTower(
                config.embedding_dim,
                config.prediction_hidden,
                dropout=config.dropout,
                rng=generator,
            )

            self.user_modeling: Optional[UserModeling] = None
            if config.uses_user_modeling:
                self.user_modeling = UserModeling(
                    num_users, num_items, config, rng=generator
                )
        self._top_neighbours = top_neighbours

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def top_neighbours(self) -> Optional[TopNeighbours]:
        return self._top_neighbours

    def set_top_neighbours(self, tables: TopNeighbours) -> None:
        """Attach the Top-H tables derived from the training split."""
        object.__setattr__(self, "_top_neighbours", tables)

    def _require_tables(self) -> TopNeighbours:
        if self._top_neighbours is None:
            raise RuntimeError(
                "user modeling is enabled but no TopNeighbours tables were set; "
                "call set_top_neighbours(tfidf_top_neighbours(train, top_h))"
            )
        return self._top_neighbours

    # ------------------------------------------------------------------
    # Differentiable forward passes
    # ------------------------------------------------------------------

    def user_scores(self, user_ids: np.ndarray, item_ids: np.ndarray) -> Tensor:
        """Blended user-item ranking score r^R of Eq. (23), shape (B,)."""
        blended, __ = self.user_score_components(user_ids, item_ids)
        return blended

    def user_score_components(
        self, user_ids: np.ndarray, item_ids: np.ndarray
    ) -> Tuple[Tensor, Optional[Tensor]]:
        """Return (blended score r^R, embedding-path score r^{R_1}).

        The second element is None when the model has no user-modeling
        component (the blend then *is* the embedding score).  Training
        uses it as an auxiliary target: with the paper's w^u = 0.9 the
        embedding path would otherwise receive only 10% of the ranking
        gradient, starving the shared embeddings the voting network
        feeds on.
        """
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        emb_user = self.user_embedding(user_ids)
        emb_item = self.item_embedding(item_ids)
        embedding_score = self.user_tower(emb_user, emb_item)
        weight = self.config.blend_weight
        if self.user_modeling is None or weight == 0.0:
            return embedding_score, None
        tables = self._require_tables()
        latent_user = self.user_modeling(emb_user, user_ids, tables)
        latent_item = self.user_modeling.item_factor(item_ids)
        latent_score = self.user_tower(latent_user, latent_item)
        if weight == 1.0:
            return latent_score, embedding_score
        blended = embedding_score * (1.0 - weight) + latent_score * weight
        return blended, embedding_score

    def group_scores(
        self, batch: GroupBatch, item_ids: np.ndarray
    ) -> Tensor:
        """Group-item ranking score r^G of Eq. (20), shape (B,)."""
        scores, __ = self.group_forward(batch, item_ids)
        return scores

    def group_forward(
        self, batch: GroupBatch, item_ids: np.ndarray
    ) -> Tuple[Tensor, Tensor]:
        """Return (scores (B,), member attention weights gamma (B, L))."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        member_embeddings = self.user_embedding(batch.members)
        voted, __ = self.voting(member_embeddings, batch.adjacency, batch.mask)
        item_embeddings = self.item_embedding(item_ids)
        group_representation, gamma = self.aggregation(
            voted, item_embeddings, batch.mask
        )
        scores = self.group_tower(group_representation, item_embeddings)
        return scores, gamma

    # ------------------------------------------------------------------
    # Numpy conveniences (evaluation, no_grad, chunked)
    # ------------------------------------------------------------------

    def score_user_items(
        self, user_ids: np.ndarray, item_ids: np.ndarray, chunk: int = 4096
    ) -> np.ndarray:
        """Evaluate r^R for aligned (user, item) arrays without autograd."""
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(user_ids), chunk):
                stop = start + chunk
                outputs.append(
                    self.user_scores(user_ids[start:stop], item_ids[start:stop]).data
                )
        self.train()
        return np.concatenate(outputs) if outputs else np.empty(0)

    def score_group_items(
        self, batch: GroupBatch, item_ids: np.ndarray, chunk: int = 1024
    ) -> np.ndarray:
        """Evaluate r^G for an aligned batch of groups and items."""
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(item_ids), chunk):
                stop = start + chunk
                sub = GroupBatch(
                    group_ids=batch.group_ids[start:stop],
                    members=batch.members[start:stop],
                    mask=batch.mask[start:stop],
                    adjacency=batch.adjacency[start:stop],
                )
                outputs.append(self.group_scores(sub, item_ids[start:stop]).data)
        self.train()
        return np.concatenate(outputs) if outputs else np.empty(0)

    def member_attention(
        self, batch: GroupBatch, item_ids: np.ndarray
    ) -> np.ndarray:
        """The gamma weights of Eq. (10) — the case study's Table IV."""
        self.eval()
        with no_grad():
            __, gamma = self.group_forward(batch, item_ids)
        self.train()
        return gamma.data
