"""Evaluation: metrics, the 100-candidate protocol, significance tests."""

from repro.evaluation.metrics import (
    hit_ratio_at_k,
    ndcg_at_k,
    rank_of_positive,
    summarize,
)
from repro.evaluation.protocol import (
    EvaluationTask,
    RankingResult,
    evaluate,
    evaluate_filtered,
    prepare_task,
)
from repro.evaluation.full_ranking import evaluate_full_ranking
from repro.evaluation.metrics_extra import (
    auc,
    catalog_coverage,
    extended_summary,
    intra_list_diversity,
    mean_rank,
    mrr,
    novelty,
)
from repro.evaluation.ranking import recommend_for_groups, top_k_items
from repro.evaluation.significance import TTestResult, one_sample_ttest, paired_ttest

__all__ = [
    "hit_ratio_at_k",
    "ndcg_at_k",
    "rank_of_positive",
    "summarize",
    "EvaluationTask",
    "RankingResult",
    "prepare_task",
    "evaluate",
    "evaluate_filtered",
    "paired_ttest",
    "one_sample_ttest",
    "TTestResult",
    "top_k_items",
    "recommend_for_groups",
    "evaluate_full_ranking",
    "mrr",
    "auc",
    "mean_rank",
    "catalog_coverage",
    "novelty",
    "intra_list_diversity",
    "extended_summary",
]
