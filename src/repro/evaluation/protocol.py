"""The paper's evaluation protocol (Section III-C).

For every held-out (entity, item) interaction, 100 items the entity has
*never* interacted with (across train+validation+test) are sampled as
candidates; the model ranks the positive against them and HR@K /
NDCG@K are averaged over all test interactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.sampling import sample_evaluation_candidates
from repro.evaluation.metrics import rank_of_positive, summarize
from repro.utils import RngLike, ensure_rng

ScoreFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
# Maps aligned (entity_ids, item_ids) arrays to a score array.


@dataclass
class RankingResult:
    """Per-example ranks plus aggregate metrics for one model/task."""

    ranks: np.ndarray
    entities: np.ndarray
    metrics: Dict[str, float]

    def metric(self, name: str) -> float:
        return self.metrics[name]

    def per_example(self, name: str) -> np.ndarray:
        """Per-example metric vector (for significance testing)."""
        from repro.evaluation.metrics import hit_ratio_at_k, ndcg_at_k

        kind, k = name.split("@")
        if kind == "HR":
            return hit_ratio_at_k(self.ranks, int(k))
        if kind == "NDCG":
            return ndcg_at_k(self.ranks, int(k))
        raise ValueError(f"unknown metric '{name}'")


@dataclass(frozen=True)
class EvaluationTask:
    """A prepared evaluation set with fixed candidate items.

    Freezing the candidates lets every compared model rank the *same*
    lists, which is what makes paired significance tests valid.
    """

    edges: np.ndarray  # (E, 2) test interactions
    candidates: np.ndarray  # (E, C) sampled negative candidates

    @property
    def num_candidates(self) -> int:
        return self.candidates.shape[1]


def prepare_task(
    test_edges: np.ndarray,
    interacted: Sequence[Set[int]],
    num_items: int,
    num_candidates: int = 100,
    rng: RngLike = None,
) -> EvaluationTask:
    """Sample the candidate lists once for a test set.

    ``interacted`` must cover *all* splits so candidates are items the
    entity never interacted with, per the protocol.
    """
    generator = ensure_rng(rng)
    test_edges = np.asarray(test_edges, dtype=np.int64)
    if len(test_edges):
        # All rows must share one width; on tiny worlds some entity may
        # have fewer unseen items than requested, so clip uniformly.
        feasible = min(
            num_items - len(interacted[int(entity)]) for entity in test_edges[:, 0]
        )
        width = min(num_candidates, feasible)
        if width < 1:
            raise ValueError("some test entity has no unseen candidate items")
    else:
        width = 0
    candidate_rows = [
        sample_evaluation_candidates(
            int(entity), interacted, num_items, width, rng=generator
        )
        for entity, __ in test_edges
    ]
    return EvaluationTask(
        edges=test_edges,
        candidates=np.stack(candidate_rows) if candidate_rows else np.empty((0, 0), np.int64),
    )


def evaluate(
    score_fn: ScoreFn,
    task: EvaluationTask,
    ks: Tuple[int, ...] = (5, 10),
    chunk: int = 64,
) -> RankingResult:
    """Rank each positive against its frozen candidates and aggregate."""
    edges = task.edges
    if len(edges) == 0:
        return RankingResult(
            ranks=np.empty(0), entities=np.empty(0, np.int64), metrics=summarize(np.empty(0), ks)
        )
    count, width = task.candidates.shape
    positive_scores = np.empty(count)
    candidate_scores = np.empty((count, width))
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        block = slice(start, stop)
        entities = edges[block, 0]
        positives = edges[block, 1]
        # One flat call scores positives and candidates together.
        tiled_entities = np.repeat(entities, width + 1)
        items = np.concatenate(
            [positives[:, None], task.candidates[block]], axis=1
        ).reshape(-1)
        scores = score_fn(tiled_entities, items).reshape(stop - start, width + 1)
        positive_scores[block] = scores[:, 0]
        candidate_scores[block] = scores[:, 1:]
    ranks = rank_of_positive(positive_scores, candidate_scores)
    return RankingResult(ranks=ranks, entities=edges[:, 0], metrics=summarize(ranks, ks))


def evaluate_filtered(
    score_fn: ScoreFn,
    task: EvaluationTask,
    keep: np.ndarray,
    ks: Tuple[int, ...] = (5, 10),
) -> RankingResult:
    """Evaluate on the subset of test edges where ``keep`` is True.

    Used by the group-size breakdown of Table IX.
    """
    subset = EvaluationTask(edges=task.edges[keep], candidates=task.candidates[keep])
    return evaluate(score_fn, subset, ks=ks)
