"""Metrics beyond the paper's HR/NDCG.

The paper reports HR@K and NDCG@K only; a production evaluation
usually also wants rank-sensitive scalar metrics (MRR, AUC) and
list-quality metrics (coverage, novelty, intra-list diversity).  All of
these operate on the same primitives as :mod:`repro.evaluation.metrics`
— per-example ranks, or recommendation lists.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np


def mrr(ranks: np.ndarray) -> float:
    """Mean reciprocal rank (ranks are 0-based)."""
    ranks = np.asarray(ranks, dtype=float)
    if ranks.size == 0:
        return 0.0
    return float((1.0 / (ranks + 1.0)).mean())


def auc(ranks: np.ndarray, num_candidates: int) -> float:
    """Mean AUC for the single-positive protocol.

    With one positive ranked against ``num_candidates`` negatives, the
    per-example AUC is the fraction of negatives ranked below the
    positive: ``(C - rank) / C``.
    """
    if num_candidates <= 0:
        raise ValueError("num_candidates must be positive")
    ranks = np.asarray(ranks, dtype=float)
    if ranks.size == 0:
        return 0.0
    return float(((num_candidates - ranks) / num_candidates).mean())


def mean_rank(ranks: np.ndarray) -> float:
    """Average 0-based rank of the positive (lower is better)."""
    ranks = np.asarray(ranks, dtype=float)
    return float(ranks.mean()) if ranks.size else 0.0


def catalog_coverage(
    recommendation_lists: Iterable[Sequence[int]], num_items: int
) -> float:
    """Fraction of the catalog that appears in at least one Top-K list."""
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    seen: set[int] = set()
    for items in recommendation_lists:
        seen.update(int(item) for item in items)
    return len(seen) / num_items


def novelty(
    recommendation_lists: Iterable[Sequence[int]], popularity: np.ndarray
) -> float:
    """Mean self-information ``-log2 p(item)`` of recommended items.

    ``popularity`` holds interaction counts; items nobody interacted
    with get the smallest observed probability (most novel).
    """
    popularity = np.asarray(popularity, dtype=float)
    total = popularity.sum()
    if total <= 0:
        raise ValueError("popularity has no interactions")
    probabilities = np.maximum(popularity, 1.0) / total
    information = -np.log2(probabilities)
    values = [
        float(information[list(map(int, items))].mean())
        for items in recommendation_lists
        if len(items)
    ]
    return float(np.mean(values)) if values else 0.0


def intra_list_diversity(
    recommendation_lists: Iterable[Sequence[int]], item_vectors: np.ndarray
) -> float:
    """Mean pairwise cosine *distance* within each Top-K list.

    ``item_vectors`` can be any item representation (learned embeddings
    or the generator's latent vectors); higher means more diverse lists.
    """
    vectors = np.asarray(item_vectors, dtype=float)
    norms = np.linalg.norm(vectors, axis=1)
    norms = np.where(norms > 0, norms, 1.0)
    normalized = vectors / norms[:, None]
    values = []
    for items in recommendation_lists:
        items = list(map(int, items))
        if len(items) < 2:
            continue
        block = normalized[items]
        similarity = block @ block.T
        upper = similarity[np.triu_indices(len(items), k=1)]
        values.append(float((1.0 - upper).mean()))
    return float(np.mean(values)) if values else 0.0


def extended_summary(
    ranks: np.ndarray, num_candidates: int, ks: tuple[int, ...] = (5, 10)
) -> Dict[str, float]:
    """HR/NDCG plus MRR, AUC and mean rank in one dict."""
    from repro.evaluation.metrics import summarize

    summary = summarize(ranks, ks)
    summary["MRR"] = mrr(ranks)
    summary["AUC"] = auc(ranks, num_candidates)
    summary["MeanRank"] = mean_rank(ranks)
    return summary
