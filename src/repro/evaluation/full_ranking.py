"""Full-catalog ranking evaluation.

Section III-C notes that ranking *all* items per test case is "time
consuming", which is why the paper samples 100 candidates.  This module
implements the exhaustive alternative for when the bias of sampled
evaluation matters: each positive is ranked against every item the
entity has never interacted with.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

import numpy as np

from repro.evaluation.metrics import summarize
from repro.evaluation.protocol import RankingResult, ScoreFn


def _seen_mask(
    cache: Dict[int, np.ndarray],
    interacted: Sequence[Set[int]],
    entity: int,
    num_items: int,
) -> np.ndarray:
    """Boolean "entity has interacted with item" mask, built once per
    entity (test edges repeat entities, and a vectorized mask lookup
    replaces the per-item Python set probes of the naive loop)."""
    mask = cache.get(entity)
    if mask is None:
        mask = np.zeros(num_items, dtype=bool)
        seen = interacted[entity]
        if seen:
            mask[np.fromiter(seen, dtype=np.int64, count=len(seen))] = True
        cache[entity] = mask
    return mask


def evaluate_full_ranking(
    score_fn: ScoreFn,
    test_edges: np.ndarray,
    interacted: Sequence[Set[int]],
    num_items: int,
    ks: Tuple[int, ...] = (5, 10),
    chunk_items: int = 2048,
) -> RankingResult:
    """Rank each test positive against the whole unseen catalog.

    ``interacted`` must cover all splits (seen items are excluded from
    the ranking, except the positive itself).  Cost is
    O(E * num_items) scorer calls, chunked along the item axis.
    """
    test_edges = np.asarray(test_edges, dtype=np.int64)
    count = len(test_edges)
    ranks = np.empty(count, dtype=float)
    all_items = np.arange(num_items, dtype=np.int64)
    mask_cache: Dict[int, np.ndarray] = {}
    for position, (entity, positive) in enumerate(test_edges):
        entity = int(entity)
        positive = int(positive)
        seen_mask = _seen_mask(mask_cache, interacted, entity, num_items)
        positive_score = float(
            score_fn(np.array([entity]), np.array([positive]))[0]
        )
        stronger = 0.0
        ties = 0.0
        for start in range(0, num_items, chunk_items):
            items = all_items[start : start + chunk_items]
            scores = score_fn(np.full(items.size, entity, dtype=np.int64), items)
            # ``~`` allocates a fresh array, so the positive's slot can
            # be cleared in place without touching the cached mask.
            keep = ~seen_mask[start : start + items.size]
            if start <= positive < start + items.size:
                keep[positive - start] = False
            kept_scores = scores[keep]
            stronger += float((kept_scores > positive_score).sum())
            ties += float((kept_scores == positive_score).sum())
        ranks[position] = stronger + 0.5 * ties
    return RankingResult(
        ranks=ranks, entities=test_edges[:, 0], metrics=summarize(ranks, ks)
    )
