"""Statistical significance testing (paired t-tests, Section III-E)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class TTestResult:
    statistic: float
    p_value: float

    def significant(self, alpha: float = 0.01) -> bool:
        """Whether the difference is significant at level ``alpha``
        (the paper reports p < 0.01)."""
        return bool(self.p_value < alpha)


def paired_ttest(scores_a: np.ndarray, scores_b: np.ndarray) -> TTestResult:
    """Paired t-test on per-example metric vectors of two models.

    Valid when both models ranked the same frozen candidate lists
    (see :class:`~repro.evaluation.protocol.EvaluationTask`).
    """
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    if scores_a.shape != scores_b.shape:
        raise ValueError("paired t-test requires equal-length score vectors")
    if scores_a.size < 2:
        raise ValueError("need at least two paired examples")
    if np.allclose(scores_a, scores_b):
        return TTestResult(statistic=0.0, p_value=1.0)
    statistic, p_value = stats.ttest_rel(scores_a, scores_b)
    return TTestResult(statistic=float(statistic), p_value=float(p_value))


def one_sample_ttest(differences: np.ndarray, popmean: float = 0.0) -> TTestResult:
    """One-sample t-test on per-example differences (paper's phrasing)."""
    differences = np.asarray(differences, dtype=np.float64)
    if differences.size < 2:
        raise ValueError("need at least two examples")
    if np.allclose(differences, popmean):
        return TTestResult(statistic=0.0, p_value=1.0)
    statistic, p_value = stats.ttest_1samp(differences, popmean)
    return TTestResult(statistic=float(statistic), p_value=float(p_value))
