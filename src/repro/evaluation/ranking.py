"""Top-K recommendation list generation from trained scorers.

The evaluation protocol only needs ranks, but the example applications
recommend actual item lists; this module provides that surface.
"""

from __future__ import annotations

from typing import Callable, Sequence, Set

import numpy as np

from repro.engine.topk import exclusion_mask, topk_indices

ScoreFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def top_k_items(
    score_fn: ScoreFn,
    entity: int,
    num_items: int,
    k: int = 10,
    exclude: Set[int] | None = None,
) -> np.ndarray:
    """Return the Top-K item ids for one entity, highest score first.

    ``exclude`` removes already-interacted items from the ranking, the
    usual deployment behaviour.  Selection runs through the vectorized
    :func:`repro.engine.topk.topk_indices` kernel (boolean exclusion
    mask + ``argpartition``); ordering is identical to a stable
    descending sort — ties break toward the smaller item id.
    """
    mask = exclusion_mask(num_items, exclude)
    candidates = (
        np.nonzero(~mask)[0] if mask is not None else np.arange(num_items, dtype=np.int64)
    )
    if candidates.size == 0 or k <= 0:
        return np.empty(0, dtype=np.int64)
    entities = np.full(candidates.size, entity, dtype=np.int64)
    scores = score_fn(entities, candidates)
    # Candidates are ascending, so positional ties equal item-id ties.
    return candidates[topk_indices(scores, k)]


def recommend_for_groups(
    score_fn: ScoreFn,
    group_ids: Sequence[int],
    num_items: int,
    k: int = 10,
    exclude_per_group: Sequence[Set[int]] | None = None,
) -> dict[int, np.ndarray]:
    """Top-K lists for several groups at once."""
    results: dict[int, np.ndarray] = {}
    for group in group_ids:
        exclude = exclude_per_group[group] if exclude_per_group is not None else None
        results[int(group)] = top_k_items(score_fn, int(group), num_items, k, exclude)
    return results
