"""Top-K ranking metrics: Hit Ratio and NDCG (Section III-C).

Both metrics operate on the *rank* of the single positive test item
among the sampled candidates: HR@K is 1 when the positive lands in the
Top-K; NDCG@K additionally rewards higher positions with
``1 / log2(rank + 2)`` (rank is 0-based).
"""

from __future__ import annotations

import numpy as np


def rank_of_positive(
    positive_scores: np.ndarray, candidate_scores: np.ndarray
) -> np.ndarray:
    """0-based rank of each positive among its candidate row.

    ``positive_scores`` has shape (E,), ``candidate_scores`` (E, C).
    Ties contribute half a position each, so models emitting constant
    scores (e.g. popularity with unseen items) are treated fairly and
    deterministically instead of optimistically.
    """
    positive = positive_scores[:, None]
    stronger = (candidate_scores > positive).sum(axis=1)
    ties = (candidate_scores == positive).sum(axis=1)
    return stronger + 0.5 * ties


def hit_ratio_at_k(ranks: np.ndarray, k: int) -> np.ndarray:
    """Per-example HR@K indicator (mean gives the reported HR@K)."""
    return (ranks < k).astype(np.float64)


def ndcg_at_k(ranks: np.ndarray, k: int) -> np.ndarray:
    """Per-example NDCG@K with a single relevant item."""
    in_top = ranks < k
    gains = np.zeros_like(ranks, dtype=np.float64)
    gains[in_top] = 1.0 / np.log2(ranks[in_top] + 2.0)
    return gains


def summarize(ranks: np.ndarray, ks: tuple[int, ...] = (5, 10)) -> dict[str, float]:
    """HR@K / NDCG@K means for every K, keyed like the paper's tables."""
    summary: dict[str, float] = {}
    for k in ks:
        summary[f"HR@{k}"] = float(hit_ratio_at_k(ranks, k).mean()) if ranks.size else 0.0
        summary[f"NDCG@{k}"] = float(ndcg_at_k(ranks, k).mean()) if ranks.size else 0.0
    return summary
