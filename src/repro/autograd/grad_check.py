"""Numerical gradient checking utilities.

These power both the unit tests and the hypothesis property tests: every
primitive op in the engine is validated against central finite
differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def _primary_output(result) -> Tensor:
    """Reduce a callable's return value to the tensor under test.

    Fused ops such as ``fused_masked_attention`` return
    ``(output, weights)`` tuples; gradcheck differentiates the first
    element, matching how the model consumes them (the auxiliary
    weights are detached diagnostics).
    """
    if isinstance(result, tuple):
        result = result[0]
    if not isinstance(result, Tensor):
        raise TypeError(f"gradcheck target returned {type(result).__name__}")
    return result


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + epsilon
        upper = float(_primary_output(fn(*inputs)).data.sum())
        flat[position] = original - epsilon
        lower = float(_primary_output(fn(*inputs)).data.sum())
        flat[position] = original
        grad_flat[position] = (upper - lower) / (2.0 * epsilon)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    epsilon: float = 1e-6,
) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    ``fn`` may return a Tensor or a tuple whose first element is the
    Tensor to differentiate (the fused attention ops do the latter).
    Raises ``AssertionError`` with a diagnostic message on mismatch so
    test failures point at the offending input.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = _primary_output(fn(*inputs))
    output.sum().backward()
    for position, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, position, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {position}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
