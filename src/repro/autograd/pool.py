"""Backward scratch-buffer pool: per-(shape, dtype) reusable arenas.

PR 4's Adam fast path showed the pattern: a training loop executes the
same graph every step, so every backward closure allocates the exact
same set of temporary arrays thousands of times.  This module extends
that buffer reuse to the backward pass itself.  A closure *leases*
scratch arrays for the duration of one backward call and the arena gets
them back when the closure exits, so step N+1's backward reuses step
N's allocations instead of hitting the allocator.

Safety argument: a leased buffer never escapes its closure with
lingering ownership.  Gradients are handed to ``Tensor._accumulate``,
which copies on first arrival (``grad.copy()``) and adds in place
afterwards (``+=``) — it never stores a reference to the incoming
array.  Buffers are therefore free for reuse the moment the closure
returns.

The arena is thread-local (online serve+train threads must not share
buffers) and bounded: at most ``MAX_PER_KEY`` arrays are retained per
(shape, dtype) so pathological shape churn cannot hoard memory.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

#: Retention cap per (shape, dtype) key.  Attention backward needs a
#: handful of same-shaped temporaries alive at once; beyond that the
#: closure falls back to fresh allocation.
MAX_PER_KEY = 8


class _Arena(threading.local):
    def __init__(self) -> None:
        self.enabled = True
        self.buffers: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0


_ARENA = _Arena()


def set_scratch_pool(enabled: bool) -> bool:
    """Globally enable/disable reuse (this thread); returns previous."""
    previous = _ARENA.enabled
    _ARENA.enabled = bool(enabled)
    return previous


def clear_scratch_pool() -> None:
    """Drop every retained buffer and reset the hit/miss counters."""
    _ARENA.buffers.clear()
    _ARENA.hits = 0
    _ARENA.misses = 0


def scratch_pool_stats() -> Dict[str, int]:
    """Reuse counters: ``hits`` (buffer served from the arena),
    ``misses`` (fresh allocation), ``retained`` (arrays parked)."""
    return {
        "hits": _ARENA.hits,
        "misses": _ARENA.misses,
        "retained": sum(len(stack) for stack in _ARENA.buffers.values()),
    }


@contextlib.contextmanager
def scratch_lease() -> Iterator[Callable[[Tuple[int, ...], np.dtype], np.ndarray]]:
    """Lease scratch arrays for one backward closure.

    Yields a ``take(shape, dtype)`` function returning an *uninitialized*
    array (contents are garbage; callers must write with ``out=`` before
    reading).  Every taken array returns to the arena when the block
    exits, whatever happens inside.
    """
    arena = _ARENA
    taken: List[Tuple[Tuple[Tuple[int, ...], str], np.ndarray]] = []

    def take(shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype).str)
        stack = arena.buffers.get(key) if arena.enabled else None
        if stack:
            buffer = stack.pop()
            arena.hits += 1
        else:
            buffer = np.empty(key[0], dtype=dtype)
            arena.misses += 1
        taken.append((key, buffer))
        return buffer

    try:
        yield take
    finally:
        if arena.enabled:
            for key, buffer in taken:
                stack = arena.buffers.setdefault(key, [])
                if len(stack) < MAX_PER_KEY:
                    stack.append(buffer)
