"""The :class:`Tensor` class: a numpy array plus a backward graph.

Every differentiable operation the GroupSA stack needs is implemented as
a method here (arithmetic, batched matmul, reductions, indexing/gather,
stable softmax and friends).  :mod:`repro.autograd.ops` re-exports the
same operations as free functions for code that prefers a functional
style.

The implementation is deliberately plain reverse-mode autodiff: each op
creates a child tensor holding a closure that, given the child's output
gradient, accumulates gradients into its parents.  ``backward`` walks
the graph in reverse topological order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.context import is_grad_enabled, sparse_grads_enabled
from repro.autograd.dtype import default_dtype
from repro.autograd.sparse import RowSparseGrad

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence[Any]]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting either prepends axes or stretches size-1 axes; the
    adjoint of both is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Collapse stretched size-1 axes.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records a reverse-mode autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Any = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if dtype is None:
            # Floating inputs keep their precision (a float32 model's
            # activations must not silently widen); everything else is
            # cast to the policy default (float64 unless opted down via
            # repro.autograd.dtype).
            array = np.asarray(data)
            if array.dtype.kind != "f":
                array = array.astype(default_dtype())
            self.data = array
        else:
            self.data = np.asarray(data, dtype=dtype)
        self.requires_grad = bool(requires_grad)
        #: ``None`` | dense ndarray | :class:`RowSparseGrad` (leaf gathers).
        self.grad: Optional[Union[np.ndarray, RowSparseGrad]] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build a non-leaf tensor, recording the graph if enabled."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = cls.__new__(cls)
        out.data = data
        out.requires_grad = requires
        out.grad = None
        if requires:
            out._backward = backward
            out._parents = parents
        else:
            out._backward = None
            out._parents = ()
        return out

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=default_dtype()), requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=default_dtype()), requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data, cut from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.requires_grad = False
        out.grad = None
        out._backward = None
        out._parents = ()
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------

    def _accumulate(self, grad: Union[np.ndarray, RowSparseGrad]) -> None:
        """Add ``grad`` into ``self.grad``, coalescing sparse/dense mixes.

        The accumulation rules preserve the dense path's floating-point
        operation order: sparse + sparse merges with one elementwise add
        per shared row, sparse into dense scatter-adds the coalesced
        rows, and a dense gradient arriving on a sparse accumulator
        densifies the accumulator first.
        """
        if isinstance(grad, RowSparseGrad):
            if self.grad is None:
                # The closure built this object for us; no copy needed.
                self.grad = grad
            elif isinstance(self.grad, RowSparseGrad):
                self.grad = self.grad.add_(grad)
            else:
                grad.add_to_dense(self.grad)
        elif self.grad is None:
            self.grad = grad.copy()
        elif isinstance(self.grad, RowSparseGrad):
            dense = self.grad.to_dense()
            dense += grad
            self.grad = dense
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1 for scalars; non-scalar roots must pass an
        explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _coerce(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._from_op(data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._from_op(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._from_op(data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._from_op(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError("matmul requires tensors with at least 2 dimensions")
        data = np.matmul(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = np.matmul(grad, other.data.swapaxes(-1, -2))
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.matmul(self.data.swapaxes(-1, -2), grad)
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return Tensor._from_op(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._from_op(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / data)

        return Tensor._from_op(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function.
        data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, 0, None))),
            np.exp(np.clip(self.data, None, 0)) / (1.0 + np.exp(np.clip(self.data, None, 0))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._from_op(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._from_op(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(data, (self,), backward)

    def softplus(self) -> "Tensor":
        """Stable ``log(1 + exp(x))``."""
        data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sig = np.where(
                    self.data >= 0,
                    1.0 / (1.0 + np.exp(-np.clip(self.data, 0, None))),
                    np.exp(np.clip(self.data, None, 0))
                    / (1.0 + np.exp(np.clip(self.data, None, 0))),
                )
                self._accumulate(grad * sig)

        return Tensor._from_op(data, (self,), backward)

    def log_sigmoid(self) -> "Tensor":
        """Stable ``log(sigmoid(x)) = -softplus(-x)``."""
        return -((-self).softplus())

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def sum(
        self,
        axis: Optional[Union[int, Tuple[int, ...]]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._from_op(np.asarray(data), (self,), backward)

    def mean(
        self,
        axis: Optional[Union[int, Tuple[int, ...]]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g)

        return Tensor._from_op(np.asarray(data), (self,), backward)

    def var(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Population variance along ``axis`` (as used by layer norm)."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._from_op(data, (self,), backward)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        """Broadcast to ``shape`` (a view, no copy); gradient sum-reduces.

        This is the proper expand op: the adjoint of broadcasting is
        summation over the broadcast axes (the same
        :func:`_unbroadcast` every binary op uses), without the
        zero-filled tile-by-add workaround it replaces.
        """
        shape = tuple(shape)
        data = np.broadcast_to(self.data, shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))

        return Tensor._from_op(data, (self,), backward)

    def transpose(self, axis1: int = -2, axis2: int = -1) -> "Tensor":
        data = self.data.swapaxes(axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.swapaxes(axis1, axis2))

        return Tensor._from_op(data, (self,), backward)

    def permute(self, *axes: int) -> "Tensor":
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(data, (self,), backward)

    def __getitem__(self, index: Any) -> "Tensor":
        """Slice or gather.  Integer-array indices make this the embedding
        lookup primitive: gradients are scatter-added back with
        ``np.add.at`` so repeated indices accumulate correctly.

        When row-sparse gradients are enabled (see
        :func:`repro.autograd.context.sparse_grads`) and this tensor is
        an opted-in leaf (``_sparse_grad``, set by
        :class:`~repro.nn.embedding.Embedding`), the backward pass emits
        a :class:`RowSparseGrad` carrying only the touched rows instead
        of materializing a dense ``zeros_like`` table."""
        data = self.data[index]

        if (
            self._backward is None
            and isinstance(index, np.ndarray)
            and index.dtype.kind in "iu"
            and getattr(self, "_sparse_grad", False)
            and sparse_grads_enabled()
        ):
            shape = self.shape

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(RowSparseGrad.from_gather(index, grad, shape))

        else:

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    full = np.zeros_like(self.data)
                    np.add.at(full, index, grad)
                    self._accumulate(full)

        return Tensor._from_op(np.asarray(data), (self,), backward)

    # ------------------------------------------------------------------
    # Softmax family (stable primitives with fused backward)
    # ------------------------------------------------------------------

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inner = (grad * data).sum(axis=axis, keepdims=True)
                self._accumulate(data * (grad - inner))

        return Tensor._from_op(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_norm

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                softmax = np.exp(data)
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._from_op(data, (self,), backward)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def _concatenate_impl(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._from_op(data, tuple(tensors), backward)


def _stack_impl(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for position, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(grad, position, axis=axis))

    return Tensor._from_op(data, tuple(tensors), backward)


def _where_impl(condition: np.ndarray, on_true: Tensor, on_false: Tensor) -> Tensor:
    """Differentiable selection; ``condition`` is a plain boolean array."""
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, on_true.data, on_false.data)

    def backward(grad: np.ndarray) -> None:
        if on_true.requires_grad:
            on_true._accumulate(_unbroadcast(grad * condition, on_true.shape))
        if on_false.requires_grad:
            on_false._accumulate(_unbroadcast(grad * ~condition, on_false.shape))

    return Tensor._from_op(data, (on_true, on_false), backward)


# The implementations live as class attributes so instrumentation (the
# op profiler in :mod:`repro.obs`) can intercept them by patching the
# class, reaching every call site regardless of how the free functions
# below were imported.
Tensor._concatenate = staticmethod(_concatenate_impl)
Tensor._stack = staticmethod(_stack_impl)
Tensor._where = staticmethod(_where_impl)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    return Tensor._concatenate(tensors, axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    return Tensor._stack(tensors, axis)


def where(condition: np.ndarray, on_true: Tensor, on_false: Tensor) -> Tensor:
    """Differentiable selection; ``condition`` is a plain boolean array."""
    return Tensor._where(condition, on_true, on_false)
