"""Functional aliases for :class:`~repro.autograd.tensor.Tensor` methods.

Some call sites (loss functions, tests, benchmarks) read more naturally
with free functions; everything here simply delegates to the method
implementations so there is a single source of truth for gradients.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor, concatenate, stack, where

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "matmul",
    "exp",
    "log",
    "sqrt",
    "sigmoid",
    "tanh",
    "relu",
    "softplus",
    "log_sigmoid",
    "softmax",
    "log_softmax",
    "reduce_sum",
    "reduce_mean",
    "reduce_max",
    "reshape",
    "transpose",
    "concatenate",
    "stack",
    "where",
    "embedding_lookup",
]


def add(a: Tensor, b: Tensor) -> Tensor:
    return as_tensor(a) + b


def sub(a: Tensor, b: Tensor) -> Tensor:
    return as_tensor(a) - b


def mul(a: Tensor, b: Tensor) -> Tensor:
    return as_tensor(a) * b


def div(a: Tensor, b: Tensor) -> Tensor:
    return as_tensor(a) / b


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return as_tensor(a) @ b


def exp(a: Tensor) -> Tensor:
    return as_tensor(a).exp()


def log(a: Tensor) -> Tensor:
    return as_tensor(a).log()


def sqrt(a: Tensor) -> Tensor:
    return as_tensor(a).sqrt()


def sigmoid(a: Tensor) -> Tensor:
    return as_tensor(a).sigmoid()


def tanh(a: Tensor) -> Tensor:
    return as_tensor(a).tanh()


def relu(a: Tensor) -> Tensor:
    return as_tensor(a).relu()


def softplus(a: Tensor) -> Tensor:
    return as_tensor(a).softplus()


def log_sigmoid(a: Tensor) -> Tensor:
    return as_tensor(a).log_sigmoid()


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    return as_tensor(a).softmax(axis=axis)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    return as_tensor(a).log_softmax(axis=axis)


def reduce_sum(
    a: Tensor,
    axis: Optional[Union[int, Tuple[int, ...]]] = None,
    keepdims: bool = False,
) -> Tensor:
    return as_tensor(a).sum(axis=axis, keepdims=keepdims)


def reduce_mean(
    a: Tensor,
    axis: Optional[Union[int, Tuple[int, ...]]] = None,
    keepdims: bool = False,
) -> Tensor:
    return as_tensor(a).mean(axis=axis, keepdims=keepdims)


def reduce_max(a: Tensor, axis: int, keepdims: bool = False) -> Tensor:
    return as_tensor(a).max(axis=axis, keepdims=keepdims)


def reshape(a: Tensor, *shape: int) -> Tensor:
    return as_tensor(a).reshape(*shape)


def transpose(a: Tensor, axis1: int = -2, axis2: int = -1) -> Tensor:
    return as_tensor(a).transpose(axis1, axis2)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table`` for an integer index array.

    ``indices`` may have any shape; the result has shape
    ``indices.shape + table.shape[1:]`` and gradients scatter-add back
    into the table (so repeated ids within a batch accumulate).
    """
    indices = np.asarray(indices, dtype=np.int64)
    return table[indices]
