"""Fused composite autograd ops with hand-written gradients.

Profiling (``results/BENCH_profile.json``) shows training step time
dominated by the attention blocks' backward matmuls plus the graph
bookkeeping around them: the op-by-op graphs record 6-9 nodes per
attention block, each with a closure, saved operands and broadcast
temporaries.  The three ops here collapse those chains into ONE forward
node with ONE backward closure each:

- :func:`fused_masked_attention` — ``softmax(q k^T / scale + bias) v``
  (Eqs. 1-5's social self-attention, any number of heads);
- :func:`fused_linear_relu` — ``relu(x W + b)`` (the score MLPs, FFN
  expansion and tower hidden layers);
- :func:`fused_pairwise_logits` — the full two-layer pairwise-attention
  scoring network of Eqs. (9)-(10)/(13)-(14)/(17)-(18), including the
  query broadcast over candidates (no zero-tile materialization).

Bit-identity contract
---------------------
In float64 these ops produce results **bit-identical** to the unfused
graphs (asserted by ``tests/autograd/test_fused_ops.py`` and the
training-equivalence suite).  That only holds because each backward
replays the *exact* floating-point expression sequence of the chained
closures it replaces — the same ``_unbroadcast`` reductions in the same
order, gradients accumulated into shared parents in the same order the
reverse-topological walk would have produced.  When editing, change the
arithmetic only if you change the unfused reference the tests compare
against.

The backward closures lease their large temporaries from the
per-(shape, dtype) scratch arena (:mod:`repro.autograd.pool`), so a
steady-state training loop stops hitting the allocator in backward.

Implementations are installed as ``Tensor`` staticmethods
(``Tensor._fused_*``) following the ``_concatenate``/``_stack`` pattern
so the op profiler can intercept them by patching the class.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.pool import scratch_lease
from repro.autograd.tensor import Tensor, _unbroadcast


def _detached(data: np.ndarray) -> Tensor:
    """Wrap an array as a graph-free leaf (shared, not copied)."""
    out = Tensor.__new__(Tensor)
    out.data = data
    out.requires_grad = False
    out.grad = None
    out._backward = None
    out._parents = ()
    return out


# ----------------------------------------------------------------------
# linear + relu
# ----------------------------------------------------------------------


def _fused_linear_relu_impl(
    x: Tensor, weight: Tensor, bias: Optional[Tensor]
) -> Tensor:
    """``relu(x @ weight + bias)`` as one node.

    Replaces the matmul → add → relu chain: one saved boolean mask
    instead of two saved intermediate activations, one closure instead
    of three.
    """
    pre = np.matmul(x.data, weight.data)
    if bias is not None:
        pre = pre + bias.data
    mask = pre > 0
    data = pre * mask

    def backward(grad: np.ndarray) -> None:
        with scratch_lease() as take:
            g = take(grad.shape, grad.dtype)
            np.multiply(grad, mask, out=g)
            # Accumulation order matches the unfused reverse-topo walk:
            # bias (add node), then x, then weight (matmul node).
            if bias is not None and bias.requires_grad:
                bias._accumulate(_unbroadcast(g, bias.shape))
            if x.requires_grad:
                gx = take(x.shape, g.dtype) if g.shape[:-1] == x.shape[:-1] else None
                grad_x = np.matmul(g, weight.data.swapaxes(-1, -2), out=gx)
                x._accumulate(_unbroadcast(grad_x, x.shape))
            if weight.requires_grad:
                grad_w = np.matmul(x.data.swapaxes(-1, -2), g)
                weight._accumulate(_unbroadcast(grad_w, weight.shape))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._from_op(data, parents, backward)


# ----------------------------------------------------------------------
# masked softmax attention
# ----------------------------------------------------------------------


def _fused_masked_attention_impl(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    bias: Optional[np.ndarray],
    scale: float,
) -> Tuple[Tensor, Tensor]:
    """``softmax(q k^T / scale + bias) @ v`` as one node.

    ``q``/``k``/``v`` are (..., L, d) with any batch/head leading axes;
    ``bias`` is a plain additive float array broadcastable to the score
    shape (0 = attend, ``MASK_VALUE`` = skip) and receives no gradient.
    Returns ``(output, weights)`` where ``weights`` is the detached
    post-softmax attention matrix (inspection only — the paper's case
    study reads it, nothing differentiates through it).
    """
    scores = np.matmul(q.data, k.data.swapaxes(-1, -2))
    scale_arr = np.asarray(scale, dtype=scores.dtype)
    scores = scores / scale_arr
    if bias is not None:
        scores = scores + bias
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    weights = exp / exp.sum(axis=-1, keepdims=True)
    data = np.matmul(weights, v.data)

    def backward(grad: np.ndarray) -> None:
        with scratch_lease() as take:
            # matmul(weights, v) backward; v accumulates first, exactly
            # where the reverse-topo walk of the unfused chain puts it.
            gw = take(weights.shape, grad.dtype)
            np.matmul(grad, v.data.swapaxes(-1, -2), out=gw)
            if v.requires_grad:
                gv = take(v.shape, grad.dtype)
                np.matmul(weights.swapaxes(-1, -2), grad, out=gv)
                v._accumulate(_unbroadcast(gv, v.shape))
            # softmax backward (the bias add is a constant shift and the
            # scale a scalar divide — both pass the gradient through).
            tmp = take(weights.shape, grad.dtype)
            np.multiply(gw, weights, out=tmp)
            inner = tmp.sum(axis=-1, keepdims=True)
            gs = take(weights.shape, grad.dtype)
            np.subtract(gw, inner, out=gs)
            np.multiply(weights, gs, out=gs)
            np.divide(gs, scale_arr, out=gs)
            if q.requires_grad:
                gq = take(q.shape, grad.dtype)
                np.matmul(gs, k.data, out=gq)
                q._accumulate(_unbroadcast(gq, q.shape))
            if k.requires_grad:
                grad_kt = np.matmul(q.data.swapaxes(-1, -2), gs)
                k._accumulate(grad_kt.swapaxes(-1, -2))

    out = Tensor._from_op(data, (q, k, v), backward)
    return out, _detached(weights)


# ----------------------------------------------------------------------
# pairwise-attention logits
# ----------------------------------------------------------------------


def _fused_pairwise_logits_impl(
    query: Tensor,
    candidates: Tensor,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
) -> Tensor:
    """The full Eq. (9)/(13)/(17) scoring network as one node.

    ``query`` (B, d_q) broadcasts over the H candidates (B, H, d_c) —
    as a stride-0 view, never the (B, H, d_q) zero-tile the original
    op-by-op path materialized — then
    ``logits = w2^T relu(W1 [q (+) c] + b1) + b2`` of shape (B, H).
    """
    batch, count, __ = candidates.shape
    dim_q = query.shape[-1]
    tiled = np.broadcast_to(query.data.reshape(batch, 1, dim_q), (batch, count, dim_q))
    joint = np.concatenate([tiled, candidates.data], axis=-1)
    pre = np.matmul(joint, w1.data) + b1.data
    mask = pre > 0
    hidden = pre * mask
    out = np.matmul(hidden, w2.data) + b2.data  # (B, H, 1)
    data = out.reshape(batch, count)

    def backward(grad: np.ndarray) -> None:
        with scratch_lease() as take:
            g3 = grad.reshape(batch, count, 1)
            # Accumulation order replays the unfused reverse-topo walk:
            # b2, w2 (output linear), b1, w1 (hidden linear), then
            # candidates and query (concat + broadcast).
            if b2.requires_grad:
                b2._accumulate(_unbroadcast(g3, b2.shape))
            if w2.requires_grad:
                w2._accumulate(
                    _unbroadcast(np.matmul(hidden.swapaxes(-1, -2), g3), w2.shape)
                )
            gh = take(hidden.shape, grad.dtype)
            np.matmul(g3, w2.data.swapaxes(-1, -2), out=gh)
            np.multiply(gh, mask, out=gh)  # relu backward
            if b1.requires_grad:
                b1._accumulate(_unbroadcast(gh, b1.shape))
            if w1.requires_grad:
                w1._accumulate(
                    _unbroadcast(np.matmul(joint.swapaxes(-1, -2), gh), w1.shape)
                )
            gj = take(joint.shape, grad.dtype)
            np.matmul(gh, w1.data.swapaxes(-1, -2), out=gj)
            if candidates.requires_grad:
                candidates._accumulate(gj[..., dim_q:])
            if query.requires_grad:
                gq = _unbroadcast(gj[..., :dim_q], (batch, 1, dim_q))
                query._accumulate(gq.reshape(query.shape))

    parents = (query, candidates, w1, b1, w2, b2)
    return Tensor._from_op(data, parents, backward)


# Installed as class attributes so the op profiler can intercept them by
# patching Tensor, mirroring _concatenate/_stack/_where.
Tensor._fused_linear_relu = staticmethod(_fused_linear_relu_impl)
Tensor._fused_masked_attention = staticmethod(_fused_masked_attention_impl)
Tensor._fused_pairwise_logits = staticmethod(_fused_pairwise_logits_impl)


def fused_linear_relu(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``relu(x @ weight + bias)`` as one graph node."""
    return Tensor._fused_linear_relu(x, weight, bias)


def fused_masked_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    bias: Optional[np.ndarray] = None,
    scale: float = 1.0,
) -> Tuple[Tensor, Tensor]:
    """``softmax(q k^T / scale + bias) @ v``; returns (output, weights)."""
    return Tensor._fused_masked_attention(q, k, v, bias, scale)


def fused_pairwise_logits(
    query: Tensor,
    candidates: Tensor,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
) -> Tensor:
    """Pairwise-attention scoring network logits of shape (B, H)."""
    return Tensor._fused_pairwise_logits(query, candidates, w1, b1, w2, b2)
