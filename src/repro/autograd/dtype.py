"""Global floating-point dtype policy for tensors and parameters.

The engine historically forced ``float64`` everywhere.  At serving and
training scale that is twice the memory traffic the hardware needs to
move — attention-heavy steps are bandwidth-bound, so ``float32`` tables
and activations buy real throughput.  The policy here decides what
dtype *new* tensors and freshly initialized parameters get when the
caller does not say otherwise:

- the process default stays ``float64`` so every legacy bit-exactness
  guarantee (sparse-vs-dense training, checkpoint resume, profiled
  runs) is untouched;
- ``float32`` is a first-class opt-in, threaded through model
  construction via ``GroupSAConfig.dtype`` and scoped via
  :func:`dtype_policy`.

The state is thread-local for the same reason the autograd switches in
:mod:`repro.autograd.context` are: the online subsystem builds/serves
models on concurrent threads and one thread's policy must never leak
into another's.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Union

import numpy as np

DtypeLike = Union[str, type, np.dtype]

#: The two supported policies.  Anything narrower than float32 breaks
#: the softmax/BPR numerics; anything wider than float64 is pointless
#: on this hardware.
_SUPPORTED = (np.dtype(np.float32), np.dtype(np.float64))


def resolve_dtype(dtype: DtypeLike) -> np.dtype:
    """Normalize ``'float32'`` / ``np.float64`` / dtype objects, validating."""
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED:
        supported = ", ".join(d.name for d in _SUPPORTED)
        raise ValueError(f"unsupported dtype policy '{resolved.name}' (supported: {supported})")
    return resolved


class _DtypeState(threading.local):
    def __init__(self) -> None:
        self.default = np.dtype(np.float64)


_STATE = _DtypeState()


def default_dtype() -> np.dtype:
    """The dtype new tensors/parameters get absent an explicit request."""
    return _STATE.default


def set_default_dtype(dtype: DtypeLike) -> np.dtype:
    """Set the policy dtype; returns the previous one."""
    previous = _STATE.default
    _STATE.default = resolve_dtype(dtype)
    return previous


@contextlib.contextmanager
def dtype_policy(dtype: DtypeLike) -> Iterator[None]:
    """Scope the default dtype (the way model construction uses it)::

        with dtype_policy("float32"):
            model = GroupSA(...)   # float32 tables and parameters
    """
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        _STATE.default = previous
