"""Global gradient-recording switches.

Mirrors ``torch.no_grad``: inside a ``no_grad()`` block no computation
graph is recorded, which makes evaluation loops cheap and guards against
accidentally training through the metric code.

A second, independent switch gates *row-sparse* gather gradients: when
enabled, integer-index gathers from tensors that opted in (embedding
tables) emit a :class:`~repro.autograd.sparse.RowSparseGrad` instead of
a dense ``zeros_like(table)`` scatter.  Off by default so ad-hoc
autograd code keeps plain ndarray gradients; the trainer turns it on
per step (``TrainingConfig.sparse_grads``).

A third switch gates the *fused composite ops* of
:mod:`repro.autograd.fused` (masked softmax attention, linear+relu,
pairwise-attention logits).  On by default because the fused paths are
bit-identical to the op-by-op graphs in float64; turn it off to force
the reference unfused graphs (``TrainingConfig.fused_ops=False``, or
the :func:`fused_ops` context below).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator


class _ContextState(threading.local):
    """Per-thread autograd switches.

    Thread-local on purpose: the online subsystem serves (inside
    ``no_grad()`` scoring blocks) and trains (forward passes that must
    record a graph) concurrently in one process, so a serving thread's
    ``no_grad()`` must never leak into the trainer thread's forward.
    """

    def __init__(self) -> None:
        self.grad_enabled = True
        self.sparse_grads = False
        self.fused_ops = True


_STATE = _ContextState()


def is_grad_enabled() -> bool:
    """Return whether operations currently record a backward graph."""
    return _STATE.grad_enabled


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording within its scope."""
    previous = _STATE.grad_enabled
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = previous


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables graph recording within its scope."""
    previous = _STATE.grad_enabled
    _STATE.grad_enabled = True
    try:
        yield
    finally:
        _STATE.grad_enabled = previous


def sparse_grads_enabled() -> bool:
    """Return whether opted-in gathers emit row-sparse gradients."""
    return _STATE.sparse_grads


def set_sparse_grads(enabled: bool) -> bool:
    """Set the row-sparse gather switch; returns the previous value."""
    previous = _STATE.sparse_grads
    _STATE.sparse_grads = bool(enabled)
    return previous


@contextlib.contextmanager
def sparse_grads(enabled: bool = True) -> Iterator[None]:
    """Scope the row-sparse gather switch (the opt-out knob).

    The flag is read when a gather records its backward closure, so it
    must wrap the *forward* pass of the ops whose gradients should be
    row-sparse.
    """
    previous = set_sparse_grads(enabled)
    try:
        yield
    finally:
        set_sparse_grads(previous)


def fused_ops_enabled() -> bool:
    """Return whether modules should dispatch to the fused composite ops."""
    return _STATE.fused_ops


def set_fused_ops(enabled: bool) -> bool:
    """Set the fused-op switch; returns the previous value."""
    previous = _STATE.fused_ops
    _STATE.fused_ops = bool(enabled)
    return previous


@contextlib.contextmanager
def fused_ops(enabled: bool = True) -> Iterator[None]:
    """Scope the fused-op switch (pass ``False`` for the reference path).

    Like :func:`sparse_grads` this is read at *forward* time, when a
    module decides which graph to record, so it must wrap the forward
    pass of the ops whose implementation it selects.
    """
    previous = set_fused_ops(enabled)
    try:
        yield
    finally:
        set_fused_ops(previous)
