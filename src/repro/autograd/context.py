"""Global gradient-recording switch.

Mirrors ``torch.no_grad``: inside a ``no_grad()`` block no computation
graph is recorded, which makes evaluation loops cheap and guards against
accidentally training through the metric code.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record a backward graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording within its scope."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables graph recording within its scope."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = previous
