"""Row-sparse gradients for embedding-style parameters.

A mini-batch gathers ``O(batch)`` rows out of an embedding table with
millions of rows; the adjoint of that gather is a scatter-add that is
zero everywhere except those rows.  Materializing it as a dense
``zeros_like(table)`` array makes every training step pay
``O(rows * dim)`` regardless of the batch — :class:`RowSparseGrad`
stores just the touched row indices and their gradient rows instead, so
backward cost scales with the batch.

Bit-exactness contract
----------------------
Every operation here reproduces the floating-point *operation order* of
the dense path it replaces:

- construction coalesces duplicate indices with ``np.add.at`` over the
  original gather sequence — the same per-destination accumulation
  order ``np.add.at(full, index, grad)`` uses;
- sparse + sparse accumulation adds the incoming coalesced row onto the
  existing one with a single elementwise add, exactly like ``dense +=
  dense`` adds the two scatter results;
- sparse + dense accumulation scatters the coalesced rows with one add
  per element.

Together with the lazy optimizer fast paths (:mod:`repro.optim`), a
training run with row-sparse gradients produces final weights identical
to the dense run (up to the sign of exact zeros, which ``==`` ignores).

Gathers opt in per tensor (``tensor._sparse_grad = True``; the
:class:`~repro.nn.embedding.Embedding` layer marks its table) and the
path is globally gated by
:func:`repro.autograd.context.sparse_grads_enabled` — the opt-out knob.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class RowSparseGrad:
    """Gradient of shape ``shape`` that is non-zero only on some rows.

    Attributes
    ----------
    indices:
        ``(k,)`` sorted, unique ``int64`` row indices into axis 0.
    values:
        ``(k,) + shape[1:]`` gradient rows aligned with ``indices``.
    shape:
        The dense shape this gradient stands in for.
    """

    __slots__ = ("indices", "values", "shape")

    def __init__(
        self, indices: np.ndarray, values: np.ndarray, shape: Tuple[int, ...]
    ) -> None:
        self.indices = indices
        self.values = values
        self.shape = tuple(shape)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_gather(
        cls, index: np.ndarray, grad: np.ndarray, shape: Tuple[int, ...]
    ) -> "RowSparseGrad":
        """Coalesce a gather's output gradient into per-row totals.

        ``index`` may have any shape and repeated entries; ``grad`` has
        shape ``index.shape + shape[1:]``.  Duplicates accumulate in
        their original sequence order, matching ``np.add.at`` on a dense
        buffer bit for bit.
        """
        flat_index = np.asarray(index, dtype=np.int64).reshape(-1)
        rows = np.asarray(grad).reshape((flat_index.size,) + tuple(shape[1:]))
        unique, inverse = np.unique(flat_index, return_inverse=True)
        values = np.zeros((unique.size,) + tuple(shape[1:]), dtype=rows.dtype)
        np.add.at(values, inverse, rows)
        return cls(unique, values, shape)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def nnz_rows(self) -> int:
        """Number of rows carrying gradient."""
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Actual memory footprint (indices + values)."""
        return int(self.indices.nbytes + self.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RowSparseGrad(shape={self.shape}, nnz_rows={self.nnz_rows})"
        )

    # ------------------------------------------------------------------
    # Accumulation / consumption
    # ------------------------------------------------------------------

    def add_(self, other: "RowSparseGrad") -> "RowSparseGrad":
        """In-place ``self += other``; returns self.

        Rows present in both operands get one elementwise add (the same
        single add the dense ``+=`` would perform); disjoint rows are
        merged into a re-sorted union.
        """
        if self.shape != other.shape:
            raise ValueError(
                f"row-sparse shapes differ: {self.shape} vs {other.shape}"
            )
        if self.indices.size == other.indices.size and np.array_equal(
            self.indices, other.indices
        ):
            self.values += other.values
            return self
        union = np.union1d(self.indices, other.indices)
        values = np.zeros(
            (union.size,) + tuple(self.shape[1:]), dtype=self.values.dtype
        )
        values[np.searchsorted(union, self.indices)] = self.values
        values[np.searchsorted(union, other.indices)] += other.values
        self.indices = union
        self.values = values
        return self

    def add_to_dense(self, dense: np.ndarray) -> np.ndarray:
        """``dense += self`` (indices are unique, so plain ``+=`` works)."""
        dense[self.indices] += self.values
        return dense

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense gradient (zeros off the rows)."""
        out = np.zeros(self.shape, dtype=self.values.dtype)
        out[self.indices] = self.values
        return out

    def __imul__(self, scale: float) -> "RowSparseGrad":
        """In-place scalar scaling (used by gradient clipping)."""
        self.values *= scale
        return self

    def sq_sum(self) -> float:
        """Sum of squared entries over the touched rows.

        Cheap diagnostic used by run metrics.  For the *canonical* norm
        that matches the dense path bit for bit (gradient clipping),
        densify first — numpy's pairwise summation tree differs between
        a full table and its non-zero rows.
        """
        return float(np.square(self.values).sum())
