"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the substrate that replaces PyTorch in this
reproduction: a small but complete tensor library with broadcasting-aware
gradients, batched matrix multiplication, stable softmax/log-sigmoid
primitives, the masking operations the GroupSA attention stack needs,
and fused attention/MLP kernels with a global floating dtype policy.

The public surface mirrors the familiar torch idioms::

    from repro.autograd import Tensor, no_grad

    x = Tensor([[1.0, 2.0]], requires_grad=True)
    y = (x @ x.transpose(-1, -2)).sum()
    y.backward()
    x.grad  # numpy array with d(y)/d(x)
"""

from repro.autograd.context import (
    fused_ops,
    fused_ops_enabled,
    is_grad_enabled,
    no_grad,
    set_fused_ops,
    set_sparse_grads,
    sparse_grads,
    sparse_grads_enabled,
)
from repro.autograd.dtype import (
    default_dtype,
    dtype_policy,
    resolve_dtype,
    set_default_dtype,
)
from repro.autograd.fused import (
    fused_linear_relu,
    fused_masked_attention,
    fused_pairwise_logits,
)
from repro.autograd.grad_check import gradcheck, numerical_gradient
from repro.autograd.pool import (
    clear_scratch_pool,
    scratch_lease,
    scratch_pool_stats,
    set_scratch_pool,
)
from repro.autograd.sparse import RowSparseGrad
from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "sparse_grads",
    "sparse_grads_enabled",
    "set_sparse_grads",
    "fused_ops",
    "fused_ops_enabled",
    "set_fused_ops",
    "fused_linear_relu",
    "fused_masked_attention",
    "fused_pairwise_logits",
    "default_dtype",
    "dtype_policy",
    "resolve_dtype",
    "set_default_dtype",
    "scratch_lease",
    "set_scratch_pool",
    "clear_scratch_pool",
    "scratch_pool_stats",
    "RowSparseGrad",
    "gradcheck",
    "numerical_gradient",
]
