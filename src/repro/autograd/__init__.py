"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the substrate that replaces PyTorch in this
reproduction: a small but complete tensor library with broadcasting-aware
gradients, batched matrix multiplication, stable softmax/log-sigmoid
primitives and the masking operations the GroupSA attention stack needs.

The public surface mirrors the familiar torch idioms::

    from repro.autograd import Tensor, no_grad

    x = Tensor([[1.0, 2.0]], requires_grad=True)
    y = (x @ x.transpose(-1, -2)).sum()
    y.backward()
    x.grad  # numpy array with d(y)/d(x)
"""

from repro.autograd.context import (
    is_grad_enabled,
    no_grad,
    set_sparse_grads,
    sparse_grads,
    sparse_grads_enabled,
)
from repro.autograd.grad_check import gradcheck, numerical_gradient
from repro.autograd.sparse import RowSparseGrad
from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "sparse_grads",
    "sparse_grads_enabled",
    "set_sparse_grads",
    "RowSparseGrad",
    "gradcheck",
    "numerical_gradient",
]
