"""Validation-based hyper-parameter selection (Section III-E).

The paper tunes every hyper-parameter on a 10% validation split carved
out of the training data ("for all the hyper-parameters, we tune them
on the validation set").  :func:`grid_search` reproduces that loop for
any subset of :class:`~repro.core.config.GroupSAConfig` fields.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.config import GroupSAConfig
from repro.data.splits import DataSplit
from repro.evaluation.protocol import evaluate, prepare_task
from repro.training.trainer import TrainingConfig
from repro.training.two_stage import train_groupsa


@dataclass
class TrialResult:
    """One grid point's configuration and validation metrics."""

    overrides: Dict[str, object]
    metrics: Dict[str, float]


@dataclass
class SearchResult:
    """All trials plus the winner under the selection metric."""

    trials: List[TrialResult] = field(default_factory=list)
    metric: str = "HR@10"

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise ValueError("no trials recorded")
        return max(self.trials, key=lambda trial: trial.metrics[self.metric])

    def best_config(self, base: GroupSAConfig) -> GroupSAConfig:
        return base.variant(**self.best.overrides)

    def format(self) -> str:
        lines = [f"validation grid search (selection metric: {self.metric})"]
        for trial in self.trials:
            settings = ", ".join(f"{k}={v}" for k, v in trial.overrides.items())
            score = trial.metrics[self.metric]
            marker = "  <- best" if trial is self.best else ""
            lines.append(f"  {settings:<40s} {self.metric}={score:.4f}{marker}")
        return "\n".join(lines)


def validation_task(split: DataSplit, num_candidates: int = 100, rng: int = 0):
    """Frozen candidate lists over the *validation* group interactions."""
    # Candidates must avoid items seen in train or validation; the test
    # set stays untouched (no leakage into model selection).
    visible = split.train.with_interactions(
        user_item=_concat(split.train.user_item, split.validation.user_item),
        group_item=_concat(split.train.group_item, split.validation.group_item),
    )
    return prepare_task(
        split.validation.group_item,
        visible.group_items(),
        visible.num_items,
        num_candidates=num_candidates,
        rng=rng,
    )


def grid_search(
    split: DataSplit,
    grid: Dict[str, Sequence[object]],
    base: GroupSAConfig = GroupSAConfig(),
    training: TrainingConfig = TrainingConfig(),
    metric: str = "HR@10",
    num_candidates: int = 100,
) -> SearchResult:
    """Train one model per grid point; score on the validation split.

    ``grid`` maps GroupSAConfig field names to candidate values, e.g.
    ``{"num_attention_layers": [1, 2, 3], "top_h": [2, 4, 6]}``.
    """
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    task = validation_task(split, num_candidates=num_candidates)
    if len(task.edges) == 0:
        raise ValueError(
            "validation split has no group interactions; increase the "
            "validation fraction or the dataset size"
        )
    result = SearchResult(metric=metric)
    names = list(grid)
    for values in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, values))
        config = base.variant(**overrides)
        model, batcher, __ = train_groupsa(split, config, training)
        metrics = evaluate(
            lambda groups, items: model.score_group_items(batcher.batch(groups), items),
            task,
        ).metrics
        result.trials.append(TrialResult(overrides=overrides, metrics=metrics))
    return result


def _concat(left, right):
    import numpy as np

    return np.concatenate([left, right])
