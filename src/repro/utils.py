"""Small shared utilities (seeding, batching)."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: RngLike) -> np.random.Generator:
    """Coerce an int seed / Generator / None into a ``Generator``.

    Passing a ``Generator`` through unchanged lets callers thread one
    source of randomness through a whole experiment for reproducibility.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def batched(indices: Sequence[int], batch_size: int) -> Iterator[np.ndarray]:
    """Yield contiguous index batches of at most ``batch_size``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    array = np.asarray(indices)
    for start in range(0, len(array), batch_size):
        yield array[start : start + batch_size]


def shuffled_batches(
    count: int, batch_size: int, rng: RngLike = None
) -> Iterator[np.ndarray]:
    """Yield randomly permuted index batches over ``range(count)``."""
    generator = ensure_rng(rng)
    order = generator.permutation(count)
    yield from batched(order, batch_size)
