"""Closeness functions ``f(i, j)`` for the social bias matrix.

Eq. (5) defines the social bias via a closeness score ``f(i, j)``; the
paper uses the direct-connection indicator in experiments but notes any
real-valued score (PageRank, closeness, betweenness, ...) works.  These
variants feed the closeness ablation benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set

import numpy as np

from repro.data.dataset import GroupRecommendationDataset
from repro.graphs.social import social_adjacency

ClosenessFn = Callable[[np.ndarray], np.ndarray]
# A ClosenessFn maps a member id array (l,) to a boolean (l, l) matrix
# with True where attention between the member pair is enabled.


def direct_connection(dataset: GroupRecommendationDataset) -> ClosenessFn:
    """The paper's experimental choice: f(i,j)=1 iff a direct edge."""
    friend_sets = dataset.friend_set()

    def closeness(members: np.ndarray) -> np.ndarray:
        return _pairwise(members, lambda a, b: b in friend_sets[a])

    return closeness


def common_neighbours(
    dataset: GroupRecommendationDataset, minimum_common: int = 1
) -> ClosenessFn:
    """Enable attention for pairs that share >= k social neighbours,
    in addition to directly connected pairs."""
    friend_sets = dataset.friend_set()

    def closeness(members: np.ndarray) -> np.ndarray:
        def connected(a: int, b: int) -> bool:
            if b in friend_sets[a]:
                return True
            return len(friend_sets[a] & friend_sets[b]) >= minimum_common

        return _pairwise(members, connected)

    return closeness


def pagerank_threshold(
    dataset: GroupRecommendationDataset,
    damping: float = 0.85,
    iterations: int = 30,
    quantile: float = 0.5,
) -> ClosenessFn:
    """Enable attention toward members with above-median global PageRank
    (plus all direct connections).

    A cheap proxy for "listen to influential users": the vote flows to
    high-centrality members even without a direct edge.
    """
    adjacency = social_adjacency(dataset)
    scores = _pagerank(adjacency, damping=damping, iterations=iterations)
    threshold = float(np.quantile(scores, quantile))
    friend_sets = dataset.friend_set()

    def closeness(members: np.ndarray) -> np.ndarray:
        influential = scores[members] >= threshold
        direct = _pairwise(members, lambda a, b: b in friend_sets[a])
        # Column j enabled everywhere when member j is influential.
        return direct | influential[None, :]

    return closeness


def full_attention() -> ClosenessFn:
    """No social masking: plain self-attention (the Eq. (1) variant)."""

    def closeness(members: np.ndarray) -> np.ndarray:
        size = members.size
        return np.ones((size, size), dtype=bool)

    return closeness


CLOSENESS_REGISTRY: Dict[str, Callable[..., ClosenessFn]] = {
    "direct": direct_connection,
    "common-neighbours": common_neighbours,
    "pagerank": pagerank_threshold,
}


def _pairwise(members: np.ndarray, predicate: Callable[[int, int], bool]) -> np.ndarray:
    size = members.size
    matrix = np.zeros((size, size), dtype=bool)
    for row in range(size):
        for col in range(row + 1, size):
            if predicate(int(members[row]), int(members[col])):
                matrix[row, col] = True
                matrix[col, row] = True
    return matrix


def _pagerank(
    adjacency, damping: float = 0.85, iterations: int = 30
) -> np.ndarray:
    count = adjacency.shape[0]
    degree = np.asarray(adjacency.sum(axis=1)).ravel()
    inverse_degree = np.where(degree > 0, 1.0 / np.maximum(degree, 1.0), 0.0)
    rank = np.full(count, 1.0 / count)
    teleport = (1.0 - damping) / count
    for __ in range(iterations):
        spread = adjacency.T @ (rank * inverse_degree)
        dangling = rank[degree == 0].sum() / count
        rank = teleport + damping * (spread + dangling)
    return rank
