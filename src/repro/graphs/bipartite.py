"""User-item bipartite graph utilities.

Used by the SIGR baseline's graph-embedding substrate and by data
analysis helpers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import GroupRecommendationDataset


def interaction_matrix(dataset: GroupRecommendationDataset) -> sp.csr_matrix:
    """Binary user x item interaction matrix ``R^U``."""
    shape = (dataset.num_users, dataset.num_items)
    if len(dataset.user_item) == 0:
        return sp.csr_matrix(shape, dtype=np.float64)
    values = np.ones(len(dataset.user_item), dtype=np.float64)
    matrix = sp.coo_matrix(
        (values, (dataset.user_item[:, 0], dataset.user_item[:, 1])), shape=shape
    )
    matrix.sum_duplicates()
    matrix.data[:] = 1.0
    return matrix.tocsr()


def normalized_propagation(matrix: sp.csr_matrix) -> tuple[sp.csr_matrix, sp.csr_matrix]:
    """Row-normalized propagation operators (user->item and item->user).

    One application of each is a single light-weight graph-convolution
    step: ``user_repr = P_ui @ item_features`` averages the features of
    a user's items, and vice versa.
    """
    user_degree = np.asarray(matrix.sum(axis=1)).ravel()
    item_degree = np.asarray(matrix.sum(axis=0)).ravel()
    inv_user = sp.diags(1.0 / np.maximum(user_degree, 1.0))
    inv_item = sp.diags(1.0 / np.maximum(item_degree, 1.0))
    return inv_user @ matrix, inv_item @ matrix.T


def propagate_embeddings(
    matrix: sp.csr_matrix,
    user_embeddings: np.ndarray,
    item_embeddings: np.ndarray,
    rounds: int = 1,
    mix: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Bipartite smoothing of embeddings (SIGR's graph-embedding core).

    Each round mixes an entity's own embedding with the mean embedding
    of its neighbours on the other side of the bipartite graph.
    """
    if not 0.0 <= mix <= 1.0:
        raise ValueError("mix must be in [0, 1]")
    user_to_item, item_to_user = normalized_propagation(matrix)
    users = user_embeddings.copy()
    items = item_embeddings.copy()
    for __ in range(rounds):
        users_next = (1.0 - mix) * users + mix * (user_to_item @ items)
        items_next = (1.0 - mix) * items + mix * (item_to_user @ users)
        users, items = users_next, items_next
    return users, items
