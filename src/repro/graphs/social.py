"""Social graph helpers built on scipy sparse / networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.data.dataset import GroupRecommendationDataset


def social_adjacency(dataset: GroupRecommendationDataset) -> sp.csr_matrix:
    """Symmetric boolean CSR adjacency of the social network."""
    count = dataset.num_users
    if len(dataset.social) == 0:
        return sp.csr_matrix((count, count), dtype=np.float64)
    rows = np.concatenate([dataset.social[:, 0], dataset.social[:, 1]])
    cols = np.concatenate([dataset.social[:, 1], dataset.social[:, 0]])
    values = np.ones(len(rows), dtype=np.float64)
    matrix = sp.coo_matrix((values, (rows, cols)), shape=(count, count))
    matrix.sum_duplicates()
    matrix.data[:] = 1.0
    return matrix.tocsr()


def to_networkx(dataset: GroupRecommendationDataset) -> nx.Graph:
    """Export the social network as a networkx graph."""
    graph = nx.Graph()
    graph.add_nodes_from(range(dataset.num_users))
    graph.add_edges_from(map(tuple, dataset.social))
    return graph


def is_socially_connected(
    members: np.ndarray, dataset: GroupRecommendationDataset
) -> bool:
    """Whether a member set induces a connected social subgraph.

    The SIGR group-extraction rule implies connectedness; the synthetic
    generator is tested against this invariant.
    """
    if members.size <= 1:
        return True
    graph = to_networkx(dataset).subgraph(members.tolist())
    return nx.is_connected(graph)


def degree_sequence(dataset: GroupRecommendationDataset) -> np.ndarray:
    """Per-user social degree."""
    degree = np.zeros(dataset.num_users, dtype=np.int64)
    for left, right in dataset.social:
        degree[left] += 1
        degree[right] += 1
    return degree
