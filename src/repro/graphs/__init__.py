"""Graph substrates: bipartite/user-item, social, TF-IDF, closeness."""

from repro.graphs.bipartite import (
    interaction_matrix,
    normalized_propagation,
    propagate_embeddings,
)
from repro.graphs.closeness import (
    CLOSENESS_REGISTRY,
    ClosenessFn,
    common_neighbours,
    direct_connection,
    full_attention,
    pagerank_threshold,
)
from repro.graphs.social import (
    degree_sequence,
    is_socially_connected,
    social_adjacency,
    to_networkx,
)
from repro.graphs.tfidf import (
    friend_idf,
    item_idf,
    random_top_neighbours,
    tfidf_top_neighbours,
)

__all__ = [
    "interaction_matrix",
    "normalized_propagation",
    "propagate_embeddings",
    "social_adjacency",
    "to_networkx",
    "is_socially_connected",
    "degree_sequence",
    "item_idf",
    "friend_idf",
    "tfidf_top_neighbours",
    "random_top_neighbours",
    "ClosenessFn",
    "CLOSENESS_REGISTRY",
    "direct_connection",
    "common_neighbours",
    "pagerank_threshold",
    "full_attention",
]
