"""TF-IDF ranking for Top-H neighbour selection (Section II-D).

The paper ranks a user's interacted items — and separately their social
neighbours — by TF-IDF [28] and keeps only the Top-H for aggregation.
With implicit single interactions the term frequency is constant, so
the effective ranking score is the inverse document frequency: rarer
items (and less-connected friends) say more about a specific user.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import GroupRecommendationDataset
from repro.data.loaders import TopNeighbours, build_top_neighbours


def item_idf(dataset: GroupRecommendationDataset) -> np.ndarray:
    """IDF of each item over user "documents": log(m / (1 + df))."""
    document_frequency = np.zeros(dataset.num_items, dtype=np.float64)
    if len(dataset.user_item):
        pairs = np.unique(dataset.user_item, axis=0)
        np.add.at(document_frequency, pairs[:, 1], 1.0)
    return np.log(dataset.num_users / (1.0 + document_frequency))


def friend_idf(dataset: GroupRecommendationDataset) -> np.ndarray:
    """IDF of each user as a friend: log(m / (1 + degree))."""
    degree = np.zeros(dataset.num_users, dtype=np.float64)
    for left, right in dataset.social:
        degree[left] += 1.0
        degree[right] += 1.0
    return np.log(dataset.num_users / (1.0 + degree))


def tfidf_top_neighbours(
    dataset: GroupRecommendationDataset, top_h: int
) -> TopNeighbours:
    """Build TF-IDF-ranked Top-H item/friend tables for every user."""
    return build_top_neighbours(
        dataset,
        top_h=top_h,
        item_scores=item_idf(dataset),
        friend_scores=friend_idf(dataset),
    )


def random_top_neighbours(
    dataset: GroupRecommendationDataset, top_h: int, seed: int = 0
) -> TopNeighbours:
    """Ablation variant: random Top-H selection instead of TF-IDF."""
    rng = np.random.default_rng(seed)
    return build_top_neighbours(
        dataset,
        top_h=top_h,
        item_scores=rng.random(dataset.num_items),
        friend_scores=rng.random(dataset.num_users),
    )
