"""Model introspection helpers.

Utilities behind the paper's qualitative analyses: tracing the voting
rounds of the self-attention stack (which member listened to whom),
rendering attention matrices as text heat maps, and inspecting
embedding-space neighbourhoods.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import no_grad
from repro.core.groupsa import GroupSA
from repro.data.loaders import GroupBatch
from repro.nn.attention import social_bias_matrix

_SHADES = " .:-=+*#%@"


def voting_rounds_trace(model: GroupSA, batch: GroupBatch) -> List[np.ndarray]:
    """Per-layer social attention matrices for a batch of groups.

    Returns one (B, L, L) array per voting round (empty list when the
    variant has no self-attention).  Row i of a matrix is how member i
    weighted the other members' opinions in that round.
    """
    if not model.voting.enabled:
        return []
    model.eval()
    traces: List[np.ndarray] = []
    with no_grad():
        bias = social_bias_matrix(batch.adjacency, member_mask=batch.mask)
        x = model.user_embedding(batch.members)
        for layer in model.voting.layers:
            x, weights = layer(x, bias)
            traces.append(weights.data.copy())
    model.train()
    return traces


def attention_heatmap_text(
    weights: np.ndarray,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Render an (L, L) attention matrix as an ASCII heat map.

    Each cell maps weight in [0, 1] to a character ramp, so the case
    study output stays readable in a terminal and in logs.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("weights must be a square (L, L) matrix")
    size = weights.shape[0]
    labels = list(labels) if labels is not None else [str(i) for i in range(size)]
    if len(labels) != size:
        raise ValueError("labels length must match matrix size")
    width = max(len(label) for label in labels)
    header = " " * (width + 1) + " ".join(f"{label:>{width}}" for label in labels)
    lines = [header]
    for row, label in enumerate(labels):
        cells = []
        for col in range(size):
            value = float(np.clip(weights[row, col], 0.0, 1.0))
            shade = _SHADES[min(int(value * len(_SHADES)), len(_SHADES) - 1)]
            cells.append(f"{shade * min(width, 3):>{width}}")
        lines.append(f"{label:>{width}} " + " ".join(cells))
    return "\n".join(lines)


def embedding_neighbours(
    table: np.ndarray, entity: int, k: int = 5
) -> List[Tuple[int, float]]:
    """The ``k`` nearest neighbours of one row by cosine similarity."""
    table = np.asarray(table, dtype=float)
    if not 0 <= entity < len(table):
        raise IndexError(f"entity {entity} out of range [0, {len(table)})")
    norms = np.linalg.norm(table, axis=1)
    norms = np.where(norms > 0, norms, 1.0)
    normalized = table / norms[:, None]
    similarity = normalized @ normalized[entity]
    similarity[entity] = -np.inf
    order = np.argsort(-similarity)
    # Never return the entity itself, even when k exceeds the table.
    order = order[order != entity][:k]
    return [(int(index), float(similarity[index])) for index in order]


def member_weight_profile(
    model: GroupSA,
    batch: GroupBatch,
    item_ids: np.ndarray,
) -> np.ndarray:
    """Gamma weights (Eq. 10) for each (group, item) pair in the batch,
    with padded member slots zeroed for clean downstream plotting."""
    gamma = model.member_attention(batch, item_ids)
    return gamma * batch.mask


def dominant_member(
    model: GroupSA, batch: GroupBatch, item_ids: np.ndarray
) -> np.ndarray:
    """The user id carrying the largest voting weight per (group, item)."""
    gamma = member_weight_profile(model, batch, item_ids)
    positions = gamma.argmax(axis=1)
    return batch.members[np.arange(len(batch)), positions]
