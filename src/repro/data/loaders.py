"""Batch assembly for group forward passes.

Groups have ragged member lists; the voting network wants rectangular
(B, L) member matrices plus boolean masks and per-group social
adjacency blocks.  :class:`GroupBatcher` precomputes the padded
structures once per dataset so batching is a fancy-index away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Set

import numpy as np

from repro.data.dataset import GroupRecommendationDataset


@dataclass(frozen=True)
class GroupBatch:
    """Padded view of a batch of groups.

    Attributes
    ----------
    group_ids: (B,) group identifiers.
    members: (B, L) member user ids, padded with 0 (mask disambiguates).
    mask: (B, L) boolean; True where a real member sits.
    adjacency: (B, L, L) boolean; True where two *real* members are
        directly socially connected (the f(i,j)=1 case of Eq. (5)).
    """

    group_ids: np.ndarray
    members: np.ndarray
    mask: np.ndarray
    adjacency: np.ndarray

    def __len__(self) -> int:
        return len(self.group_ids)


class GroupBatcher:
    """Precomputed padded member/adjacency arrays for every group.

    ``closeness`` customizes which member pairs may attend to each
    other (the f(i,j) of Eq. (5)); the default is the paper's direct
    social connection.  Pass a callable mapping a member id array (l,)
    to a boolean (l, l) matrix to use another closeness measure.
    """

    def __init__(
        self,
        dataset: GroupRecommendationDataset,
        max_members: int | None = None,
        closeness: "Callable[[np.ndarray], np.ndarray] | None" = None,
    ) -> None:
        sizes = dataset.group_sizes()
        natural_max = int(sizes.max()) if sizes.size else 1
        self.max_members = min(natural_max, max_members) if max_members else natural_max
        count = dataset.num_groups
        length = self.max_members
        self._members = np.zeros((count, length), dtype=np.int64)
        self._mask = np.zeros((count, length), dtype=bool)
        self._adjacency = np.zeros((count, length, length), dtype=bool)

        for group_id, members in enumerate(dataset.group_members):
            kept = members[:length]
            size = kept.size
            self._members[group_id, :size] = kept
            self._mask[group_id, :size] = True
        if closeness is None:
            self._adjacency = _pairwise_adjacency(
                self._members,
                self._mask,
                dataset.friend_set(),
                dataset.num_users,
            )
        else:
            for group_id, members in enumerate(dataset.group_members):
                kept = members[:length]
                size = kept.size
                local = np.asarray(closeness(kept), dtype=bool)
                self._adjacency[group_id, :size, :size] = local

    def batch(self, group_ids: Sequence[int]) -> GroupBatch:
        ids = np.asarray(group_ids, dtype=np.int64)
        return GroupBatch(
            group_ids=ids,
            members=self._members[ids],
            mask=self._mask[ids],
            adjacency=self._adjacency[ids],
        )

    def all_groups(self) -> GroupBatch:
        return self.batch(np.arange(len(self._members)))


def _pairwise_adjacency(
    members: np.ndarray,
    mask: np.ndarray,
    friend_sets: List[Set[int]],
    num_users: int,
    chunk_groups: int = 512,
) -> np.ndarray:
    """Vectorized batch version of :func:`_local_adjacency`.

    Friendship edges are encoded as ``u * num_users + v`` and probed with
    a single sorted-membership test over all padded member pairs at once
    (chunked over groups to bound the ``chunk × L × L`` temporaries).
    Like the reference, only the upper triangle is *checked* — the
    ``row < col`` direction of a possibly asymmetric friend relation —
    and the result is symmetrized.
    """
    count, length = members.shape
    total = sum(len(friends) for friends in friend_sets)
    codes = np.empty(total, dtype=np.int64)
    position = 0
    for user, friends in enumerate(friend_sets):
        if friends:
            ids = np.fromiter(friends, dtype=np.int64, count=len(friends))
            codes[position : position + ids.size] = user * num_users + ids
            position += ids.size
    codes.sort()
    adjacency = np.zeros((count, length, length), dtype=bool)
    if total == 0:
        return adjacency
    upper_triangle = np.triu(np.ones((length, length), dtype=bool), k=1)
    for start in range(0, count, chunk_groups):
        block = members[start : start + chunk_groups]
        valid = mask[start : start + chunk_groups]
        pair_codes = block[:, :, None] * num_users + block[:, None, :]
        connected = np.isin(pair_codes, codes)
        directed = (
            connected & valid[:, :, None] & valid[:, None, :] & upper_triangle
        )
        adjacency[start : start + chunk_groups] = directed | directed.transpose(
            0, 2, 1
        )
    return adjacency


def _local_adjacency(members: np.ndarray, friend_sets: List[Set[int]]) -> np.ndarray:
    """Reference single-group adjacency builder.

    Kept as the readable specification (and test oracle) for
    :func:`_pairwise_adjacency`, which must reproduce it bit for bit.
    """
    size = members.size
    adjacency = np.zeros((size, size), dtype=bool)
    for row, user in enumerate(members):
        friends = friend_sets[int(user)]
        for col in range(row + 1, size):
            if int(members[col]) in friends:
                adjacency[row, col] = True
                adjacency[col, row] = True
    return adjacency


@dataclass(frozen=True)
class TopNeighbours:
    """Fixed-size Top-H neighbour tables for the user-modeling component.

    ``items``/``item_mask`` hold each user's Top-H interacted items;
    ``friends``/``friend_mask`` hold the Top-H social neighbours
    (both ranked by TF-IDF, Section II-D).  Users with fewer than H
    entries are padded (mask False).
    """

    items: np.ndarray
    item_mask: np.ndarray
    friends: np.ndarray
    friend_mask: np.ndarray

    @property
    def top_h(self) -> int:
        return self.items.shape[1]


def build_top_neighbours(
    dataset: GroupRecommendationDataset,
    top_h: int,
    item_scores: np.ndarray,
    friend_scores: np.ndarray,
) -> TopNeighbours:
    """Assemble padded Top-H tables from per-entity ranking scores.

    ``item_scores`` has one score per item (higher = more informative,
    e.g. IDF); ``friend_scores`` one per user.
    """
    num_users = dataset.num_users
    items = np.zeros((num_users, top_h), dtype=np.int64)
    item_mask = np.zeros((num_users, top_h), dtype=bool)
    friends = np.zeros((num_users, top_h), dtype=np.int64)
    friend_mask = np.zeros((num_users, top_h), dtype=bool)

    for user, interacted in enumerate(dataset.user_items()):
        ranked = _top_by_score(np.fromiter(interacted, dtype=np.int64), item_scores, top_h)
        items[user, : ranked.size] = ranked
        item_mask[user, : ranked.size] = True

    for user, neighbours in enumerate(dataset.friends()):
        ranked = _top_by_score(neighbours, friend_scores, top_h)
        friends[user, : ranked.size] = ranked
        friend_mask[user, : ranked.size] = True

    return TopNeighbours(
        items=items, item_mask=item_mask, friends=friends, friend_mask=friend_mask
    )


def _top_by_score(candidates: np.ndarray, scores: np.ndarray, top_h: int) -> np.ndarray:
    if candidates.size == 0:
        return candidates
    order = np.argsort(-scores[candidates], kind="stable")
    return candidates[order[:top_h]]
