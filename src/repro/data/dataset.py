"""Dataset container for the three interaction types of Section II-A.

A :class:`GroupRecommendationDataset` holds the observed user-item
interactions ``R^U``, group-item interactions ``R^G``, the social
network ``R^S`` and the member list of every group — everything the
task definition's *Input* requires, in sparse edge-list form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass
class GroupRecommendationDataset:
    """Sparse container for users, items, groups and their interactions.

    Attributes
    ----------
    num_users, num_items, num_groups:
        Entity counts; ids are dense ``0..n-1`` integers.
    user_item:
        Edge array of shape (E_u, 2) with columns (user, item).
    group_item:
        Edge array of shape (E_g, 2) with columns (group, item).
    social:
        Undirected edge array of shape (E_s, 2); stored once per pair.
    group_members:
        ``group_members[t]`` is the integer array of user ids in group t.
    name:
        Human-readable label (e.g. ``"yelp-like"``).
    """

    num_users: int
    num_items: int
    num_groups: int
    user_item: np.ndarray
    group_item: np.ndarray
    social: np.ndarray
    group_members: List[np.ndarray]
    name: str = "dataset"
    _user_items_cache: Optional[List[Set[int]]] = field(
        default=None, repr=False, compare=False
    )
    _group_items_cache: Optional[List[Set[int]]] = field(
        default=None, repr=False, compare=False
    )
    _friends_cache: Optional[List[np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.user_item = _as_edges(self.user_item)
        self.group_item = _as_edges(self.group_item)
        self.social = _as_edges(self.social)
        self.group_members = [np.asarray(m, dtype=np.int64) for m in self.group_members]
        self.validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check id ranges and structural invariants; raise on violation."""
        if len(self.group_members) != self.num_groups:
            raise ValueError(
                f"expected {self.num_groups} member lists, got {len(self.group_members)}"
            )
        _check_range(self.user_item[:, 0], self.num_users, "user id in user_item")
        _check_range(self.user_item[:, 1], self.num_items, "item id in user_item")
        _check_range(self.group_item[:, 0], self.num_groups, "group id in group_item")
        _check_range(self.group_item[:, 1], self.num_items, "item id in group_item")
        _check_range(self.social[:, 0], self.num_users, "user id in social")
        _check_range(self.social[:, 1], self.num_users, "user id in social")
        if self.social.size and np.any(self.social[:, 0] == self.social[:, 1]):
            raise ValueError("social network contains self-loops")
        for group_id, members in enumerate(self.group_members):
            if members.size < 1:
                raise ValueError(f"group {group_id} has no members")
            if members.size != np.unique(members).size:
                raise ValueError(f"group {group_id} has duplicate members")
            _check_range(members, self.num_users, f"member of group {group_id}")

    # ------------------------------------------------------------------
    # Derived adjacency views (cached)
    # ------------------------------------------------------------------

    def user_items(self) -> List[Set[int]]:
        """Per-user set of interacted items."""
        if self._user_items_cache is None:
            sets: List[Set[int]] = [set() for __ in range(self.num_users)]
            for user, item in self.user_item:
                sets[user].add(int(item))
            self._user_items_cache = sets
        return self._user_items_cache

    def group_items(self) -> List[Set[int]]:
        """Per-group set of interacted items."""
        if self._group_items_cache is None:
            sets: List[Set[int]] = [set() for __ in range(self.num_groups)]
            for group, item in self.group_item:
                sets[group].add(int(item))
            self._group_items_cache = sets
        return self._group_items_cache

    def friends(self) -> List[np.ndarray]:
        """Per-user sorted array of direct social neighbours."""
        if self._friends_cache is None:
            lists: List[List[int]] = [[] for __ in range(self.num_users)]
            for left, right in self.social:
                lists[left].append(int(right))
                lists[right].append(int(left))
            self._friends_cache = [
                np.array(sorted(set(neighbours)), dtype=np.int64) for neighbours in lists
            ]
        return self._friends_cache

    def friend_set(self) -> List[Set[int]]:
        return [set(neighbours.tolist()) for neighbours in self.friends()]

    def item_popularity(self) -> np.ndarray:
        """Interaction count per item over user-item edges."""
        counts = np.zeros(self.num_items, dtype=np.int64)
        np.add.at(counts, self.user_item[:, 1], 1)
        return counts

    # ------------------------------------------------------------------
    # Mutation-free derivation
    # ------------------------------------------------------------------

    def with_interactions(
        self,
        user_item: np.ndarray,
        group_item: np.ndarray,
        name: Optional[str] = None,
    ) -> "GroupRecommendationDataset":
        """Clone with replaced interaction edges (used by the splitter)."""
        return GroupRecommendationDataset(
            num_users=self.num_users,
            num_items=self.num_items,
            num_groups=self.num_groups,
            user_item=user_item,
            group_item=group_item,
            social=self.social,
            group_members=self.group_members,
            name=name or self.name,
        )

    def group_sizes(self) -> np.ndarray:
        return np.array([members.size for members in self.group_members])


def _as_edges(edges: Sequence[Tuple[int, int]]) -> np.ndarray:
    array = np.asarray(edges, dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError(f"edge array must have shape (E, 2), got {array.shape}")
    return array


def _check_range(values: np.ndarray, upper: int, label: str) -> None:
    if values.size == 0:
        return
    if values.min() < 0 or values.max() >= upper:
        raise ValueError(f"{label} out of range [0, {upper})")
