"""Dataset presets mirroring the paper's Table I statistics.

``yelp_like``/``douban_like`` reproduce the per-entity averages of the
real datasets (group size, interactions per user/group, friends per
user) at a configurable scale; ``scale=1.0`` matches the published
entity counts, while the small default keeps CPU training tractable.
"""

from __future__ import annotations

from repro.data.synthetic import SyntheticConfig, SyntheticWorld, generate
from repro.utils import RngLike

#: Entity counts from Table I.
YELP_FULL = {"users": 34_504, "items": 22_611, "groups": 24_103}
DOUBAN_FULL = {"users": 29_181, "items": 46_097, "groups": 17_826}


def yelp_like_config(scale: float = 0.02, seed: int = 7) -> SyntheticConfig:
    """Yelp-shaped world: fewer items than users, sparser interactions."""
    return SyntheticConfig(
        num_users=max(40, int(YELP_FULL["users"] * scale)),
        num_items=max(40, int(YELP_FULL["items"] * scale)),
        num_groups=max(20, int(YELP_FULL["groups"] * scale)),
        num_communities=6,
        latent_dim=8,
        avg_friends=20.77,
        homophily=0.85,
        avg_user_interactions=13.98,
        avg_group_interactions=1.12,
        avg_group_size=4.45,
        seed=seed,
        name="yelp-like",
    )


def douban_like_config(scale: float = 0.02, seed: int = 13) -> SyntheticConfig:
    """Douban-Event-shaped world: more items than users, denser social
    network and denser interactions."""
    return SyntheticConfig(
        num_users=max(40, int(DOUBAN_FULL["users"] * scale)),
        num_items=max(40, int(DOUBAN_FULL["items"] * scale)),
        num_groups=max(20, int(DOUBAN_FULL["groups"] * scale)),
        num_communities=8,
        latent_dim=8,
        avg_friends=40.86,
        homophily=0.85,
        avg_user_interactions=25.22,
        avg_group_interactions=1.47,
        avg_group_size=4.84,
        seed=seed,
        name="douban-like",
    )


def yelp_like(scale: float = 0.02, seed: int = 7, rng: RngLike = None) -> SyntheticWorld:
    """Generate a Yelp-shaped world."""
    return generate(yelp_like_config(scale=scale, seed=seed), rng=rng)


def douban_like(scale: float = 0.02, seed: int = 13, rng: RngLike = None) -> SyntheticWorld:
    """Generate a Douban-Event-shaped world."""
    return generate(douban_like_config(scale=scale, seed=seed), rng=rng)
