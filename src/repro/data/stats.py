"""Dataset statistics in the shape of the paper's Table I."""

from __future__ import annotations

from typing import Dict

from repro.data.dataset import GroupRecommendationDataset


def table1_statistics(dataset: GroupRecommendationDataset) -> Dict[str, float]:
    """Compute the seven statistics reported in Table I."""
    num_users = dataset.num_users
    num_groups = dataset.num_groups
    sizes = dataset.group_sizes()
    friends_per_user = (
        2.0 * len(dataset.social) / num_users if num_users else 0.0
    )
    return {
        "# Users": num_users,
        "# Items/Events": dataset.num_items,
        "# Groups": num_groups,
        "Avg. group size": float(sizes.mean()) if sizes.size else 0.0,
        "Avg. # interactions per user": (
            len(dataset.user_item) / num_users if num_users else 0.0
        ),
        "Avg. # friends per user": friends_per_user,
        "Avg. # interactions per group": (
            len(dataset.group_item) / num_groups if num_groups else 0.0
        ),
    }


def format_table1(stats_by_dataset: Dict[str, Dict[str, float]]) -> str:
    """Render Table I as aligned text for the experiment harness."""
    names = list(stats_by_dataset)
    rows = list(next(iter(stats_by_dataset.values())))
    header = f"{'Statistics':<32}" + "".join(f"{name:>16}" for name in names)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for name in names:
            value = stats_by_dataset[name][row]
            cells.append(
                f"{value:>16,.0f}" if row.startswith("#") else f"{value:>16.2f}"
            )
        lines.append(f"{row:<32}" + "".join(cells))
    return "\n".join(lines)
