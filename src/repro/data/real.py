"""Loader for the AGREE/SIGR public dataset file format.

The Yelp / Douban-Event dumps used by the paper circulate in the format
popularised by the AGREE authors' repository:

- ``groupMember.txt``  — one group per line: ``gid uid1,uid2,...``
- ``userRating.txt``   — one interaction per line: ``uid itemid [rest]``
- ``groupRating.txt``  — one interaction per line: ``gid itemid [rest]``
- ``socialConnection.txt`` (optional) — one edge per line: ``uid uid``

Ids in the files may be arbitrary non-negative integers; they are
remapped to dense ``0..n-1`` ranges.  Anything after the first two
columns of a rating line (ratings, timestamps) is ignored — the paper
treats all interactions as implicit feedback.

If you have the original archives, point :func:`load_agree_format` at
the directory and every harness in :mod:`repro.experiments` will accept
the resulting dataset in place of the synthetic worlds.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.data.dataset import GroupRecommendationDataset

PathLike = Union[str, Path]


class FormatError(ValueError):
    """A dataset file does not match the expected layout."""


def load_agree_format(
    directory: PathLike,
    group_member_file: str = "groupMember.txt",
    user_rating_file: str = "userRating.txt",
    group_rating_file: str = "groupRating.txt",
    social_file: Optional[str] = "socialConnection.txt",
    name: Optional[str] = None,
) -> GroupRecommendationDataset:
    """Read an AGREE-format dataset directory."""
    directory = Path(directory)
    members_raw = parse_group_members(directory / group_member_file)
    user_edges_raw = parse_pair_file(directory / user_rating_file)
    group_edges_raw = parse_pair_file(directory / group_rating_file)
    social_raw: List[Tuple[int, int]] = []
    if social_file is not None and (directory / social_file).exists():
        social_raw = parse_pair_file(directory / social_file)

    user_ids = _collect_ids(
        [uid for uid, __ in user_edges_raw],
        [uid for members in members_raw.values() for uid in members],
        [uid for pair in social_raw for uid in pair],
    )
    item_ids = _collect_ids(
        [iid for __, iid in user_edges_raw], [iid for __, iid in group_edges_raw]
    )
    group_ids = _collect_ids(list(members_raw), [gid for gid, __ in group_edges_raw])

    user_map = {raw: dense for dense, raw in enumerate(user_ids)}
    item_map = {raw: dense for dense, raw in enumerate(item_ids)}
    group_map = {raw: dense for dense, raw in enumerate(group_ids)}

    members: List[np.ndarray] = [np.empty(0, np.int64)] * len(group_ids)
    for raw_gid, raw_members in members_raw.items():
        members[group_map[raw_gid]] = np.array(
            sorted({user_map[uid] for uid in raw_members}), dtype=np.int64
        )
    for dense_gid, member_array in enumerate(members):
        if member_array.size == 0:
            raise FormatError(
                f"group {group_ids[dense_gid]} appears in ratings but has no members"
            )

    user_item = np.array(
        sorted({(user_map[u], item_map[i]) for u, i in user_edges_raw}), dtype=np.int64
    ).reshape(-1, 2)
    group_item = np.array(
        sorted({(group_map[g], item_map[i]) for g, i in group_edges_raw}),
        dtype=np.int64,
    ).reshape(-1, 2)
    social_pairs: Set[Tuple[int, int]] = set()
    for left, right in social_raw:
        a, b = user_map[left], user_map[right]
        if a != b:
            social_pairs.add((min(a, b), max(a, b)))
    social = np.array(sorted(social_pairs), dtype=np.int64).reshape(-1, 2)

    return GroupRecommendationDataset(
        num_users=len(user_ids),
        num_items=len(item_ids),
        num_groups=len(group_ids),
        user_item=user_item,
        group_item=group_item,
        social=social,
        group_members=members,
        name=name or directory.name,
    )


def parse_group_members(path: PathLike) -> Dict[int, List[int]]:
    """Parse ``gid uid1,uid2,...`` lines into {gid: [uids]}."""
    path = Path(path)
    if not path.exists():
        raise FormatError(f"missing group member file: {path}")
    members: Dict[int, List[int]] = {}
    for line_number, line in enumerate(_lines(path), start=1):
        parts = line.split()
        if len(parts) != 2:
            raise FormatError(
                f"{path}:{line_number}: expected 'gid uid1,uid2,...', got {line!r}"
            )
        try:
            gid = int(parts[0])
            uids = [int(token) for token in parts[1].split(",") if token]
        except ValueError as error:
            raise FormatError(f"{path}:{line_number}: non-integer id") from error
        if not uids:
            raise FormatError(f"{path}:{line_number}: group {gid} has no members")
        members.setdefault(gid, []).extend(uids)
    if not members:
        raise FormatError(f"{path}: no groups found")
    return members


def parse_pair_file(path: PathLike) -> List[Tuple[int, int]]:
    """Parse whitespace-separated ``entity item [extra...]`` lines."""
    path = Path(path)
    if not path.exists():
        raise FormatError(f"missing rating file: {path}")
    pairs: List[Tuple[int, int]] = []
    for line_number, line in enumerate(_lines(path), start=1):
        parts = line.split()
        if len(parts) < 2:
            raise FormatError(
                f"{path}:{line_number}: expected at least two columns, got {line!r}"
            )
        try:
            pairs.append((int(parts[0]), int(parts[1])))
        except ValueError as error:
            raise FormatError(f"{path}:{line_number}: non-integer id") from error
    return pairs


def _lines(path: Path):
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            stripped = raw.strip()
            if stripped and not stripped.startswith("#"):
                yield stripped


def _collect_ids(*groups_of_ids) -> List[int]:
    collected: Set[int] = set()
    for ids in groups_of_ids:
        collected.update(int(value) for value in ids)
    return sorted(collected)
