"""Train/validation/test splitting per the paper's protocol.

Section III-C: 80% of the group-item and user-item interactions for
training, the rest for testing; 10% of the training records become the
validation set used for hyper-parameter selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import GroupRecommendationDataset
from repro.utils import RngLike, ensure_rng


@dataclass
class DataSplit:
    """Train / validation / test views over one dataset.

    All three share the social network and the group member lists
    (those are side information, not prediction targets).
    """

    train: GroupRecommendationDataset
    validation: GroupRecommendationDataset
    test: GroupRecommendationDataset

    @property
    def full(self) -> GroupRecommendationDataset:
        """Union of all interactions (used to exclude seen items when
        sampling evaluation candidates)."""
        return self.train.with_interactions(
            user_item=np.concatenate(
                [self.train.user_item, self.validation.user_item, self.test.user_item]
            ),
            group_item=np.concatenate(
                [self.train.group_item, self.validation.group_item, self.test.group_item]
            ),
            name=f"{self.train.name}-full",
        )


def split_interactions(
    dataset: GroupRecommendationDataset,
    train_fraction: float = 0.8,
    validation_fraction: float = 0.1,
    rng: RngLike = None,
) -> DataSplit:
    """Random interaction-level split of both edge types.

    ``validation_fraction`` is taken *out of the training portion*, as
    in the paper ("in the training dataset, we randomly choose 10%
    records as the validation set").
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in [0, 1)")
    generator = ensure_rng(rng)

    user_train, user_valid, user_test = _split_edges(
        dataset.user_item, train_fraction, validation_fraction, generator
    )
    group_train, group_valid, group_test = _split_edges(
        dataset.group_item, train_fraction, validation_fraction, generator
    )

    train = dataset.with_interactions(user_train, group_train, name=f"{dataset.name}-train")
    validation = dataset.with_interactions(
        user_valid, group_valid, name=f"{dataset.name}-valid"
    )
    test = dataset.with_interactions(user_test, group_test, name=f"{dataset.name}-test")
    return DataSplit(train=train, validation=validation, test=test)


def _split_edges(
    edges: np.ndarray,
    train_fraction: float,
    validation_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    count = len(edges)
    order = rng.permutation(count)
    train_count = int(round(count * train_fraction))
    valid_count = int(round(train_count * validation_fraction))
    train_ids = order[: train_count - valid_count]
    valid_ids = order[train_count - valid_count : train_count]
    test_ids = order[train_count:]
    return edges[train_ids], edges[valid_ids], edges[test_ids]
