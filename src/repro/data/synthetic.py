"""Synthetic world generator standing in for the Yelp / Douban dumps.

The paper's datasets come from the SIGR authors' site and are not
redistributable offline, so this module builds statistically comparable
worlds with a *planted latent voting mechanism*:

1. users live in interest communities (homophily, per the paper's
   closing discussion) and have latent taste vectors;
2. the social network is sampled preferentially within communities;
3. user-item interactions follow a softmax over taste-item affinity
   mixed with a long-tailed global popularity;
4. groups are connected subgraphs of the social network (so the group
   extraction rule of SIGR [6] holds by construction);
5. every group-item interaction is produced by an *expertise-weighted
   vote*: members with high expertise on the item's topic dominate the
   choice — exactly the dynamic-weight decision process GroupSA is
   designed to learn, and the reason static aggregation baselines
   should trail it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Set

import numpy as np

from repro.data.dataset import GroupRecommendationDataset
from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the generative world.

    The defaults produce a small world suitable for unit tests; the
    dataset presets in :mod:`repro.data.presets` scale them to mimic
    Table I's per-entity averages.
    """

    num_users: int = 300
    num_items: int = 200
    num_groups: int = 150
    num_communities: int = 6
    latent_dim: int = 8
    #: Average number of friends per user (Table I: 20.77 / 40.86).
    avg_friends: float = 8.0
    #: Probability a friendship stays within the community.
    homophily: float = 0.85
    #: Average user-item interactions per user (Table I: 13.98 / 25.22).
    avg_user_interactions: float = 10.0
    #: Average group-item interactions per group (Table I: 1.12 / 1.47).
    avg_group_interactions: float = 1.2
    #: Mean group size (Table I: 4.45 / 4.84); sizes are >= 2.
    avg_group_size: float = 4.5
    max_group_size: int = 12
    #: Softmax temperature for interaction sampling (lower = more
    #: deterministic tastes, easier learning problem).
    taste_temperature: float = 0.35
    #: Temperature of the group vote; groups decide more decisively
    #: than individuals explore, mirroring the paper's observation that
    #: group choices are highly predictable once member weights are known.
    group_temperature: float = 0.15
    #: Exponent on global popularity in individual choice: interaction
    #: probability is proportional to ``pop^alpha * exp(affinity/tau)``.
    #: Calibrated against Table II: Pop reaches HR@10 ~0.65 on the real
    #: Yelp user task, so individual choices are strongly
    #: popularity-driven (alpha ~= 1).
    popularity_weight: float = 1.5
    #: Popularity long-tail skew (sigma of the lognormal).
    popularity_sigma: float = 1.8
    #: Popularity exponent in the *group* vote; much weaker (Pop only
    #: reaches HR@10 ~0.41 on the real Yelp group task).
    group_popularity_weight: float = 0.5
    #: Concentration of expertise: each user is an expert on a few
    #: topics; higher sharpness makes the planted voting more dominant.
    expertise_sharpness: float = 4.0
    #: Discussion rounds before the vote: each round every member moves
    #: their taste toward the mean taste of their *friends inside the
    #: group* ("each user first exchanges opinions with his/her friends
    #: to reach a consensus", Section I).  This is the mechanism the
    #: social self-attention network is built to recover; setting it to
    #: 0 removes the social component from the planted vote.
    discussion_rounds: int = 2
    #: How far a member moves toward their in-group friends per round.
    discussion_strength: float = 0.5
    #: Std-dev of user taste noise around the community centroid.
    taste_noise: float = 0.25
    seed: int = 7
    name: str = "synthetic"

    def scaled(self, factor: float) -> "SyntheticConfig":
        """Return a copy with entity counts multiplied by ``factor``."""
        return replace(
            self,
            num_users=max(20, int(self.num_users * factor)),
            num_items=max(20, int(self.num_items * factor)),
            num_groups=max(10, int(self.num_groups * factor)),
        )


@dataclass
class SyntheticWorld:
    """The generated dataset plus the hidden ground truth.

    The latent arrays are *not* visible to models; tests and the case
    study harness use them to check that learned attention correlates
    with planted expertise.
    """

    dataset: GroupRecommendationDataset
    user_latent: np.ndarray
    item_latent: np.ndarray
    item_topic: np.ndarray
    user_expertise: np.ndarray  # (num_users, num_communities)
    config: SyntheticConfig


def generate(config: SyntheticConfig, rng: RngLike = None) -> SyntheticWorld:
    """Generate a full world from ``config``."""
    generator = ensure_rng(config.seed if rng is None else rng)

    communities = generator.integers(0, config.num_communities, size=config.num_users)
    centroids = generator.normal(size=(config.num_communities, config.latent_dim))
    centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)

    user_latent = centroids[communities] + config.taste_noise * generator.normal(
        size=(config.num_users, config.latent_dim)
    )
    item_topic = generator.integers(0, config.num_communities, size=config.num_items)
    item_latent = centroids[item_topic] + config.taste_noise * generator.normal(
        size=(config.num_items, config.latent_dim)
    )

    social = _sample_social_network(config, communities, generator)
    friends = _adjacency_lists(config.num_users, social)

    popularity = generator.lognormal(
        mean=0.0, sigma=config.popularity_sigma, size=config.num_items
    )
    popularity /= popularity.sum()

    user_item = _sample_user_interactions(
        config, user_latent, item_latent, popularity, generator
    )

    user_expertise = _sample_expertise(config, communities, generator)

    group_members = _sample_groups(config, friends, generator)
    friend_sets = [set(neighbours) for neighbours in friends]
    group_item = _sample_group_interactions(
        config,
        group_members,
        friend_sets,
        user_latent,
        item_latent,
        item_topic,
        user_expertise,
        popularity,
        generator,
    )

    dataset = GroupRecommendationDataset(
        num_users=config.num_users,
        num_items=config.num_items,
        num_groups=len(group_members),
        user_item=user_item,
        group_item=group_item,
        social=social,
        group_members=group_members,
        name=config.name,
    )
    return SyntheticWorld(
        dataset=dataset,
        user_latent=user_latent,
        item_latent=item_latent,
        item_topic=item_topic,
        user_expertise=user_expertise,
        config=config,
    )


# ----------------------------------------------------------------------
# Sampling helpers
# ----------------------------------------------------------------------


def _sample_social_network(
    config: SyntheticConfig, communities: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample undirected friendships with community homophily."""
    members_of: List[np.ndarray] = [
        np.flatnonzero(communities == c) for c in range(config.num_communities)
    ]
    edges: Set[tuple[int, int]] = set()
    # Target total edge count so the average degree matches avg_friends
    # despite duplicate draws; sample until reached (with an attempt cap).
    target_edges = int(round(config.num_users * config.avg_friends / 2))
    max_attempts = max(10 * target_edges, 100)
    attempts = 0
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        user = int(rng.integers(0, config.num_users))
        if rng.random() < config.homophily:
            pool = members_of[communities[user]]
        else:
            pool = None
        friend = (
            int(rng.choice(pool))
            if pool is not None and pool.size > 1
            else int(rng.integers(0, config.num_users))
        )
        if friend == user:
            continue
        edges.add((min(user, friend), max(user, friend)))
    if not edges:
        # Degenerate tiny config: connect consecutive users.
        edges = {(u, u + 1) for u in range(config.num_users - 1)}
    return np.array(sorted(edges), dtype=np.int64)


def _adjacency_lists(num_users: int, social: np.ndarray) -> List[List[int]]:
    friends: List[List[int]] = [[] for __ in range(num_users)]
    for left, right in social:
        friends[left].append(int(right))
        friends[right].append(int(left))
    return friends


def _sample_user_interactions(
    config: SyntheticConfig,
    user_latent: np.ndarray,
    item_latent: np.ndarray,
    popularity: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample implicit user-item feedback from taste + popularity."""
    edges: Set[tuple[int, int]] = set()
    log_pop = np.log(popularity + 1e-12)
    for user in range(config.num_users):
        # 1 + Poisson(mean-1) guarantees >= 1 while keeping the mean exact.
        count = 1 + int(rng.poisson(max(config.avg_user_interactions - 1.0, 0.0)))
        count = min(count, config.num_items - 1)
        affinity = user_latent[user] @ item_latent.T
        logits = (
            affinity / config.taste_temperature
            + config.popularity_weight * log_pop
        )
        probabilities = _softmax(logits)
        items = rng.choice(
            config.num_items, size=count, replace=False, p=probabilities
        )
        edges.update((user, int(item)) for item in items)
    return np.array(sorted(edges), dtype=np.int64)


def _sample_expertise(
    config: SyntheticConfig, communities: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Per-user, per-topic expertise.

    A user is strongest on their own community's topic, and a random
    minority are planted *experts* on one extra topic — the "food
    critic" of the paper's introduction.
    """
    base = rng.gamma(shape=1.0, scale=0.5, size=(config.num_users, config.num_communities))
    base[np.arange(config.num_users), communities] += 1.0
    expert_mask = rng.random(config.num_users) < 0.2
    expert_topic = rng.integers(0, config.num_communities, size=config.num_users)
    base[expert_mask, expert_topic[expert_mask]] += config.expertise_sharpness
    return base


def _sample_groups(
    config: SyntheticConfig, friends: List[List[int]], rng: np.random.Generator
) -> List[np.ndarray]:
    """Grow groups as connected subgraphs of the social network."""
    groups: List[np.ndarray] = []
    num_users = len(friends)
    for __ in range(config.num_groups):
        target = int(
            np.clip(rng.poisson(config.avg_group_size - 2) + 2, 2, config.max_group_size)
        )
        seed = int(rng.integers(0, num_users))
        members = {seed}
        frontier = list(friends[seed])
        while len(members) < target and frontier:
            pick = int(frontier.pop(rng.integers(0, len(frontier))))
            if pick in members:
                continue
            members.add(pick)
            frontier.extend(friends[pick])
        if len(members) < 2:
            # Isolated seed: fall back to seed + a random friend-less pair
            # (kept rare by construction; still a valid occasional group).
            other = int(rng.integers(0, num_users))
            while other == seed:
                other = int(rng.integers(0, num_users))
            members.add(other)
        groups.append(np.array(sorted(members), dtype=np.int64))
    return groups


def _discussed_tastes(
    config: SyntheticConfig,
    members: np.ndarray,
    friend_sets: List[Set[int]],
    user_latent: np.ndarray,
) -> np.ndarray:
    """Simulate the pre-vote discussion: members drift toward the mean
    taste of their friends *inside the group* for a few rounds."""
    tastes = user_latent[members].copy()
    if config.discussion_rounds <= 0 or config.discussion_strength <= 0:
        return tastes
    size = members.size
    adjacency = np.zeros((size, size), dtype=bool)
    for row in range(size):
        friends = friend_sets[int(members[row])]
        for col in range(row + 1, size):
            if int(members[col]) in friends:
                adjacency[row, col] = True
                adjacency[col, row] = True
    degree = adjacency.sum(axis=1)
    for __ in range(config.discussion_rounds):
        neighbour_mean = np.where(
            degree[:, None] > 0,
            adjacency @ tastes / np.maximum(degree[:, None], 1),
            tastes,
        )
        tastes = (
            1.0 - config.discussion_strength
        ) * tastes + config.discussion_strength * neighbour_mean
    return tastes


def _sample_group_interactions(
    config: SyntheticConfig,
    group_members: List[np.ndarray],
    friend_sets: List[Set[int]],
    user_latent: np.ndarray,
    item_latent: np.ndarray,
    item_topic: np.ndarray,
    user_expertise: np.ndarray,
    popularity: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Planted latent voting: a social discussion adjusts member tastes,
    then expertise-weighted voting picks the item."""
    edges: Set[tuple[int, int]] = set()
    num_items = item_latent.shape[0]
    log_pop = np.log(popularity + 1e-12)
    for group_id, members in enumerate(group_members):
        count = 1 + int(rng.poisson(max(config.avg_group_interactions - 1.0, 0.0)))
        count = min(count, num_items - 1)
        discussed = _discussed_tastes(config, members, friend_sets, user_latent)
        member_affinity = discussed @ item_latent.T  # (l, n)
        # Voting weights: softmax over members of their expertise on
        # each item's topic -> shape (l, n).
        expertise = user_expertise[members][:, item_topic]  # (l, n)
        weights = _softmax(expertise, axis=0)
        group_score = (weights * member_affinity).sum(axis=0)
        logits = (
            group_score / config.group_temperature
            + config.group_popularity_weight * log_pop
        )
        probabilities = _softmax(logits)
        items = rng.choice(num_items, size=count, replace=False, p=probabilities)
        edges.update((group_id, int(item)) for item in items)
    return np.array(sorted(edges), dtype=np.int64)


def _softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)
