"""Timestamps and temporal splitting.

The paper's random 80/20 split is the standard offline protocol, but
the group-extraction rule behind the datasets is inherently temporal
("users ... attend the same event at the same time").  This module
attaches synthetic timestamps to a dataset's interactions and provides
a leave-latest-out split: train on the past, test on the future — the
deployment-faithful protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import GroupRecommendationDataset
from repro.data.splits import DataSplit
from repro.utils import RngLike, ensure_rng


@dataclass(frozen=True)
class InteractionTimestamps:
    """Per-edge timestamps aligned with a dataset's edge lists."""

    user_item: np.ndarray  # (E_u,) float days
    group_item: np.ndarray  # (E_g,) float days

    def validate_against(self, dataset: GroupRecommendationDataset) -> None:
        if len(self.user_item) != len(dataset.user_item):
            raise ValueError(
                f"user-item timestamp count {len(self.user_item)} != "
                f"edge count {len(dataset.user_item)}"
            )
        if len(self.group_item) != len(dataset.group_item):
            raise ValueError(
                f"group-item timestamp count {len(self.group_item)} != "
                f"edge count {len(dataset.group_item)}"
            )


def attach_timestamps(
    dataset: GroupRecommendationDataset,
    horizon_days: float = 365.0,
    recency_bias: float = 1.5,
    rng: RngLike = None,
) -> InteractionTimestamps:
    """Synthesize plausible interaction times.

    Activity grows over the observation window (``recency_bias`` > 1
    skews mass toward the end, as platforms grow); items additionally
    get an "event window" so interactions with the same item cluster in
    time — the property the group-extraction rule exploits.
    """
    if horizon_days <= 0:
        raise ValueError("horizon_days must be positive")
    if recency_bias <= 0:
        raise ValueError("recency_bias must be positive")
    generator = ensure_rng(rng)
    # Each item's activity is centred somewhere in the horizon.
    centres = (
        generator.beta(recency_bias, 1.0, size=dataset.num_items) * horizon_days
    )
    spread = horizon_days * 0.05

    def times_for(edges: np.ndarray) -> np.ndarray:
        if len(edges) == 0:
            return np.empty(0)
        raw = centres[edges[:, 1]] + generator.normal(0.0, spread, size=len(edges))
        return np.clip(raw, 0.0, horizon_days)

    return InteractionTimestamps(
        user_item=times_for(dataset.user_item),
        group_item=times_for(dataset.group_item),
    )


def temporal_split(
    dataset: GroupRecommendationDataset,
    timestamps: InteractionTimestamps,
    train_fraction: float = 0.8,
    validation_fraction: float = 0.1,
) -> DataSplit:
    """Chronological split: oldest interactions train, newest test.

    The validation share is the most recent slice *of the training
    portion*, mirroring :func:`repro.data.splits.split_interactions`.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in [0, 1)")
    timestamps.validate_against(dataset)

    user_parts = _chronological_parts(
        dataset.user_item, timestamps.user_item, train_fraction, validation_fraction
    )
    group_parts = _chronological_parts(
        dataset.group_item, timestamps.group_item, train_fraction, validation_fraction
    )
    train = dataset.with_interactions(
        user_parts[0], group_parts[0], name=f"{dataset.name}-train"
    )
    validation = dataset.with_interactions(
        user_parts[1], group_parts[1], name=f"{dataset.name}-valid"
    )
    test = dataset.with_interactions(
        user_parts[2], group_parts[2], name=f"{dataset.name}-test"
    )
    return DataSplit(train=train, validation=validation, test=test)


def _chronological_parts(
    edges: np.ndarray,
    times: np.ndarray,
    train_fraction: float,
    validation_fraction: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    order = np.argsort(times, kind="stable")
    count = len(order)
    train_count = int(round(count * train_fraction))
    valid_count = int(round(train_count * validation_fraction))
    train_ids = order[: train_count - valid_count]
    valid_ids = order[train_count - valid_count : train_count]
    test_ids = order[train_count:]
    return edges[train_ids], edges[valid_ids], edges[test_ids]
