"""Dataset (de)serialization to a single ``.npz`` archive.

Group member lists are ragged; they are stored as a flat concatenation
plus offsets, the standard CSR trick.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.data.dataset import GroupRecommendationDataset

PathLike = Union[str, Path]


def save_dataset(dataset: GroupRecommendationDataset, path: PathLike) -> None:
    """Write ``dataset`` to ``path`` (``.npz``)."""
    sizes = dataset.group_sizes()
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    flat_members = (
        np.concatenate(dataset.group_members)
        if dataset.group_members
        else np.empty(0, dtype=np.int64)
    )
    np.savez_compressed(
        Path(path),
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        num_groups=dataset.num_groups,
        user_item=dataset.user_item,
        group_item=dataset.group_item,
        social=dataset.social,
        member_offsets=offsets,
        member_flat=flat_members,
        name=np.array(dataset.name),
    )


def load_dataset(path: PathLike) -> GroupRecommendationDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        offsets = archive["member_offsets"]
        flat = archive["member_flat"]
        members = [
            flat[start:stop] for start, stop in zip(offsets[:-1], offsets[1:])
        ]
        return GroupRecommendationDataset(
            num_users=int(archive["num_users"]),
            num_items=int(archive["num_items"]),
            num_groups=int(archive["num_groups"]),
            user_item=archive["user_item"],
            group_item=archive["group_item"],
            social=archive["social"],
            group_members=members,
            name=str(archive["name"]),
        )
