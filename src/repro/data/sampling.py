"""Negative sampling for BPR-style pair-wise training.

The paper samples, for each positive (user, item) or (group, item)
example, ``N`` random items unobserved for that user/group (Eq. 21 /
Eq. 24 and the Training Method paragraph).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set

import numpy as np

from repro.utils import RngLike, ensure_rng


class NegativeSampler:
    """Uniform negative sampler with rejection against observed items."""

    def __init__(
        self,
        interacted: Sequence[Set[int]],
        num_items: int,
        rng: RngLike = None,
    ) -> None:
        if num_items <= 1:
            raise ValueError("need at least two items to sample negatives")
        self.interacted = interacted
        self.num_items = num_items
        self._rng = ensure_rng(rng)

    def sample(self, entity: int, count: int) -> np.ndarray:
        """Draw ``count`` items not interacted with by ``entity``."""
        seen = self.interacted[entity]
        if len(seen) >= self.num_items:
            raise ValueError(f"entity {entity} has interacted with every item")
        negatives = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            draw = self._rng.integers(0, self.num_items, size=count - filled)
            fresh = [int(item) for item in draw if int(item) not in seen]
            take = min(len(fresh), count - filled)
            negatives[filled : filled + take] = fresh[:take]
            filled += take
        return negatives

    def sample_many(self, entities: np.ndarray, count: int) -> np.ndarray:
        """Vectorised helper: (len(entities), count) negatives."""
        return np.stack([self.sample(int(entity), count) for entity in entities])


def bpr_triple_batches(
    edges: np.ndarray,
    sampler: NegativeSampler,
    batch_size: int = 256,
    negatives_per_positive: int = 1,
    rng: RngLike = None,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield (entity, positive, negative) batches for one epoch.

    Each positive edge is replicated ``negatives_per_positive`` times,
    once per sampled negative, matching the paper's parameter ``N``.
    """
    if len(edges) == 0:
        return
    generator = ensure_rng(rng)
    order = generator.permutation(len(edges))
    for start in range(0, len(order), batch_size):
        batch = edges[order[start : start + batch_size]]
        entities = np.repeat(batch[:, 0], negatives_per_positive)
        positives = np.repeat(batch[:, 1], negatives_per_positive)
        negatives = sampler.sample_many(batch[:, 0], negatives_per_positive).reshape(-1)
        yield entities, positives, negatives


def sample_evaluation_candidates(
    entity: int,
    interacted: Sequence[Set[int]],
    num_items: int,
    num_candidates: int = 100,
    rng: RngLike = None,
) -> np.ndarray:
    """Sample the paper's 100 never-interacted candidate items.

    Used by the ranking protocol of Section III-C: the positive test
    item is ranked against these candidates.
    """
    generator = ensure_rng(rng)
    seen = interacted[entity]
    available = num_items - len(seen)
    if available <= 0:
        raise ValueError(f"entity {entity} has no unseen items left")
    count = min(num_candidates, available)
    candidates: List[int] = []
    chosen: Set[int] = set()
    while len(candidates) < count:
        draw = generator.integers(0, num_items, size=count - len(candidates))
        for item in draw:
            item = int(item)
            if item not in seen and item not in chosen:
                candidates.append(item)
                chosen.add(item)
    return np.array(candidates, dtype=np.int64)
