"""Datasets: containers, synthetic worlds, splits, sampling, batching."""

from repro.data.dataset import GroupRecommendationDataset
from repro.data.io import load_dataset, save_dataset
from repro.data.loaders import (
    GroupBatch,
    GroupBatcher,
    TopNeighbours,
    build_top_neighbours,
)
from repro.data.real import FormatError, load_agree_format
from repro.data.presets import (
    douban_like,
    douban_like_config,
    yelp_like,
    yelp_like_config,
)
from repro.data.sampling import (
    NegativeSampler,
    bpr_triple_batches,
    sample_evaluation_candidates,
)
from repro.data.splits import DataSplit, split_interactions
from repro.data.stats import format_table1, table1_statistics
from repro.data.synthetic import SyntheticConfig, SyntheticWorld, generate
from repro.data.temporal import (
    InteractionTimestamps,
    attach_timestamps,
    temporal_split,
)

__all__ = [
    "GroupRecommendationDataset",
    "SyntheticConfig",
    "SyntheticWorld",
    "generate",
    "yelp_like",
    "douban_like",
    "yelp_like_config",
    "douban_like_config",
    "DataSplit",
    "split_interactions",
    "NegativeSampler",
    "bpr_triple_batches",
    "sample_evaluation_candidates",
    "GroupBatch",
    "GroupBatcher",
    "TopNeighbours",
    "build_top_neighbours",
    "table1_statistics",
    "format_table1",
    "save_dataset",
    "load_dataset",
    "load_agree_format",
    "FormatError",
    "InteractionTimestamps",
    "attach_timestamps",
    "temporal_split",
]
