"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLOSpec` states an objective over one time series — "p99
request latency stays under 50ms", "error rate stays under 1%", "cache
hit-rate stays above 60%" — plus an **error budget**: the fraction of
samples allowed to breach the target before the objective is
considered violated.

Evaluation follows the SRE multi-window burn-rate pattern: for each
configured window, the *burn rate* is the observed breach fraction
divided by the budget (1.0 = burning the budget exactly as fast as
allowed).  An alert fires only when **every** window burns at or above
``burn_threshold`` — the short window proves the problem is happening
*now*, the long window proves it is not a blip — and clears with a
recovery event once any window drops back under.  Alerts are
transition-based through the shared :class:`~repro.obs.alerts.AlertLog`,
so a monitor evaluated in a tight loop raises exactly one breach event
per incident.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.alerts import SEVERITIES, AlertLog
from repro.obs.timeseries import TimeSeriesStore

DIRECTIONS = ("above", "below")


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over a stored time series.

    Attributes
    ----------
    name:
        Alert source identifier, unique within a monitor.
    series:
        :class:`~repro.obs.timeseries.TimeSeriesStore` series to watch
        (e.g. ``"router.request.p99"``, ``"engine.hit_rate"``).
    threshold:
        Target boundary for one sample.
    direction:
        ``"above"``: a sample breaches when value > threshold (latency,
        error rate).  ``"below"``: breaches when value < threshold
        (hit-rate floors, throughput floors).
    budget:
        Allowed breaching fraction per window, in (0, 1].
    windows:
        Trailing evaluation windows in seconds, shortest first.
    burn_threshold:
        Minimum burn rate that must hold in *every* window to alert.
    min_samples:
        Windows with fewer points than this are treated as not burning
        (no data is not an outage).
    severity:
        Alert severity (``info`` / ``warn`` / ``page``).
    """

    name: str
    series: str
    threshold: float
    direction: str = "above"
    budget: float = 0.1
    windows: Tuple[float, ...] = (30.0, 120.0)
    burn_threshold: float = 1.0
    min_samples: int = 3
    severity: str = "page"
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"unknown direction '{self.direction}' (choose from {DIRECTIONS})"
            )
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {self.budget}")
        if not self.windows:
            raise ValueError("windows must be non-empty")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity '{self.severity}' (choose from {SEVERITIES})"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")

    def breaches(self, value: float) -> bool:
        if self.direction == "above":
            return value > self.threshold
        return value < self.threshold


@dataclass
class SLOStatus:
    """One evaluation result for one spec (JSON-ready via ``as_dict``)."""

    spec: SLOSpec
    burning: bool
    burn_rates: Dict[float, Optional[float]]
    latest: Optional[float]
    samples: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.spec.name,
            "series": self.spec.series,
            "threshold": self.spec.threshold,
            "direction": self.spec.direction,
            "budget": self.spec.budget,
            "burn_threshold": self.spec.burn_threshold,
            "severity": self.spec.severity,
            "burning": self.burning,
            "burn_rates": {
                str(window): rate for window, rate in self.burn_rates.items()
            },
            "latest": self.latest,
            "samples": self.samples,
        }


@dataclass
class SLOMonitor:
    """Evaluate a set of :class:`SLOSpec` against a series store."""

    store: TimeSeriesStore
    specs: Sequence[SLOSpec]
    alerts: AlertLog = field(default_factory=AlertLog)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO spec names in {names}")
        self._burning: Dict[str, bool] = {name: False for name in names}

    def evaluate(self, now: Optional[float] = None) -> List[SLOStatus]:
        """One evaluation pass; emits transition alerts as a side effect."""
        now = time.time() if now is None else float(now)
        statuses = []
        for spec in self.specs:
            status = self._evaluate_spec(spec, now)
            statuses.append(status)
            was_burning = self._burning[spec.name]
            if status.burning and not was_burning:
                self.alerts.emit(
                    "slo_breach",
                    spec.name,
                    spec.severity,
                    f"SLO '{spec.name}' burning: {spec.series} "
                    f"{spec.direction} {spec.threshold} beyond budget "
                    f"{spec.budget} in all windows {list(spec.windows)}",
                    ts=now,
                    series=spec.series,
                    latest=status.latest,
                    burn_rates=status.as_dict()["burn_rates"],
                )
            elif was_burning and not status.burning:
                self.alerts.emit(
                    "slo_recovered",
                    spec.name,
                    "info",
                    f"SLO '{spec.name}' recovered",
                    ts=now,
                    series=spec.series,
                    latest=status.latest,
                )
            self._burning[spec.name] = status.burning
        return statuses

    def _evaluate_spec(self, spec: SLOSpec, now: float) -> SLOStatus:
        burn_rates: Dict[float, Optional[float]] = {}
        burning = True
        samples = 0
        for window in spec.windows:
            points = self.store.window(spec.series, window, now)
            samples = max(samples, len(points))
            if len(points) < spec.min_samples:
                burn_rates[window] = None
                burning = False
                continue
            breaching = sum(1 for __, value in points if spec.breaches(value))
            rate = (breaching / len(points)) / spec.budget
            burn_rates[window] = rate
            if rate < spec.burn_threshold:
                burning = False
        return SLOStatus(
            spec=spec,
            burning=burning,
            burn_rates=burn_rates,
            latest=self.store.latest(spec.series),
            samples=samples,
        )

    def payload(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Evaluate and return a JSON-friendly status block."""
        statuses = self.evaluate(now)
        return {
            "specs": len(statuses),
            "burning": sum(1 for status in statuses if status.burning),
            "status": [status.as_dict() for status in statuses],
        }
