"""The unified JSON report envelope every observability surface emits.

Profiles (``repro profile``), training run metrics (``RunMetrics``) and
the serving engine's telemetry snapshot all serialize as the same
top-level shape, so downstream tooling (dashboards, CI artifact diffing,
the bench trajectory files) can dispatch on ``kind`` without per-source
parsing::

    {
      "schema": "repro.obs/v1",
      "kind": "op_profile" | "training_run" | "serving_telemetry" | ...,
      "meta": {...},     # producer-specific context (world, config, host)
      "data": {...}      # the payload
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Bump when the envelope itself (not a payload) changes shape.
REPORT_SCHEMA = "repro.obs/v1"


def make_report(
    kind: str,
    data: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Wrap ``data`` in the standard observability envelope."""
    if not kind:
        raise ValueError("report kind must be a non-empty string")
    return {
        "schema": REPORT_SCHEMA,
        "kind": kind,
        "meta": dict(meta or {}),
        "data": data,
    }


def make_serving_report(
    telemetry: Optional[Any] = None,
    registry: Optional[Any] = None,
    tracer: Optional[Any] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One ``kind="serving"`` envelope for the whole serving surface.

    Bundles whichever serving observability sources exist — the
    engine's :class:`~repro.engine.telemetry.Telemetry` snapshot, a
    :class:`~repro.obs.metrics_registry.MetricsRegistry` payload plus
    its Prometheus exposition, and a
    :class:`~repro.obs.spans.Tracer` sampling summary — so one artifact
    answers "what did this worker serve and how" without stitching
    three files.  Omitted sources simply leave their section out.
    """
    data: Dict[str, Any] = {}
    if telemetry is not None:
        data["telemetry"] = telemetry.snapshot()
    if registry is not None:
        data["metrics"] = registry.payload()
        data["exposition"] = registry.exposition()
    if tracer is not None:
        data["spans"] = tracer.summary()
    return make_report("serving", data, meta=meta)


def is_report(obj: Any) -> bool:
    """Cheap structural check used by tests and artifact consumers."""
    return (
        isinstance(obj, dict)
        and obj.get("schema") == REPORT_SCHEMA
        and isinstance(obj.get("kind"), str)
        and isinstance(obj.get("meta"), dict)
        and isinstance(obj.get("data"), dict)
    )


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a report as stable, human-diffable JSON."""
    if not is_report(report):
        raise ValueError("not a repro.obs report envelope")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
