"""Bounded in-memory time series over metric snapshots.

:class:`TimeSeriesStore` is the bridge between the instantaneous
metrics world (:class:`~repro.obs.metrics_registry.MetricsRegistry`:
"what is the p99 *right now*") and the windowed questions SLOs and
drift detectors ask ("what fraction of the last 5 minutes breached the
target", "is the hit-rate trending down").  Each named series is a
ring buffer of ``(timestamp, value)`` points; :meth:`sample_registry`
scrapes a registry into one point per instrument — gauges and counters
by value, histograms fanned out into ``.count``/``.mean``/``.p50``/
``.p99``/``.max`` sub-series — so one periodic call builds the whole
series set the monitors consume.

Memory is strictly bounded: ``max_samples`` points per series,
``max_series`` series; everything older falls off the ring.  All
methods are thread-safe (sampling happens on whatever thread runs the
monitor loop while request threads keep writing the registry).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics_registry import MetricsRegistry

#: Histogram summary keys fanned out as ``<name>.<key>`` sub-series.
HISTOGRAM_KEYS = ("count", "mean", "p50", "p99", "max")

Point = Tuple[float, float]


class TimeSeriesStore:
    """Named ring buffers of timestamped samples."""

    def __init__(self, max_samples: int = 1024, max_series: int = 512) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        if max_series < 1:
            raise ValueError(f"max_series must be >= 1, got {max_series}")
        self.max_samples = max_samples
        self.max_series = max_series
        self._lock = threading.Lock()
        self._series: Dict[str, Deque[Point]] = {}
        self._dropped_series = 0

    # -- writing ---------------------------------------------------------

    def record(self, name: str, value: float, ts: Optional[float] = None) -> None:
        """Append one point; NaN values are dropped, not stored."""
        value = float(value)
        if math.isnan(value):
            return
        ts = time.time() if ts is None else float(ts)
        with self._lock:
            series = self._series.get(name)
            if series is None:
                if len(self._series) >= self.max_series:
                    self._dropped_series += 1
                    return
                series = self._series[name] = deque(maxlen=self.max_samples)
            series.append((ts, value))

    def sample_registry(
        self,
        registry: MetricsRegistry,
        ts: Optional[float] = None,
        prefix: str = "",
    ) -> int:
        """Scrape every instrument of ``registry`` as one point each.

        Returns the number of points recorded.  ``prefix`` namespaces
        the series (e.g. ``"fleet."``) so several registries can feed
        one store without collisions.
        """
        ts = time.time() if ts is None else float(ts)
        points = 0
        for name, counter in registry.counters().items():
            self.record(prefix + name, float(counter.value), ts)
            points += 1
        for name, gauge in registry.gauges().items():
            self.record(prefix + name, float(gauge.value), ts)
            points += 1
        for name, histogram in registry.histograms().items():
            summary = histogram.summary()
            for key in HISTOGRAM_KEYS:
                self.record(f"{prefix}{name}.{key}", float(summary[key]), ts)
                points += 1
        return points

    # -- reading ---------------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def points(self, name: str) -> List[Point]:
        with self._lock:
            series = self._series.get(name)
            return [] if series is None else list(series)

    def latest(self, name: str) -> Optional[float]:
        with self._lock:
            series = self._series.get(name)
            return None if not series else series[-1][1]

    def window(
        self, name: str, seconds: float, now: Optional[float] = None
    ) -> List[Point]:
        """Points of ``name`` within the trailing ``seconds``."""
        now = time.time() if now is None else float(now)
        cutoff = now - float(seconds)
        return [(ts, value) for ts, value in self.points(name) if ts >= cutoff]

    def delta(
        self, name: str, seconds: float, now: Optional[float] = None
    ) -> Optional[float]:
        """last - first over the trailing window (None under 2 points).

        The windowed increase of a cumulative counter series; may be
        negative if the underlying process restarted its counters.
        """
        points = self.window(name, seconds, now)
        if len(points) < 2:
            return None
        return points[-1][1] - points[0][1]

    def rate(
        self, name: str, seconds: float, now: Optional[float] = None
    ) -> Optional[float]:
        """Windowed increase per second (None under 2 distinct times)."""
        points = self.window(name, seconds, now)
        if len(points) < 2:
            return None
        elapsed = points[-1][0] - points[0][0]
        if elapsed <= 0:
            return None
        return (points[-1][1] - points[0][1]) / elapsed

    # -- export ----------------------------------------------------------

    def payload(self, last: Optional[int] = None) -> Dict[str, Any]:
        """JSON-friendly dump: every series' (up to ``last``) points."""
        with self._lock:
            series = {name: list(points) for name, points in self._series.items()}
            dropped = self._dropped_series
        if last is not None:
            series = {name: points[-last:] for name, points in series.items()}
        return {
            "max_samples": self.max_samples,
            "dropped_series": dropped,
            "series": {
                name: [[ts, value] for ts, value in points]
                for name, points in sorted(series.items())
            },
        }
