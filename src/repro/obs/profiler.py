"""Autograd op profiler: per-op wall time, bytes, FLOPs, module scopes.

The profiler is context-manager activated and works by *patching the
classes* — ``Tensor``'s op methods and ``Module.__call__`` are replaced
with timing wrappers on ``__enter__`` and restored on ``__exit__``.
When no profiler is active the original methods are bound, so disabled
overhead is exactly zero: no flag checks on the op hot path, no wrapper
frames, nothing.

Profiling never touches tensor *data*: wrappers call the original
implementation with unmodified arguments and only record timestamps and
shapes, so a profiled training run produces bit-identical weights to an
unprofiled one (asserted by ``tests/obs``).

Usage::

    from repro.obs import OpProfiler, attach_scopes

    attach_scopes(model, root="groupsa")   # qualified module scope names
    with OpProfiler() as prof:
        with prof.scope("train"):
            fit_groupsa(model, split, batcher, training)
    print(format_top_table(prof.stats()))
    write_chrome_trace(prof, "trace.json")

Single-process, single-thread instrumentation: the patches are global
to the interpreter, so do not run concurrent model work (for example,
the serving engine's worker thread) inside a profiling block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from contextlib import contextmanager

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.obs.flops import estimate_backward_flops, estimate_flops

#: ``Tensor`` instance methods to instrument, mapped to profiler op
#: names.  ``mean``/``var``/``log_sigmoid`` are deliberately absent:
#: they are pure compositions of ops below, which would double-count
#: time and FLOPs in aggregate views.
_METHOD_OPS: Dict[str, str] = {
    "__add__": "add",
    "__sub__": "sub",
    "__mul__": "mul",
    "__truediv__": "div",
    "__neg__": "neg",
    "__pow__": "pow",
    "__matmul__": "matmul",
    "exp": "exp",
    "log": "log",
    "sqrt": "sqrt",
    "sigmoid": "sigmoid",
    "tanh": "tanh",
    "relu": "relu",
    "softplus": "softplus",
    "sum": "sum",
    "max": "max",
    "reshape": "reshape",
    "transpose": "transpose",
    "permute": "permute",
    "__getitem__": "gather",
    "softmax": "softmax",
    "log_softmax": "log_softmax",
    "broadcast_to": "broadcast_to",
}

#: ``Tensor`` staticmethods (the class-attribute implementations behind
#: the module-level ``concatenate``/``stack``/``where`` functions and
#: the fused kernels in ``repro.autograd.fused``).
_STATIC_OPS: Dict[str, str] = {
    "_concatenate": "concatenate",
    "_stack": "stack",
    "_where": "where",
    "_fused_linear_relu": "linear_relu",
    "_fused_masked_attention": "masked_attention",
    "_fused_pairwise_logits": "pairwise_logits",
}

#: Default cap on retained per-call events (aggregated stats stay exact
#: beyond it; the Chrome trace simply truncates).
DEFAULT_MAX_EVENTS = 1_000_000

_ACTIVE: Optional["OpProfiler"] = None


def get_active_profiler() -> Optional["OpProfiler"]:
    """The profiler currently patched in, if any."""
    return _ACTIVE


@dataclass
class OpEvent:
    """One recorded op call (or backward closure, or module scope)."""

    __slots__ = ("name", "cat", "scope", "start", "duration", "self_time",
                 "bytes_in", "bytes_out", "flops")

    name: str
    cat: str  # "op" | "backward" | "scope"
    scope: str
    start: float
    duration: float
    self_time: float
    bytes_in: int
    bytes_out: int
    flops: int


@dataclass
class OpStat:
    """Aggregate over all calls of one op within one scope."""

    name: str
    cat: str
    scope: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0
    flops: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "op": self.name,
            "cat": self.cat,
            "scope": self.scope,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "flops": self.flops,
        }


class OpProfiler:
    """Records every autograd op executed while the context is active.

    Parameters
    ----------
    record_backward:
        Also time each op's backward closure (attributed to the scope
        the op was *created* in, which is where its forward ran).
    record_events:
        Keep the per-call event list needed for Chrome trace export.
        Aggregated :meth:`stats` work either way.
    max_events:
        Retention cap for the event list; beyond it, calls still
        aggregate but individual events are dropped (``dropped_events``
        counts them).
    """

    def __init__(
        self,
        record_backward: bool = True,
        record_events: bool = True,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.record_backward = record_backward
        self.record_events = record_events
        self.max_events = max_events
        self.events: List[OpEvent] = []
        self.dropped_events = 0
        self._aggregate: Dict[Tuple[str, str, str], OpStat] = {}
        self._scope_stack: List[str] = []
        self._frames: List[List[float]] = []
        self._saved: Dict[str, Any] = {}
        self._saved_call: Optional[Callable] = None
        self._active = False
        self._entered_at = 0.0
        self._exited_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Activation (class patching)
    # ------------------------------------------------------------------

    def __enter__(self) -> "OpProfiler":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("an OpProfiler is already active; profilers do not nest")
        _ACTIVE = self
        self._active = True
        self._entered_at = time.perf_counter()
        for attr, op_name in _METHOD_OPS.items():
            original = getattr(Tensor, attr)
            self._saved[attr] = original
            setattr(Tensor, attr, self._wrap_method(op_name, original))
        for attr, op_name in _STATIC_OPS.items():
            original = getattr(Tensor, attr)
            self._saved[attr] = original
            setattr(Tensor, attr, staticmethod(self._wrap_static(op_name, original)))
        self._saved_call = Module.__call__
        profiler = self

        def profiled_call(module: Module, *args: Any, **kwargs: Any) -> Any:
            with profiler.scope(module.scope_name()):
                return module.forward(*args, **kwargs)

        Module.__call__ = profiled_call
        return self

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE
        for attr, original in self._saved.items():
            if attr in _STATIC_OPS:
                setattr(Tensor, attr, staticmethod(original))
            else:
                setattr(Tensor, attr, original)
        Module.__call__ = self._saved_call
        self._saved.clear()
        self._saved_call = None
        self._active = False
        self._exited_at = time.perf_counter()
        _ACTIVE = None

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------

    @property
    def current_scope(self) -> str:
        return self._scope_stack[-1] if self._scope_stack else ""

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Attribute ops executed inside the block to ``name``.

        Module forwards enter scopes automatically while profiling;
        use this directly to label phases (``train``, ``forward``).
        """
        self._scope_stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            self._scope_stack.pop()
            self._record("scope:" + name, "scope", self.current_scope,
                         start, duration, duration, 0, 0, 0)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _record(
        self,
        name: str,
        cat: str,
        scope: str,
        start: float,
        duration: float,
        self_time: float,
        bytes_in: int,
        bytes_out: int,
        flops: int,
    ) -> None:
        key = (name, cat, scope)
        stat = self._aggregate.get(key)
        if stat is None:
            stat = self._aggregate[key] = OpStat(name=name, cat=cat, scope=scope)
        stat.calls += 1
        stat.total_s += duration
        stat.self_s += self_time
        stat.bytes_in += bytes_in
        stat.bytes_out += bytes_out
        stat.flops += flops
        if not self.record_events:
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(OpEvent(name, cat, scope, start, duration,
                                   self_time, bytes_in, bytes_out, flops))

    def _run(
        self,
        name: str,
        fn: Callable[[], Tensor],
        operands: Tuple[Tensor, ...],
    ) -> Tensor:
        scope = self.current_scope
        frame = [0.0]
        self._frames.append(frame)
        start = time.perf_counter()
        try:
            out = fn()
        finally:
            duration = time.perf_counter() - start
            self._frames.pop()
            if self._frames:
                self._frames[-1][0] += duration
        bytes_in = sum(t.data.nbytes for t in operands)
        shapes = tuple(t.shape for t in operands)
        # Fused attention ops return (output, weights); the first
        # element carries the graph node and is what we account for.
        primary = out[0] if isinstance(out, tuple) and out else out
        if isinstance(primary, Tensor):
            bytes_out = primary.data.nbytes
            flops = estimate_flops(name, shapes, primary.shape)
            if self.record_backward and primary._backward is not None:
                primary._backward = self._wrap_backward(
                    name, scope, primary._backward, shapes,
                    bytes_in, bytes_out, primary.shape,
                )
        else:  # pragma: no cover - every instrumented op returns a Tensor
            bytes_out = 0
            flops = 0
        self._record(name, "op", scope, start, duration,
                     duration - frame[0], bytes_in, bytes_out, flops)
        return out

    def _wrap_method(self, name: str, original: Callable) -> Callable:
        profiler = self

        def wrapper(tensor: Tensor, *args: Any, **kwargs: Any) -> Tensor:
            operands = (tensor,) + tuple(a for a in args if isinstance(a, Tensor))
            return profiler._run(name, lambda: original(tensor, *args, **kwargs), operands)

        wrapper.__name__ = getattr(original, "__name__", name)
        return wrapper

    def _wrap_static(self, name: str, original: Callable) -> Callable:
        profiler = self

        def wrapper(*args: Any, **kwargs: Any) -> Tensor:
            # concatenate/stack take an iterable of tensors which may be
            # a generator: materialize it once so it can be both counted
            # and consumed.
            norm: List[Any] = []
            operands: List[Tensor] = []
            for arg in args:
                if isinstance(arg, Tensor):
                    operands.append(arg)
                elif not isinstance(arg, (int, float, str, bytes)) and hasattr(arg, "__iter__") and not hasattr(arg, "shape"):
                    arg = list(arg)
                    operands.extend(t for t in arg if isinstance(t, Tensor))
                norm.append(arg)
            return profiler._run(name, lambda: original(*norm, **kwargs), tuple(operands))

        wrapper.__name__ = getattr(original, "__name__", name)
        return wrapper

    def _wrap_backward(
        self,
        name: str,
        scope: str,
        fn: Callable[[Any], None],
        operand_shapes: Tuple[Tuple[int, ...], ...] = (),
        fwd_bytes_in: int = 0,
        fwd_bytes_out: int = 0,
        out_shape: Optional[Tuple[int, ...]] = None,
    ) -> Callable[[Any], None]:
        profiler = self
        # The closure reads the incoming gradient (the forward's output
        # size) plus the saved operands, and writes one gradient per
        # operand — estimated once here from the forward shapes.
        bwd_flops = estimate_backward_flops(name, operand_shapes, out_shape)
        bwd_bytes_in = fwd_bytes_out + fwd_bytes_in
        bwd_bytes_out = fwd_bytes_in

        def timed_backward(grad: Any) -> None:
            if not profiler._active:
                # The graph outlived the profiling block; run untimed.
                fn(grad)
                return
            frame = [0.0]
            profiler._frames.append(frame)
            start = time.perf_counter()
            try:
                fn(grad)
            finally:
                duration = time.perf_counter() - start
                profiler._frames.pop()
                if profiler._frames:
                    profiler._frames[-1][0] += duration
                profiler._record(name, "backward", scope, start, duration,
                                 duration - frame[0], bwd_bytes_in,
                                 bwd_bytes_out, bwd_flops)

        return timed_backward

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def stats(self, include_scopes: bool = False) -> List[OpStat]:
        """Aggregated per-(op, scope) statistics, busiest self-time first."""
        rows = [
            stat for stat in self._aggregate.values()
            if include_scopes or stat.cat != "scope"
        ]
        rows.sort(key=lambda s: s.self_s, reverse=True)
        return rows

    def totals(self) -> Dict[str, Any]:
        """Whole-run roll-up used by reports and the bench trajectory."""
        forward = [s for s in self._aggregate.values() if s.cat == "op"]
        backward = [s for s in self._aggregate.values() if s.cat == "backward"]
        end = self._exited_at if self._exited_at is not None else time.perf_counter()
        return {
            "wall_s": end - self._entered_at,
            "op_calls": sum(s.calls for s in forward),
            "op_time_s": sum(s.self_s for s in forward),
            "backward_calls": sum(s.calls for s in backward),
            "backward_time_s": sum(s.self_s for s in backward),
            "flops": sum(s.flops for s in forward),
            "bytes_in": sum(s.bytes_in for s in forward),
            "bytes_out": sum(s.bytes_out for s in forward),
            "dropped_events": self.dropped_events,
        }


def attach_scopes(model: Module, root: str = "model") -> Module:
    """Give every submodule its qualified attribute path as scope name.

    After this, profiled ops are attributed to scopes like
    ``groupsa.voting.layers.0.attention`` instead of bare class names.
    Returns the model for chaining.
    """
    for name, module in model.named_modules():
        module.set_scope_name(root if not name else f"{root}.{name}")
    return model
