"""Gradient health checks: NaN / Inf / vanishing gradient detection.

Attach a :class:`GradientHealthMonitor` to a trainer (via
``fit_groupsa(..., grad_monitor=...)`` or ``trainer.grad_monitor``) and
it inspects every parameter gradient after each backward pass, *before*
the optimizer consumes it — so a poisoned update is caught at the step
that produced it, not epochs later as a NaN loss.

Each anomaly class has a configurable action: ``"raise"`` (abort the
run with :class:`GradientHealthError`), ``"warn"`` (emit a
``RuntimeWarning`` and keep going) or ``"ignore"``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

import numpy as np

from repro.autograd.sparse import RowSparseGrad

_ACTIONS = ("raise", "warn", "ignore")


class GradientHealthError(RuntimeError):
    """Raised when a monitored gradient fails a health check."""


@dataclass(frozen=True)
class GradIssue:
    """One detected anomaly for one parameter at one check."""

    kind: str  # "nan" | "inf" | "vanishing"
    parameter: str
    value: float  # max |grad| observed (nan/inf for non-finite kinds)
    context: str

    def describe(self) -> str:
        return (
            f"{self.kind} gradient in '{self.parameter}' "
            f"(max |g| = {self.value:g}){' during ' + self.context if self.context else ''}"
        )


class GradientHealthMonitor:
    """Flags non-finite and vanishing gradients.

    Parameters
    ----------
    on_nonfinite:
        Action for NaN/Inf gradients (default ``"raise"`` — a
        non-finite gradient irreversibly poisons Adam's moments).
    on_vanishing:
        Action for vanishing gradients (default ``"warn"``).
    vanish_threshold:
        A gradient whose max \\|g\\| is *strictly below* this is
        "vanishing".  The default 0.0 disables the check (parameters
        outside the current task's graph legitimately get no signal);
        set e.g. ``1e-10`` to enable.
    """

    def __init__(
        self,
        on_nonfinite: str = "raise",
        on_vanishing: str = "warn",
        vanish_threshold: float = 0.0,
    ) -> None:
        for action in (on_nonfinite, on_vanishing):
            if action not in _ACTIONS:
                raise ValueError(f"action must be one of {_ACTIONS}, got {action!r}")
        if vanish_threshold < 0:
            raise ValueError("vanish_threshold must be non-negative")
        self.on_nonfinite = on_nonfinite
        self.on_vanishing = on_vanishing
        self.vanish_threshold = vanish_threshold
        self.checks = 0
        self.counts: Dict[str, int] = {"nan": 0, "inf": 0, "vanishing": 0}
        self.issues: List[GradIssue] = []

    def check(
        self,
        named_parameters: Iterable[Tuple[str, Any]],
        context: str = "",
    ) -> List[GradIssue]:
        """Inspect gradients; returns the issues found at this check.

        ``named_parameters`` yields ``(name, parameter)`` pairs (as from
        ``Module.named_parameters()``); parameters with ``grad is None``
        are skipped — absent is different from vanishing.
        """
        self.checks += 1
        found: List[GradIssue] = []
        for name, parameter in named_parameters:
            grad = getattr(parameter, "grad", None)
            if grad is None:
                continue
            if isinstance(grad, RowSparseGrad):
                # Inspect just the touched rows — the implicit rows are
                # exact zeros (finite by construction), so checking the
                # values is equivalent to checking the dense gradient
                # without materializing it.
                grad = grad.values
            if np.isnan(grad).any():
                found.append(GradIssue("nan", name, float("nan"), context))
                continue
            peak = float(np.abs(grad).max()) if grad.size else 0.0
            if np.isinf(peak):
                found.append(GradIssue("inf", name, peak, context))
            elif self.vanish_threshold > 0.0 and peak < self.vanish_threshold:
                found.append(GradIssue("vanishing", name, peak, context))
        for issue in found:
            self.counts[issue.kind] += 1
            self.issues.append(issue)
            action = (
                self.on_vanishing if issue.kind == "vanishing" else self.on_nonfinite
            )
            if action == "raise":
                raise GradientHealthError(issue.describe())
            if action == "warn":
                warnings.warn(issue.describe(), RuntimeWarning, stacklevel=2)
        return found

    def summary(self) -> Dict[str, Any]:
        """JSON-ready roll-up for run reports."""
        return {
            "checks": self.checks,
            "counts": dict(self.counts),
            "last_issues": [issue.describe() for issue in self.issues[-5:]],
        }
