"""FLOP estimates for autograd ops, keyed by profiler op name.

These are *estimates* in the conventional sense used by profiler
tooling: a fused multiply-add counts as 2 FLOPs, elementwise transcen-
dentals as a small constant per element, and pure data-movement ops
(reshape, transpose, gather, concatenate) as 0.  The point is relative
attribution — which matmul dominates a voting-layer forward — not
cycle-accurate accounting.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Per-output-element cost of elementwise / reduction ops.
_ELEMENTWISE_COST = {
    "add": 1,
    "sub": 1,
    "mul": 1,
    "div": 1,
    "neg": 1,
    "pow": 2,
    "exp": 1,
    "log": 1,
    "sqrt": 1,
    "sigmoid": 4,
    "tanh": 4,
    "relu": 1,
    "softplus": 4,
    "sum": 1,
    "mean": 1,
    "max": 1,
    "var": 3,
    # A stable softmax is max + subtract + exp + sum + divide.
    "softmax": 5,
    "log_softmax": 5,
    "where": 1,
}


def matmul_flops(a_shape: Tuple[int, ...], out_shape: Tuple[int, ...]) -> int:
    """FLOPs of ``a @ b`` given the left operand and output shapes.

    For ``(..., m, k) @ (..., k, n) -> (..., m, n)`` the count is
    ``2 * k`` per output element (k multiplies + k adds), summed over
    every batched output element — broadcasting is then handled for
    free by using the *output* batch dimensions.
    """
    k = a_shape[-1]
    out_elements = int(np.prod(out_shape)) if out_shape else 1
    return 2 * k * out_elements


def estimate_flops(
    name: str,
    operand_shapes: Tuple[Tuple[int, ...], ...],
    out_shape: Optional[Tuple[int, ...]],
) -> int:
    """Estimated forward FLOPs for one recorded op call.

    ``operand_shapes`` are the shapes of the Tensor operands in call
    order (the left matmul operand first); unknown ops cost 0.
    """
    if out_shape is None:
        return 0
    if name == "matmul":
        if not operand_shapes:
            return 0
        return matmul_flops(operand_shapes[0], out_shape)
    cost = _ELEMENTWISE_COST.get(name)
    if cost is None:
        return 0
    # Reductions touch every *input* element; elementwise ops write
    # every output element.  Use whichever is larger so both read
    # naturally (sum over an (N,) input is N FLOPs, broadcast add over
    # an (N, M) output is N*M).
    out_elements = int(np.prod(out_shape)) if out_shape else 1
    in_elements = max(
        (int(np.prod(shape)) if shape else 1 for shape in operand_shapes),
        default=out_elements,
    )
    return cost * max(out_elements, in_elements)
