"""FLOP estimates for autograd ops, keyed by profiler op name.

These are *estimates* in the conventional sense used by profiler
tooling: a fused multiply-add counts as 2 FLOPs, elementwise transcen-
dentals as a small constant per element, and pure data-movement ops
(reshape, transpose, gather, concatenate) as 0.  The point is relative
attribution — which matmul dominates a voting-layer forward — not
cycle-accurate accounting.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Per-output-element cost of elementwise / reduction ops.
_ELEMENTWISE_COST = {
    "add": 1,
    "sub": 1,
    "mul": 1,
    "div": 1,
    "neg": 1,
    "pow": 2,
    "exp": 1,
    "log": 1,
    "sqrt": 1,
    "sigmoid": 4,
    "tanh": 4,
    "relu": 1,
    "softplus": 4,
    "sum": 1,
    "mean": 1,
    "max": 1,
    "var": 3,
    # A stable softmax is max + subtract + exp + sum + divide.
    "softmax": 5,
    "log_softmax": 5,
    "where": 1,
}


def matmul_flops(a_shape: Tuple[int, ...], out_shape: Tuple[int, ...]) -> int:
    """FLOPs of ``a @ b`` given the left operand and output shapes.

    For ``(..., m, k) @ (..., k, n) -> (..., m, n)`` the count is
    ``2 * k`` per output element (k multiplies + k adds), summed over
    every batched output element — broadcasting is then handled for
    free by using the *output* batch dimensions.
    """
    k = a_shape[-1]
    out_elements = int(np.prod(out_shape)) if out_shape else 1
    return 2 * k * out_elements


def _elements(shape: Optional[Tuple[int, ...]]) -> int:
    if shape is None:
        return 0
    return int(np.prod(shape)) if shape else 1


def _fused_flops(
    name: str,
    operand_shapes: Tuple[Tuple[int, ...], ...],
    out_shape: Tuple[int, ...],
) -> Optional[int]:
    """Forward FLOPs of the fused ops, from their operand shapes."""
    if name == "linear_relu" and len(operand_shapes) >= 2:
        # matmul + bias add + relu mask/multiply.
        return matmul_flops(operand_shapes[0], out_shape) + 3 * _elements(out_shape)
    if name == "masked_attention" and len(operand_shapes) >= 3:
        q_shape, k_shape, v_shape = operand_shapes[:3]
        scores_shape = (*out_shape[:-1], k_shape[-2])
        scores = matmul_flops(q_shape, scores_shape)
        # scale + bias + stable softmax (max/sub/exp/sum/div).
        softmax = 7 * _elements(scores_shape)
        mix = matmul_flops(scores_shape, out_shape)
        return scores + softmax + mix
    if name == "pairwise_logits" and len(operand_shapes) >= 6:
        __, candidates, w1, __, w2, __ = operand_shapes[:6]
        batch, count = candidates[0], candidates[1]
        hidden_shape = (batch, count, w1[-1])
        joint_shape = (batch, count, w1[0])
        hidden = matmul_flops(joint_shape, hidden_shape) + 3 * _elements(hidden_shape)
        score_shape = (batch, count, w2[-1])
        score = matmul_flops(hidden_shape, score_shape) + _elements(score_shape)
        return hidden + score
    return None


def estimate_flops(
    name: str,
    operand_shapes: Tuple[Tuple[int, ...], ...],
    out_shape: Optional[Tuple[int, ...]],
) -> int:
    """Estimated forward FLOPs for one recorded op call.

    ``operand_shapes`` are the shapes of the Tensor operands in call
    order (the left matmul operand first); unknown ops cost 0.
    """
    if out_shape is None:
        return 0
    if name == "matmul":
        if not operand_shapes:
            return 0
        return matmul_flops(operand_shapes[0], out_shape)
    fused = _fused_flops(name, operand_shapes, out_shape)
    if fused is not None:
        return fused
    cost = _ELEMENTWISE_COST.get(name)
    if cost is None:
        return 0
    # Reductions touch every *input* element; elementwise ops write
    # every output element.  Use whichever is larger so both read
    # naturally (sum over an (N,) input is N FLOPs, broadcast add over
    # an (N, M) output is N*M).
    out_elements = _elements(out_shape)
    in_elements = max(
        (_elements(shape) for shape in operand_shapes),
        default=out_elements,
    )
    return cost * max(out_elements, in_elements)


def estimate_backward_flops(
    name: str,
    operand_shapes: Tuple[Tuple[int, ...], ...],
    out_shape: Optional[Tuple[int, ...]],
) -> int:
    """Estimated FLOPs of one op's *backward* closure.

    The estimates mirror the closures in ``repro.autograd``: a matmul
    backward runs two matmuls of the forward size (``dA = g B^T`` and
    ``dB = A^T g``), a gather backward is one scatter-add per gradient
    element, fused ops roughly double their forward cost, and pure
    data-movement ops (reshape/transpose/slice) remain free.
    """
    if out_shape is None:
        return 0
    out_elements = _elements(out_shape)
    if name == "matmul":
        if not operand_shapes:
            return 0
        return 2 * matmul_flops(operand_shapes[0], out_shape)
    fused = _fused_flops(name, operand_shapes, out_shape)
    if fused is not None:
        return 2 * fused
    if name == "gather":
        # Scatter-add of the incoming gradient into the source rows.
        return out_elements
    if name in ("broadcast_to", "sum", "mean", "max", "concatenate", "stack"):
        # Reduce/route one gradient value per forward input element.
        in_elements = max(
            (_elements(shape) for shape in operand_shapes),
            default=out_elements,
        )
        return max(out_elements, in_elements)
    cost = _ELEMENTWISE_COST.get(name)
    if cost is None:
        return 0
    in_elements = max(
        (_elements(shape) for shape in operand_shapes),
        default=out_elements,
    )
    return cost * max(out_elements, in_elements)
