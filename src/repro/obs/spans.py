"""Request-scoped tracing for the serving stack.

A :class:`Tracer` turns one Top-K request into a **span tree**: the
service entry point opens a root span, every instrumented stage below
it (engine submit, micro-batch wait, score-cache lookup, forward pass,
Top-K) opens a child, and parentage follows the call structure via
``contextvars`` — including across the micro-batch worker thread,
whose spans are re-parented onto the submitting request's context.

Sampling is head + always-sample: a head-sampling coin is flipped when
a trace starts, but every trace is buffered until its root finishes so
that **slow** requests (above a fixed ``slow_ms`` threshold and/or the
rolling p99 of root latencies) and **errored** requests are always
kept, whatever the coin said.  Kept traces stream to a JSONL span log
and can be exported as a ``chrome://tracing`` timeline
(:func:`repro.obs.trace.write_span_chrome_trace`).

Zero-overhead discipline: instrumentation call sites go through the
module-level :func:`span` / :func:`current_span` helpers, which check
one module-global (``_ACTIVE``) and return a shared no-op object when
no tracer is installed — no allocation, no lock, no contextvar access
on the disabled hot path (asserted by
``benchmarks/test_bench_engine_throughput.py``).

Usage::

    from repro.obs.spans import Tracer, span

    with Tracer(sample_rate=0.1, slow_ms=50.0, jsonl_path="spans.jsonl"):
        with span("service.recommend_for_group", group=3) as root:
            ...  # nested span(...) calls attach underneath
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics_registry import Histogram

#: One JSON object per span line in the JSONL log.
SPAN_SCHEMA = "repro.obs/span/v1"

#: One remote-span payload entry travelling worker → router over a pipe.
REMOTE_SPAN_SCHEMA = "repro.obs/remote-span/v1"

#: The installed tracer; ``None`` is the module-level "disabled" flag
#: every hot-path helper checks first.
_ACTIVE: Optional["Tracer"] = None

_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_current_span", default=None
)


class Span:
    """One timed operation inside a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_wall",
        "start",
        "duration",
        "attrs",
        "status",
        "error",
        "thread",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_wall = time.time()
        self.start = time.perf_counter()
        self.duration = 0.0
        self.attrs = attrs
        self.status = "ok"
        self.error: Optional[str] = None
        self.thread = threading.current_thread().name

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": SPAN_SCHEMA,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "ts": self.start_wall,
            "dur_ms": self.duration * 1000.0,
            "attrs": self.attrs,
            "status": self.status,
            "error": self.error,
            "thread": self.thread,
        }


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


def tracing_enabled() -> bool:
    """True while a :class:`Tracer` is installed."""
    return _ACTIVE is not None


def get_active_tracer() -> Optional["Tracer"]:
    return _ACTIVE


def span(name: str, **attrs: Any):
    """Context manager for one span; a shared no-op when tracing is off.

    Yields the live :class:`Span` (so callers can ``set_attr``) or
    ``None`` when disabled.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return _SpanContext(tracer, name, attrs)


def current_span() -> Optional[Span]:
    """The innermost live span on this thread's context, if any."""
    if _ACTIVE is None:
        return None
    return _current_span.get()


def capture_context() -> Optional[Span]:
    """Snapshot the current span for cross-thread hand-off (submit side)."""
    if _ACTIVE is None:
        return None
    return _current_span.get()


@contextmanager
def use_span(parent: Optional[Span]) -> Iterator[Optional[Span]]:
    """Re-parent this thread's context onto a captured span (worker side)."""
    if _ACTIVE is None or parent is None:
        yield None
        return
    token = _current_span.set(parent)
    try:
        yield parent
    finally:
        _current_span.reset(token)


def record_span(
    name: str,
    parent: Optional[Span],
    start: float,
    duration: float,
    **attrs: Any,
) -> None:
    """Record an already-finished span under ``parent``.

    For phases measured with explicit ``perf_counter`` timestamps —
    e.g. micro-batch queue wait, whose start happened on the submitting
    thread and whose end is observed on the worker.
    """
    tracer = _ACTIVE
    if tracer is None or parent is None:
        return
    tracer._record_completed(name, parent, start, duration, attrs)


class RemoteSpanRecorder:
    """Collects spans inside a worker *process* for later stitching.

    A shard worker has no :class:`Tracer` — tracing is driven entirely
    by the request: when a scatter message carries trace context, the
    worker builds one of these, wraps its phases in
    :meth:`span` / :meth:`record`, and ships :meth:`payload` back with
    the reply.  The router turns the payload into real spans of the
    caller's trace via :func:`adopt_remote_spans`.

    Parent linkage uses small integer ids local to this recorder (the
    entry's list index); a single-threaded stack tracks the current
    parent, which matches the worker loop's strictly nested execution.
    Timestamps are ``time.time()`` wall clock — the only clock that is
    comparable across processes on one machine — plus durations from
    ``perf_counter``.
    """

    __slots__ = ("_entries", "_stack")

    def __init__(self) -> None:
        self._entries: List[Dict[str, Any]] = []
        self._stack: List[int] = []

    def span(self, name: str, **attrs: Any) -> "_RemoteSpanContext":
        return _RemoteSpanContext(self, name, attrs)

    def record(
        self, name: str, start_wall: float, duration: float, **attrs: Any
    ) -> None:
        """Record an already-finished phase (e.g. pipe/queue wait whose
        start was stamped by the sending process)."""
        self._entries.append(
            {
                "id": len(self._entries),
                "parent": self._stack[-1] if self._stack else None,
                "name": name,
                "ts": float(start_wall),
                "dur": float(duration),
                "attrs": attrs,
            }
        )

    def _enter(self, name: str, attrs: Dict[str, Any]) -> int:
        index = len(self._entries)
        self._entries.append(
            {
                "id": index,
                "parent": self._stack[-1] if self._stack else None,
                "name": name,
                "ts": time.time(),
                "dur": 0.0,
                "attrs": attrs,
            }
        )
        self._stack.append(index)
        return index

    def _exit(self, index: int, duration: float, exc: Optional[BaseException]) -> None:
        self._stack.pop()
        entry = self._entries[index]
        entry["dur"] = duration
        if exc is not None:
            entry["attrs"] = {
                **entry["attrs"],
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
            }

    def payload(self) -> List[Dict[str, Any]]:
        """The picklable span list a reply carries back to the router."""
        return self._entries


class _RemoteSpanContext:
    __slots__ = ("_recorder", "_name", "_attrs", "_index", "_start")

    def __init__(
        self, recorder: RemoteSpanRecorder, name: str, attrs: Dict[str, Any]
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_RemoteSpanContext":
        self._index = self._recorder._enter(self._name, self._attrs)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._exit(
            self._index, time.perf_counter() - self._start, exc
        )
        return False

    def set_attr(self, key: str, value: Any) -> None:
        self._recorder._entries[self._index]["attrs"][key] = value


def trace_context() -> Optional[Dict[str, Any]]:
    """Wire-format trace context for a cross-process hop, or ``None``.

    ``None`` whenever tracing is off or no span is open — callers must
    then send the *unextended* message, so the disabled path pickles
    exactly the same bytes it did before tracing existed.
    """
    if _ACTIVE is None:
        return None
    parent = _current_span.get()
    if parent is None:
        return None
    return {
        "trace_id": parent.trace_id,
        "span_id": parent.span_id,
        "sent_ts": time.time(),
    }


def adopt_remote_spans(
    parent: Optional[Span], payload: Optional[List[Dict[str, Any]]]
) -> None:
    """Stitch a worker's :meth:`RemoteSpanRecorder.payload` into the
    caller's trace, re-parenting payload roots onto ``parent``.

    No-op when tracing is off, there is no parent, or the payload is
    empty — replies from an untraced request simply carry no payload.
    """
    tracer = _ACTIVE
    if tracer is None or parent is None or not payload:
        return
    tracer._adopt(parent, payload)


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        parent = _current_span.get()
        self._span = self._tracer._begin(self._name, parent, self._attrs)
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _current_span.reset(self._token)
        self._tracer._end(self._span, exc)
        return False


class _TraceBuffer:
    """All spans of one in-flight trace plus its sampling state."""

    __slots__ = ("root", "spans", "head_sampled", "errored")

    def __init__(self, root: Span, head_sampled: bool) -> None:
        self.root = root
        self.spans: List[Span] = []
        self.head_sampled = head_sampled
        self.errored = False


class Tracer:
    """Produces, samples and exports request span trees.

    Parameters
    ----------
    sample_rate:
        Head-sampling probability in ``[0, 1]``; the coin is flipped
        when a trace's root span starts.
    slow_ms:
        Fixed always-sample latency threshold for root spans
        (milliseconds); ``None`` disables the fixed rule.
    auto_slow_quantile:
        Roots slower than this rolling quantile of past root latencies
        are always kept (the "why was *this* request slow?" rule).
        Takes effect after ``auto_slow_min_samples`` roots; ``None``
        disables.
    jsonl_path:
        When set, every kept trace's spans are appended to this file,
        one JSON object per line (``repro.obs/span/v1``), flushed per
        trace so a killed process keeps finished traces.
    max_active_traces:
        In-flight trace buffer cap; beyond it the oldest unfinished
        trace is dropped (counted in :meth:`summary`).
    max_finished_spans:
        Cap on spans retained in memory for programmatic export; the
        JSONL log is unaffected.
    seed:
        Seeds the head-sampling RNG for reproducible sampling in tests.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        slow_ms: Optional[float] = None,
        auto_slow_quantile: Optional[float] = 99.0,
        auto_slow_min_samples: int = 200,
        jsonl_path: Optional[str] = None,
        max_active_traces: int = 1024,
        max_finished_spans: int = 100_000,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        import random

        self.sample_rate = sample_rate
        self.slow_ms = slow_ms
        self.auto_slow_quantile = auto_slow_quantile
        self.auto_slow_min_samples = auto_slow_min_samples
        self.jsonl_path = jsonl_path
        self.max_active_traces = max_active_traces
        self.max_finished_spans = max_finished_spans
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._traces: "Dict[str, _TraceBuffer]" = {}
        self._finished: List[Span] = []
        self._root_latency = Histogram("trace.root_latency")
        self._jsonl_handle = None
        self._counts = {
            "traces_started": 0,
            "traces_kept": 0,
            "kept_head": 0,
            "kept_slow": 0,
            "kept_error": 0,
            "traces_dropped": 0,
            "active_evicted": 0,
            "spans_recorded": 0,
            "spans_dropped": 0,
            "orphan_spans": 0,
        }

    # -- lifecycle ------------------------------------------------------

    def install(self) -> "Tracer":
        """Make this the process-wide tracer (one at a time)."""
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a Tracer is already installed")
        _ACTIVE = self
        return self

    def uninstall(self) -> None:
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None
        self.flush()

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    def flush(self) -> None:
        with self._lock:
            if self._jsonl_handle is not None:
                self._jsonl_handle.flush()

    def close(self) -> None:
        self.uninstall()
        with self._lock:
            if self._jsonl_handle is not None:
                self._jsonl_handle.close()
                self._jsonl_handle = None

    # -- span production (called via module helpers) --------------------

    @staticmethod
    def _new_id() -> str:
        return uuid.uuid4().hex[:16]

    def _begin(self, name: str, parent: Optional[Span], attrs: Dict[str, Any]) -> Span:
        if parent is None:
            trace_id = self._new_id()
        else:
            trace_id = parent.trace_id
        created = Span(
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            attrs=attrs,
        )
        if parent is None:
            head_sampled = self._rng.random() < self.sample_rate
            with self._lock:
                self._counts["traces_started"] += 1
                self._traces[trace_id] = _TraceBuffer(created, head_sampled)
                while len(self._traces) > self.max_active_traces:
                    evicted_id = next(iter(self._traces))
                    evicted = self._traces.pop(evicted_id)
                    self._counts["active_evicted"] += 1
                    self._counts["spans_dropped"] += len(evicted.spans) + 1
        return created

    def _end(self, finished: Span, exc: Optional[BaseException]) -> None:
        finished.duration = time.perf_counter() - finished.start
        if exc is not None:
            finished.status = "error"
            finished.error = f"{type(exc).__name__}: {exc}"
        self._store(finished)

    def _record_completed(
        self,
        name: str,
        parent: Span,
        start: float,
        duration: float,
        attrs: Dict[str, Any],
    ) -> None:
        completed = Span(
            trace_id=parent.trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id,
            name=name,
            attrs=attrs,
        )
        # Shift the wall-clock anchor back to the true start.
        completed.start_wall -= time.perf_counter() - start
        completed.start = start
        completed.duration = duration
        self._store(completed)

    def _adopt(self, parent: Span, payload: List[Dict[str, Any]]) -> None:
        """Materialize remote span entries as spans of ``parent``'s trace.

        Remote ids are remapped to fresh span ids (two workers may both
        number their spans 0..n); wall-clock starts are projected onto
        this process's ``perf_counter`` timeline so Chrome export and
        start-ordering keep working.  Recorders emit parents before
        children, so one forward pass resolves the id map.
        """
        now_perf = time.perf_counter()
        now_wall = time.time()
        id_map: Dict[int, str] = {}
        for entry in payload:
            attrs = dict(entry.get("attrs") or {})
            status = attrs.pop("status", "ok")
            error = attrs.pop("error", None)
            remote_parent = entry.get("parent")
            adopted = Span(
                trace_id=parent.trace_id,
                span_id=self._new_id(),
                parent_id=(
                    id_map[remote_parent]
                    if remote_parent is not None and remote_parent in id_map
                    else parent.span_id
                ),
                name=entry["name"],
                attrs=attrs,
            )
            adopted.start_wall = float(entry["ts"])
            adopted.start = now_perf - (now_wall - float(entry["ts"]))
            adopted.duration = float(entry["dur"])
            adopted.status = status
            adopted.error = error
            adopted.thread = str(attrs.get("proc", adopted.thread))
            id_map[int(entry["id"])] = adopted.span_id
            self._store(adopted)

    def _store(self, stored: Span) -> None:
        with self._lock:
            buffer = self._traces.get(stored.trace_id)
            if buffer is None:
                self._counts["orphan_spans"] += 1
                return
            buffer.spans.append(stored)
            self._counts["spans_recorded"] += 1
            if stored.status == "error":
                buffer.errored = True
            if stored is not buffer.root:
                return
            del self._traces[stored.trace_id]
            self._finish_trace(buffer)

    def _finish_trace(self, buffer: _TraceBuffer) -> None:
        # Called with the lock held; the root just ended.
        root = buffer.root
        duration_ms = root.duration * 1000.0
        slow = False
        if self.slow_ms is not None and duration_ms >= self.slow_ms:
            slow = True
        if (
            not slow
            and self.auto_slow_quantile is not None
            and self._root_latency.count >= self.auto_slow_min_samples
            and root.duration >= self._root_latency.percentile(self.auto_slow_quantile)
        ):
            slow = True
        self._root_latency.observe(root.duration)
        keep = buffer.head_sampled or buffer.errored or slow
        if not keep:
            self._counts["traces_dropped"] += 1
            self._counts["spans_dropped"] += len(buffer.spans)
            return
        reason = (
            "error" if buffer.errored else ("slow" if slow else "head")
        )
        root.attrs["sampled"] = reason
        self._counts["traces_kept"] += 1
        self._counts[f"kept_{reason}"] += 1
        ordered = sorted(buffer.spans, key=lambda item: item.start)
        room = self.max_finished_spans - len(self._finished)
        if room < len(ordered):
            self._counts["spans_dropped"] += len(ordered) - max(0, room)
        if room > 0:
            self._finished.extend(ordered[:room])
        if self.jsonl_path is not None:
            if self._jsonl_handle is None:
                self._jsonl_handle = open(self.jsonl_path, "a", encoding="utf-8")
            for item in ordered:
                self._jsonl_handle.write(json.dumps(item.as_dict()) + "\n")
            self._jsonl_handle.flush()

    # -- reading --------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        """Spans of every kept trace, in start order per trace."""
        with self._lock:
            return list(self._finished)

    def traces(self) -> Dict[str, List[Span]]:
        """Kept spans grouped by trace id."""
        grouped: Dict[str, List[Span]] = {}
        for item in self.finished_spans():
            grouped.setdefault(item.trace_id, []).append(item)
        return grouped

    def summary(self) -> dict:
        """Sampling decisions plus root-latency stats (JSON-ready)."""
        with self._lock:
            counts = dict(self._counts)
        latency = self._root_latency.summary()
        return {
            **counts,
            "sample_rate": self.sample_rate,
            "slow_ms": self.slow_ms,
            "root_latency_ms": {
                "count": latency["count"],
                "mean_ms": latency["mean"] * 1000.0,
                "p50_ms": latency["p50"] * 1000.0,
                "p99_ms": latency["p99"] * 1000.0,
                "max_ms": latency["max"] * 1000.0,
            },
        }

    def report(self, meta: Optional[dict] = None) -> dict:
        """Sampling summary in the ``repro.obs/v1`` envelope."""
        from repro.obs.report import make_report

        return make_report("span_log", self.summary(), meta=meta)
