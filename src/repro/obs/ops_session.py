"""A self-contained ops session: serve, stream, swap, watch, report.

:func:`run_ops_session` drives the full observability surface against a
real model in one short deterministic pass, producing the unified ops
report (:mod:`repro.obs.ops_report`).  The phases:

1. **Warm serving** — requests through a
   :class:`~repro.serving.RecommendationService` (direct, engine or
   cluster mode) under a head-sampling tracer; per-request latency
   feeds the SLO time series and the served top-K scores accumulate
   toward the score-drift reference, which is frozen at the end of the
   phase.
2. **Online streaming + hot-swap** — a drifting event stream
   (:func:`~repro.online.events.generate_events` with the ``drift``
   knob) replays through an :class:`~repro.online.trainer.OnlineTrainer`
   (per-batch JSONL metrics on), the final snapshot is hot-swapped into
   the service, and the early-vs-late item distributions of the stream
   feed an event-drift detector.
3. **Post-swap serving** — the same request mix against the swapped
   model; ``inject_latency_s`` (an *additive constant on the recorded
   latency sample*, not a sleep — deterministic and fast) simulates a
   latency incident for the SLO monitor.
4. **Report** — fleet-merged metrics, SLO burn status, alerts, drift
   statuses, recent stitched traces and online-training health in one
   ``repro.obs/v1`` envelope.

Two failure injections make the acceptance criteria testable end to
end: ``inject_latency_s > 0`` must raise exactly one ``slo_breach``
and ``drift >~ 0.9`` with enough events must raise an event-drift
alert; with both off, the session reports a quiet fleet.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.obs.alerts import AlertLog
from repro.obs.drift import (
    GradientTrendDetector,
    ScoreDistributionDetector,
)
from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.ops_report import build_ops_report
from repro.obs.slo import SLOMonitor, SLOSpec
from repro.obs.spans import Tracer
from repro.obs.timeseries import TimeSeriesStore

#: Series name every served request's wall latency lands under.
REQUEST_SERIES = "ops.request.latency_s"

MODES = ("direct", "engine", "cluster")


@dataclass
class OpsSessionConfig:
    """Knobs for one ops session (all deterministic given ``seed``)."""

    mode: str = "engine"
    num_warm: int = 40
    num_requests: int = 60
    k: int = 10
    num_events: int = 400
    batch_size: int = 32
    drift: float = 0.0
    inject_latency_s: float = 0.0
    latency_slo_s: float = 0.25
    slo_budget: float = 0.25
    seed: int = 0
    num_workers: int = 2
    num_shards: int = 2
    trace_sample_rate: float = 0.25
    event_drift_psi: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown mode '{self.mode}' (choose from {MODES})"
            )
        if self.num_warm < 1 or self.num_requests < 1:
            raise ValueError("num_warm and num_requests must be >= 1")


def _item_time_feature(events) -> list:
    """Each event's item mapped to that item's mean timestamp over the
    whole stream.

    A drift-sensitive continuous feature for small streams: under a
    drifting generator an item's occurrences cluster in time, so early
    and late halves of the stream see clearly different feature
    distributions (PSI well above 1); under a stationary generator the
    per-item value does not depend on *when* an event happened, so the
    halves agree.  Raw item ids don't work here — quantile-binned PSI
    over a few hundred draws from ~50 discrete ids is mostly sampling
    noise.
    """
    sums: Dict[int, list] = {}
    for event in events:
        entry = sums.setdefault(event.item, [0.0, 0])
        entry[0] += event.ts
        entry[1] += 1
    means = {item: total / count for item, (total, count) in sums.items()}
    return [means[event.item] for event in events]


def _build_service(serving_model, dataset, version, config, workdir):
    from repro.serving import RecommendationService

    if config.mode == "cluster":
        from repro.cluster import ClusterConfig, ShardRouter

        router = ShardRouter.launch(
            serving_model,
            dataset,
            config=ClusterConfig(
                num_workers=config.num_workers, num_shards=config.num_shards
            ),
            workdir=Path(workdir) / "cluster",
        )
        return RecommendationService(
            model=serving_model, dataset=dataset, router=router,
            model_version=version,
        )
    service = RecommendationService(
        model=serving_model, dataset=dataset, model_version=version
    )
    if config.mode == "engine":
        service.enable_engine()
    return service


def run_ops_session(
    model,
    dataset,
    workdir,
    config: Optional[OpsSessionConfig] = None,
) -> Dict[str, Any]:
    """Run the phases above; return the ``kind="ops"`` report dict.

    ``model`` is the *trainer's* copy — serving always runs on a fresh
    model loaded from the first published snapshot, exactly like the
    online-swap bench, so streaming updates only reach the serving path
    through whole-version swaps.
    """
    from repro.online.events import (
        EventLogReader,
        generate_events,
        write_event_log,
    )
    from repro.online.snapshots import SnapshotPublisher
    from repro.online.trainer import OnlineTrainer, OnlineTrainerConfig
    from repro.persistence import load_checkpoint

    config = config or OpsSessionConfig()
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(config.seed)

    trainer_registry = MetricsRegistry()
    publisher = SnapshotPublisher(workdir / "snapshots", keep_last=3)
    batch_metrics_path = workdir / "online_batches.jsonl"
    trainer = OnlineTrainer(
        model,
        dataset,
        publisher,
        config=OnlineTrainerConfig(batch_size=config.batch_size),
        registry=trainer_registry,
        metrics_path=str(batch_metrics_path),
    )
    initial = trainer.publish()
    serving_model, __ = load_checkpoint(initial.path)
    service = _build_service(
        serving_model, dataset, initial.version, config, workdir
    )

    store = TimeSeriesStore()
    alerts = AlertLog(jsonl_path=str(workdir / "alerts.jsonl"))
    monitor = SLOMonitor(
        store,
        [
            SLOSpec(
                name="request-latency",
                series=REQUEST_SERIES,
                threshold=config.latency_slo_s,
                direction="above",
                budget=config.slo_budget,
                windows=(30.0, 120.0),
                min_samples=5,
                description="served request wall latency stays under the SLO",
            )
        ],
        alerts=alerts,
    )
    score_drift = ScoreDistributionDetector(
        name="score-drift", min_samples=min(50, config.num_warm * config.k)
    )
    event_drift = ScoreDistributionDetector(
        name="event-drift",
        threshold=config.event_drift_psi,
        min_samples=min(50, config.num_events // 2),
    )
    grad_trend = GradientTrendDetector(
        series="online.loss.user", window=3600.0
    )

    users = rng.integers(
        0, dataset.num_users, size=max(config.num_warm, config.num_requests)
    )

    def scrape() -> None:
        store.sample_registry(service.fleet_metrics(), prefix="fleet.")
        store.sample_registry(trainer_registry)
        snapshot = service.telemetry_snapshot()
        if snapshot:
            for name, value in snapshot.get("rates", {}).items():
                store.record("fleet." + name, float(value))

    def serve(count: int, inject_s: float = 0.0) -> None:
        for index in range(count):
            started = time.perf_counter()
            response = service.recommend_for_user(
                int(users[index % users.size]), k=config.k
            )
            latency = time.perf_counter() - started + inject_s
            store.record(REQUEST_SERIES, latency)
            if response.scores:
                score_drift.observe(response.scores)
        scrape()

    tracer = Tracer(
        sample_rate=config.trace_sample_rate,
        jsonl_path=str(workdir / "spans.jsonl"),
        seed=config.seed,
    )
    try:
        with tracer:
            # Phase 1: warm serving freezes the healthy score baseline.
            serve(config.num_warm)
            score_drift.freeze_reference_if_ready()
            monitor.evaluate()
            score_drift.evaluate(alerts)

            # Phase 2: drifting stream -> online training -> hot swap.
            events = generate_events(
                dataset, config.num_events, drift=config.drift, rng=rng
            )
            log_path = workdir / "events.jsonl"
            write_event_log(log_path, events)
            half = len(events) // 2
            feature = _item_time_feature(events)
            event_drift.set_reference(feature[:half])
            event_drift.observe(feature[half:])
            consume_stats = trainer.consume(EventLogReader(log_path))
            swapped = publisher.latest
            assert swapped is not None  # consume always publishes finally
            new_model, __meta = load_checkpoint(swapped.path)
            service.apply_model(new_model, version=swapped.version)
            store.record("online.swap.version", float(swapped.version))
            scrape()
            event_drift.evaluate(alerts)
            grad_trend.evaluate(store, alerts)

            # Phase 3: post-swap serving, optionally under an injected
            # latency incident.
            serve(config.num_requests, inject_s=config.inject_latency_s)
            monitor.evaluate()
            score_status = score_drift.evaluate(alerts)
            event_status = event_drift.evaluate(alerts)
            trend_status = grad_trend.evaluate(store, alerts)

        # Phase 4: the unified report, outside the tracer so the span
        # summary is final.
        replay_gauge = trainer_registry.gauges().get("online.replay_lag_bytes")
        online = {
            "model_version": trainer.model_version,
            "steps": trainer.steps,
            "events_ingested": consume_stats["events"],
            "replay_lag_bytes": (
                0 if replay_gauge is None else int(replay_gauge.value)
            ),
            "swapped_version": swapped.version,
            "batch_metrics_path": str(batch_metrics_path),
        }
        return build_ops_report(
            registry=service.fleet_metrics(),
            store=store,
            monitor=monitor,
            alerts=alerts,
            tracer=tracer,
            drift_statuses=[score_status, event_status, trend_status],
            online=online,
            meta={
                "mode": config.mode,
                "seed": config.seed,
                "drift": config.drift,
                "inject_latency_s": config.inject_latency_s,
                "requests": config.num_warm + config.num_requests,
                "events": config.num_events,
            },
        )
    finally:
        service.close()
        trainer.close()
        alerts.close()
