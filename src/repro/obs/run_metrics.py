"""Per-epoch training run metrics streamed as JSONL.

:class:`RunMetrics` is a :data:`~repro.training.callbacks.ProgressCallback`
with an optional ``bind(trainer)`` hook — ``fit_groupsa`` calls it
automatically, giving the callback access to the optimizer (for the
global gradient norm) and the model parameters (for per-parameter-group
update/parameter ratios).  Used unbound it still logs the fields
carried by the :class:`EpochLog` itself.

Each epoch appends one self-describing JSON line and flushes, so a
killed run leaves a complete record up to its last finished epoch::

    {"schema": "repro.obs/run-metrics/v1", "task": "group", "epoch": 3,
     "loss": 0.59, "pairwise_accuracy": 0.71, "duration_s": 0.41,
     "grad_norm": 1.83, "update_ratio": {"user_embedding": 0.012, ...},
     "rss_hwm_mb": 212.4, "wall_time_s": 5.02}
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Dict, IO, List, Optional, Tuple

import numpy as np

from repro.autograd.sparse import RowSparseGrad
from repro.obs.grad_health import GradientHealthMonitor
from repro.obs.report import make_report
from repro.training.callbacks import EpochLog, ProgressCallback

try:  # resource is POSIX-only; metrics degrade gracefully without it.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

#: Schema tag written on every JSONL record.
RECORD_SCHEMA = "repro.obs/run-metrics/v1"


class JsonlWriter:
    """One-JSON-object-per-line writer, opened lazily, flushed per record.

    The shared sink behind :class:`RunMetrics` and the online trainer's
    per-replay-batch metrics: a killed process keeps every record that
    was handed to :meth:`write`.
    """

    def __init__(self, path: str, mode: str = "w") -> None:
        self.path = path
        self._mode = mode
        self._handle: Optional[IO[str]] = None

    def write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, self._mode, encoding="utf-8")
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def rss_high_water_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB (None if unknown)."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


class RunMetrics:
    """Streams one JSON metrics line per training epoch.

    Parameters
    ----------
    path:
        JSONL output file; ``None`` keeps records in memory only
        (``.records``).
    chain:
        Another progress callback (e.g. ``print_progress``) invoked
        after each record — lets metrics and console progress coexist
        on the single ``callback`` slot of ``fit_groupsa``.
    track_update_ratio:
        Keep a copy of each parameter group's weights between epochs to
        report ``‖Δθ‖ / ‖θ‖`` per group (costs one extra model copy in
        memory; disable for very large models).
    grad_monitor:
        A :class:`GradientHealthMonitor` whose summary is folded into
        :meth:`report` (the monitor itself is attached to the trainer
        separately).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        chain: Optional[ProgressCallback] = None,
        track_update_ratio: bool = True,
        grad_monitor: Optional[GradientHealthMonitor] = None,
    ) -> None:
        self.path = path
        self.chain = chain
        self.track_update_ratio = track_update_ratio
        self.grad_monitor = grad_monitor
        self.records: List[Dict[str, Any]] = []
        self._writer: Optional[JsonlWriter] = None if path is None else JsonlWriter(path)
        self._trainer: Any = None
        self._groups: Dict[str, List[Tuple[str, Any]]] = {}
        self._previous: Dict[str, np.ndarray] = {}
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    # Trainer attachment (called by fit_groupsa)
    # ------------------------------------------------------------------

    def bind(self, trainer: Any) -> None:
        """Attach to a :class:`~repro.training.trainer.GroupSATrainer`."""
        self._trainer = trainer
        self._groups = {}
        for name, parameter in trainer.model.named_parameters():
            group = name.split(".", 1)[0]
            self._groups.setdefault(group, []).append((name, parameter))
        if self.track_update_ratio:
            self._previous = {
                group: self._flatten(params) for group, params in self._groups.items()
            }
        self._started = time.perf_counter()

    @staticmethod
    def _flatten(params: List[Tuple[str, Any]]) -> np.ndarray:
        return np.concatenate([p.data.ravel() for __, p in params])

    # ------------------------------------------------------------------
    # Metric computation
    # ------------------------------------------------------------------

    def _grad_norm(self) -> Optional[float]:
        if self._trainer is None:
            return None
        total = 0.0
        seen = False
        for parameter in self._trainer.optimizer.parameters:
            grad = parameter.grad
            if grad is None:
                continue
            seen = True
            if isinstance(grad, RowSparseGrad):
                # Diagnostic norm over the touched rows; the implicit
                # rows contribute exactly zero, no densification needed.
                total += grad.sq_sum()
            else:
                total += float(np.square(grad).sum())
        return math.sqrt(total) if seen else None

    def _update_ratios(self) -> Optional[Dict[str, float]]:
        if self._trainer is None or not self.track_update_ratio:
            return None
        ratios: Dict[str, float] = {}
        for group, params in self._groups.items():
            current = self._flatten(params)
            previous = self._previous[group]
            denom = float(np.linalg.norm(previous))
            delta = float(np.linalg.norm(current - previous))
            ratios[group] = delta / denom if denom > 0.0 else delta
            self._previous[group] = current
        return ratios

    # ------------------------------------------------------------------
    # Callback protocol
    # ------------------------------------------------------------------

    def __call__(self, log: EpochLog) -> None:
        record: Dict[str, Any] = {
            "schema": RECORD_SCHEMA,
            "task": log.task,
            "epoch": log.epoch,
            "loss": log.loss,
            "pairwise_accuracy": log.pairwise_accuracy,
            "duration_s": log.duration_s,
            "grad_norm": self._grad_norm(),
            "update_ratio": self._update_ratios(),
            "rss_hwm_mb": rss_high_water_mb(),
            "wall_time_s": time.perf_counter() - self._started,
        }
        self.records.append(record)
        if self._writer is not None:
            self._writer.write(record)
        if self.chain is not None:
            self.chain(log)

    # ------------------------------------------------------------------
    # Lifecycle / reporting
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()

    def __enter__(self) -> "RunMetrics":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def report(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Whole-run summary in the unified observability envelope."""
        by_task: Dict[str, List[Dict[str, Any]]] = {}
        for record in self.records:
            by_task.setdefault(record["task"], []).append(record)
        tasks = {
            task: {
                "epochs": len(records),
                "final_loss": records[-1]["loss"],
                "final_pairwise_accuracy": records[-1]["pairwise_accuracy"],
                "total_duration_s": sum(r["duration_s"] for r in records),
            }
            for task, records in by_task.items()
        }
        grad_norms = [r["grad_norm"] for r in self.records if r["grad_norm"] is not None]
        data: Dict[str, Any] = {
            "record_schema": RECORD_SCHEMA,
            "epochs_logged": len(self.records),
            "tasks": tasks,
            "max_grad_norm": max(grad_norms) if grad_norms else None,
            "rss_hwm_mb": rss_high_water_mb(),
            "wall_time_s": time.perf_counter() - self._started,
        }
        if self.grad_monitor is not None:
            data["grad_health"] = self.grad_monitor.summary()
        return make_report("training_run", data, meta=meta)
