"""The unified ops report: one artifact for "how is the fleet doing".

:func:`build_ops_report` aggregates every observability surface this
repo grows — fleet-merged :class:`~repro.obs.metrics_registry.
MetricsRegistry` metrics, :class:`~repro.obs.timeseries.TimeSeriesStore`
series, :class:`~repro.obs.slo.SLOMonitor` burn-rate status,
:class:`~repro.obs.alerts.AlertLog` events, drift-detector statuses,
recent stitched traces from a :class:`~repro.obs.spans.Tracer`, and
online-training health — into a single ``repro.obs/v1`` envelope
(``kind="ops"``).  :func:`render_ops_html` turns the same report into a
self-contained HTML dashboard (inline CSS, inline SVG sparklines, no
external assets) so the artifact opens anywhere a browser does — CI
artifact tabs included.

Produced by the ``repro obs-report`` CLI, which drives a short
self-contained ops session (:mod:`repro.obs.ops_session`) and writes
both forms.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional

from repro.obs.report import make_report

#: ``kind`` of the unified ops envelope.
OPS_REPORT_KIND = "ops"


def trace_summaries(tracer, limit: int = 10) -> List[Dict[str, Any]]:
    """Most-recent kept traces, one summary row per trace.

    The root span (``parent_id is None``) names the trace; worker
    attribution comes from the distinct thread names across the trace's
    spans, which for stitched cluster traces includes the remote
    ``worker-<id>`` pseudo-threads.
    """
    rows = []
    for trace_id, spans in tracer.traces().items():
        roots = [item for item in spans if item.parent_id is None]
        root = roots[0] if roots else spans[0]
        rows.append(
            {
                "trace_id": trace_id,
                "root": root.name,
                "ts": root.start_wall,
                "duration_ms": root.duration * 1000.0,
                "spans": len(spans),
                "status": root.status,
                "sampled": root.attrs.get("sampled"),
                "threads": sorted({item.thread for item in spans}),
            }
        )
    rows.sort(key=lambda row: row["ts"], reverse=True)
    return rows[:limit]


def build_ops_report(
    registry=None,
    store=None,
    monitor=None,
    alerts=None,
    tracer=None,
    drift_statuses: Optional[List[Dict[str, Any]]] = None,
    online: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
    series_last: int = 64,
    trace_limit: int = 10,
) -> Dict[str, Any]:
    """Aggregate every present source into one ``kind="ops"`` report.

    Omitted sources leave their section out, so the report degrades
    gracefully from "full fleet + online + tracing" down to "just
    metrics".  ``monitor.payload()`` re-evaluates the SLOs, so the
    report always reflects the state of the store at build time.
    """
    data: Dict[str, Any] = {}
    if registry is not None:
        data["fleet_metrics"] = {
            "metrics": registry.payload(),
            "exposition": registry.exposition(),
        }
    if store is not None:
        data["timeseries"] = store.payload(last=series_last)
    if monitor is not None:
        data["slo"] = monitor.payload()
    if alerts is not None:
        data["alerts"] = alerts.payload()
    if drift_statuses is not None:
        data["drift"] = list(drift_statuses)
    if tracer is not None:
        data["traces"] = {
            "summary": tracer.summary(),
            "recent": trace_summaries(tracer, limit=trace_limit),
        }
    if online is not None:
        data["online"] = dict(online)
    return make_report(OPS_REPORT_KIND, data, meta=meta)


# -- HTML rendering ------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a202c; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #e2e8f0; padding-bottom: 0.3rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #edf2f7; }
th { background: #f7fafc; }
.cards { display: flex; flex-wrap: wrap; gap: 0.8rem; margin: 1rem 0; }
.card { border: 1px solid #e2e8f0; border-radius: 8px;
        padding: 0.7rem 1rem; min-width: 9rem; }
.card .value { font-size: 1.4rem; font-weight: 600; }
.card .label { font-size: 0.75rem; color: #718096;
               text-transform: uppercase; letter-spacing: 0.04em; }
.ok { color: #2f855a; } .warn { color: #b7791f; } .page { color: #c53030; }
.info { color: #2b6cb0; }
.spark { vertical-align: middle; }
code { background: #f7fafc; padding: 0 0.25rem; border-radius: 3px; }
.muted { color: #718096; }
"""


def _sparkline(points: List[List[float]], width: int = 120, height: int = 24) -> str:
    """Inline SVG polyline of a series' values (no axes, dashboard-style)."""
    values = [value for __, value in points]
    if len(values) < 2:
        return '<span class="muted">–</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = width / (len(values) - 1)
    coords = " ".join(
        f"{i * step:.1f},{height - 2 - (value - lo) / span * (height - 4):.1f}"
        for i, value in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}">'
        f'<polyline points="{coords}" fill="none" stroke="#3182ce" '
        'stroke-width="1.5"/></svg>'
    )


def _fmt(value: Any) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:.4g}"
    return html.escape(str(value))


def _card(label: str, value: Any, css: str = "") -> str:
    return (
        f'<div class="card"><div class="value {css}">{_fmt(value)}</div>'
        f'<div class="label">{html.escape(label)}</div></div>'
    )


def _alerts_section(alerts: Dict[str, Any]) -> List[str]:
    parts = ["<h2>Alerts</h2>"]
    events = alerts.get("events", [])
    if not events:
        parts.append('<p class="ok">No alerts raised.</p>')
        return parts
    parts.append(
        "<table><tr><th>Severity</th><th>Kind</th><th>Source</th>"
        "<th>Message</th></tr>"
    )
    for event in events:
        severity = event.get("severity", "info")
        parts.append(
            f'<tr><td class="{html.escape(severity)}">{_fmt(severity)}</td>'
            f"<td>{_fmt(event.get('kind'))}</td>"
            f"<td>{_fmt(event.get('source'))}</td>"
            f"<td>{_fmt(event.get('message'))}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _slo_section(slo: Dict[str, Any]) -> List[str]:
    parts = ["<h2>SLOs</h2>", "<table><tr><th>Name</th><th>Series</th>"
             "<th>Objective</th><th>Burn rates</th><th>Latest</th>"
             "<th>State</th></tr>"]
    for status in slo.get("status", []):
        burns = ", ".join(
            f"{window}s: {_fmt(rate)}"
            for window, rate in status.get("burn_rates", {}).items()
        )
        burning = status.get("burning")
        state = (
            '<span class="page">BURNING</span>'
            if burning
            else '<span class="ok">ok</span>'
        )
        parts.append(
            f"<tr><td>{_fmt(status.get('name'))}</td>"
            f"<td><code>{_fmt(status.get('series'))}</code></td>"
            f"<td>{_fmt(status.get('direction'))} {_fmt(status.get('threshold'))}"
            f" (budget {_fmt(status.get('budget'))})</td>"
            f"<td>{burns}</td><td>{_fmt(status.get('latest'))}</td>"
            f"<td>{state}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _drift_section(statuses: List[Dict[str, Any]]) -> List[str]:
    parts = ["<h2>Drift detectors</h2>", "<table><tr><th>Name</th>"
             "<th>Signal</th><th>Samples</th><th>State</th></tr>"]
    for status in statuses:
        flagged = (
            status.get("drifted") or status.get("degraded")
            or status.get("trending")
        )
        if "psi" in status:
            signal = f"PSI {_fmt(status.get('psi'))}"
        elif "mean" in status:
            signal = f"mean {_fmt(status.get('mean'))}"
        else:
            signal = f"ratio {_fmt(status.get('ratio'))}"
        state = (
            '<span class="warn">FLAGGED</span>'
            if flagged
            else '<span class="ok">ok</span>'
        )
        samples = status.get("current_samples", status.get("samples"))
        parts.append(
            f"<tr><td>{_fmt(status.get('name'))}</td><td>{signal}</td>"
            f"<td>{_fmt(samples)}</td><td>{state}</td></tr>"
        )
    parts.append("</table>")
    return parts


def _traces_section(traces: Dict[str, Any]) -> List[str]:
    summary = traces.get("summary", {})
    parts = ["<h2>Recent traces</h2>"]
    latency = summary.get("root_latency_ms", {})
    parts.append(
        f'<p class="muted">{_fmt(summary.get("traces_started"))} started, '
        f'{_fmt(summary.get("traces_kept"))} kept; root p99 '
        f"{_fmt(latency.get('p99_ms'))} ms</p>"
    )
    rows = traces.get("recent", [])
    if rows:
        parts.append(
            "<table><tr><th>Trace</th><th>Root</th><th>Duration (ms)</th>"
            "<th>Spans</th><th>Threads</th><th>Status</th></tr>"
        )
        for row in rows:
            css = "ok" if row.get("status") == "ok" else "page"
            parts.append(
                f"<tr><td><code>{_fmt(row.get('trace_id'))}</code></td>"
                f"<td>{_fmt(row.get('root'))}</td>"
                f"<td>{_fmt(row.get('duration_ms'))}</td>"
                f"<td>{_fmt(row.get('spans'))}</td>"
                f"<td>{_fmt(', '.join(row.get('threads', [])))}</td>"
                f'<td class="{css}">{_fmt(row.get("status"))}</td></tr>'
            )
        parts.append("</table>")
    return parts


def _timeseries_section(timeseries: Dict[str, Any], limit: int = 24) -> List[str]:
    series = timeseries.get("series", {})
    parts = ["<h2>Time series</h2>", "<table><tr><th>Series</th>"
             "<th>Trend</th><th>Latest</th><th>Points</th></tr>"]
    for name, points in list(series.items())[:limit]:
        latest = points[-1][1] if points else None
        parts.append(
            f"<tr><td><code>{_fmt(name)}</code></td>"
            f"<td>{_sparkline(points)}</td><td>{_fmt(latest)}</td>"
            f"<td>{len(points)}</td></tr>"
        )
    parts.append("</table>")
    if len(series) > limit:
        parts.append(
            f'<p class="muted">… plus {len(series) - limit} more series '
            "in the JSON report.</p>"
        )
    return parts


def _online_section(online: Dict[str, Any]) -> List[str]:
    parts = ["<h2>Online training</h2>", "<table>"]
    for key, value in online.items():
        parts.append(f"<tr><th>{_fmt(key)}</th><td>{_fmt(value)}</td></tr>")
    parts.append("</table>")
    return parts


def render_ops_html(report: Dict[str, Any]) -> str:
    """Self-contained HTML dashboard for a ``kind="ops"`` report."""
    data = report.get("data", {})
    meta = report.get("meta", {})
    alerts = data.get("alerts", {})
    slo = data.get("slo", {})
    by_severity = alerts.get("by_severity", {})
    cards = [
        _card("SLOs burning", slo.get("burning", 0),
              "page" if slo.get("burning") else "ok"),
        _card("Alerts", alerts.get("total", 0),
              "warn" if alerts.get("total") else "ok"),
        _card("Pages", by_severity.get("page", 0),
              "page" if by_severity.get("page") else "ok"),
    ]
    traces = data.get("traces", {})
    if traces:
        cards.append(
            _card("Traces kept", traces.get("summary", {}).get("traces_kept", 0))
        )
    online = data.get("online", {})
    if online:
        cards.append(_card("Model version", online.get("model_version")))
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro ops report</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>repro ops report</h1>",
        f'<p class="muted">{_fmt(json.dumps(meta, sort_keys=True))}</p>',
        f'<div class="cards">{"".join(cards)}</div>',
    ]
    if "alerts" in data:
        parts.extend(_alerts_section(data["alerts"]))
    if "slo" in data:
        parts.extend(_slo_section(data["slo"]))
    if "drift" in data:
        parts.extend(_drift_section(data["drift"]))
    if "traces" in data:
        parts.extend(_traces_section(data["traces"]))
    if "online" in data:
        parts.extend(_online_section(data["online"]))
    if "timeseries" in data:
        parts.extend(_timeseries_section(data["timeseries"]))
    parts.append("</body></html>")
    return "".join(parts)


def write_ops_report(
    report: Dict[str, Any],
    json_path: Optional[str] = None,
    html_path: Optional[str] = None,
) -> None:
    """Write the JSON envelope and/or the HTML dashboard."""
    from repro.obs.report import write_report

    if json_path is not None:
        write_report(report, json_path)
    if html_path is not None:
        with open(html_path, "w", encoding="utf-8") as handle:
            handle.write(render_ops_html(report))
