"""Unified metrics registry: counters, gauges, log-bucket histograms.

The serving stack's metrics primitive.  :class:`Histogram` replaces the
engine telemetry's old bounded-reservoir percentiles with **fixed
logarithmic buckets**: every sample lands in a bucket whose bounds grow
geometrically, so

- the full history is retained (no samples silently dropped under
  load — ``count``/``sum``/``max``/``min`` are exact);
- quantiles are reproducible with a bounded *relative* error of one
  bucket's width (``relative_error``), independent of traffic volume;
- two histograms from different workers merge by adding bucket counts,
  so fleet-wide percentiles are exact in the same sense — impossible
  with reservoirs.

:class:`MetricsRegistry` is the thread-safe container: instruments are
created on first use, named lookups are stable, and the whole registry
exports three ways — a JSON payload, the ``repro.obs/v1`` report
envelope, and Prometheus-style text exposition for scrapers.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Default bucket resolution: 20 buckets per decade of magnitude, i.e.
#: bucket bounds grow by 10^(1/20) ≈ 1.122 — quantiles carry at most
#: ~12.2% relative error.
DEFAULT_BUCKETS_PER_DECADE = 20

#: Default histogram range in native units (seconds for latencies):
#: 100 ns .. 1000 s; values outside land in under/overflow buckets
#: whose recorded max keeps ``max`` exact.
DEFAULT_LO = 1e-7
DEFAULT_HI = 1e3


class Counter:
    """Monotonically increasing integer, thread-safe."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins float, thread-safe."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-log-bucket histogram: exact counts, bounded-error quantiles.

    Bucket ``i`` (``1 <= i <= n``) covers ``(lo·g^(i-1), lo·g^i]`` with
    ``g = 10^(1/buckets_per_decade)``; bucket ``0`` is the underflow
    bucket (``<= lo``) and the last bucket collects overflow
    (``> hi``).  Alongside each bucket's count the largest sample seen
    in it is kept, so a quantile query returns a *recorded* value: the
    nearest-rank bucket's max.  That value is exact when the rank
    bucket holds a single distinct sample and otherwise within
    ``relative_error`` of the true order statistic.
    """

    __slots__ = (
        "name",
        "lo",
        "hi",
        "buckets_per_decade",
        "_growth_log10",
        "_num_inner",
        "_lock",
        "_counts",
        "_bucket_max",
        "_count",
        "_sum",
        "_max",
        "_min",
    )

    def __init__(
        self,
        name: str,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> None:
        if not 0 < lo < hi:
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if buckets_per_decade < 1:
            raise ValueError(f"buckets_per_decade must be >= 1, got {buckets_per_decade}")
        self.name = name
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = buckets_per_decade
        self._growth_log10 = 1.0 / buckets_per_decade
        self._num_inner = int(math.ceil(math.log10(hi / lo) * buckets_per_decade))
        total = self._num_inner + 2  # + underflow + overflow
        self._lock = threading.Lock()
        self._counts: List[int] = [0] * total
        self._bucket_max: List[float] = [0.0] * total
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = math.inf

    # -- recording ------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value > self.hi:
            return len(self._counts) - 1
        # floor() edge: a value exactly on a bound belongs to the lower
        # bucket, hence the tiny epsilon pull-back.
        position = math.log10(value / self.lo) * self.buckets_per_decade
        index = int(math.ceil(position - 1e-9))
        return min(max(index, 1), self._num_inner)

    def observe(self, value: float) -> None:
        value = float(value)
        index = self._index(value)
        with self._lock:
            self._counts[index] += 1
            if value > self._bucket_max[index]:
                self._bucket_max[index] = value
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if value < self._min:
                self._min = value

    # -- reading --------------------------------------------------------

    @property
    def relative_error(self) -> float:
        """Worst-case quantile relative error: one bucket's growth."""
        return 10.0 ** self._growth_log10 - 1.0

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    def mean(self) -> float:
        with self._lock:
            return (self._sum / self._count) if self._count else 0.0

    def upper_bound(self, index: int) -> float:
        """Upper bound of bucket ``index`` (inf for the overflow bucket)."""
        if index <= 0:
            return self.lo
        if index >= len(self._counts) - 1:
            return math.inf
        return self.lo * 10.0 ** (index * self._growth_log10)

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile over the full recorded history.

        Returns the max recorded sample of the bucket containing the
        rank — a real observed value, within :attr:`relative_error` of
        the exact order statistic.
        """
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = min(
                self._count - 1,
                max(0, int(round(q / 100.0 * (self._count - 1)))),
            )
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative > rank:
                    return self._bucket_max[index]
            return self._max  # unreachable, counts always sum to _count

    def state(self) -> Dict:
        """Lossless, JSON-serializable snapshot of the full history.

        Round-trips through :meth:`from_state`, so a histogram can
        cross a process boundary (worker → router pipe) and still
        :meth:`merge` exactly — the cluster scatter-gather path relies
        on this.
        """
        with self._lock:
            return {
                "name": self.name,
                "lo": self.lo,
                "hi": self.hi,
                "buckets_per_decade": self.buckets_per_decade,
                "counts": list(self._counts),
                "bucket_max": list(self._bucket_max),
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
                # inf is not JSON-representable; empty histograms carry None.
                "min": self._min if self._count else None,
            }

    @classmethod
    def from_state(cls, state: Dict) -> "Histogram":
        """Reconstruct a histogram from a :meth:`state` snapshot."""
        histogram = cls(
            state["name"],
            lo=state["lo"],
            hi=state["hi"],
            buckets_per_decade=state["buckets_per_decade"],
        )
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(histogram._counts):
            raise ValueError(
                f"bucket count mismatch for '{state['name']}': "
                f"{len(counts)} vs {len(histogram._counts)}"
            )
        histogram._counts = counts
        histogram._bucket_max = [float(m) for m in state["bucket_max"]]
        histogram._count = int(state["count"])
        histogram._sum = float(state["sum"])
        histogram._max = float(state["max"])
        minimum = state["min"]
        histogram._min = math.inf if minimum is None else float(minimum)
        return histogram

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s history into this histogram (same layout)."""
        if (
            other.lo != self.lo
            or other.hi != self.hi
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ValueError("cannot merge histograms with different bucket layouts")
        with other._lock:
            counts = list(other._counts)
            bucket_max = list(other._bucket_max)
            count, total = other._count, other._sum
            other_max, other_min = other._max, other._min
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
                if bucket_max[index] > self._bucket_max[index]:
                    self._bucket_max[index] = bucket_max[index]
            self._count += count
            self._sum += total
            if other_max > self._max:
                self._max = other_max
            if other_min < self._min:
                self._min = other_min

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` for every populated bucket, ascending."""
        with self._lock:
            return [
                (self.upper_bound(index), count)
                for index, count in enumerate(self._counts)
                if count
            ]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "relative_error": self.relative_error,
        }


def _sanitize(name: str) -> str:
    """Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


class MetricsRegistry:
    """Thread-safe named collection of counters, gauges and histograms.

    Instruments are created on first access and shared afterwards::

        registry = MetricsRegistry()
        registry.counter("requests.user").inc()
        registry.histogram("engine.request").observe(0.0021)
        print(registry.exposition())
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: "Dict[str, Counter]" = {}
        self._gauges: "Dict[str, Gauge]" = {}
        self._histograms: "Dict[str, Histogram]" = {}

    # -- instrument access ---------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self,
        name: str,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, lo=lo, hi=hi, buckets_per_decade=buckets_per_decade
                )
            return instrument

    def counters(self) -> Dict[str, Counter]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another worker's registry into this one."""
        for name, counter in other.counters().items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges().items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms().items():
            self.histogram(
                name,
                lo=histogram.lo,
                hi=histogram.hi,
                buckets_per_decade=histogram.buckets_per_decade,
            ).merge(histogram)

    def state(self) -> dict:
        """Lossless, JSON-serializable snapshot of every instrument.

        Unlike :meth:`payload` (a human-facing summary), this is the
        wire format for cross-process aggregation: a worker sends its
        registry state over a pipe, the receiver rebuilds it with
        :meth:`from_state` and folds it in with :meth:`merge` — exact
        counts, sums and bucket histories survive the hop.
        """
        return {
            "namespace": self.namespace,
            "counters": {n: c.value for n, c in self.counters().items()},
            "gauges": {n: g.value for n, g in self.gauges().items()},
            "histograms": {n: h.state() for n, h in self.histograms().items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "MetricsRegistry":
        """Reconstruct a registry from a :meth:`state` snapshot."""
        registry = cls(namespace=state.get("namespace", "repro"))
        for name, value in state.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, value in state.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, histogram_state in state.get("histograms", {}).items():
            restored = Histogram.from_state(histogram_state)
            with registry._lock:
                registry._histograms[name] = restored
        return registry

    # -- export ---------------------------------------------------------

    def payload(self) -> dict:
        """JSON-serializable view of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters().items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges().items())},
            "histograms": {
                n: {
                    **h.summary(),
                    "buckets": [[ub, c] for ub, c in h.nonzero_buckets()],
                }
                for n, h in sorted(self.histograms().items())
            },
        }

    def report(self, meta: Optional[dict] = None) -> dict:
        """The payload wrapped in the ``repro.obs/v1`` envelope."""
        from repro.obs.report import make_report

        return make_report("metrics_registry", self.payload(), meta=meta)

    def exposition(self) -> str:
        """Prometheus text exposition (version 0.0.4 flavor).

        Histograms emit cumulative ``_bucket{le=...}`` series over the
        populated buckets plus ``+Inf``, ``_sum`` and ``_count``;
        counters gain the conventional ``_total`` suffix.
        """
        lines: List[str] = []
        prefix = _sanitize(self.namespace)
        for name, counter in sorted(self.counters().items()):
            metric = f"{prefix}_{_sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self.gauges().items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge.value}")
        for name, histogram in sorted(self.histograms().items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for upper_bound, count in histogram.nonzero_buckets():
                if math.isinf(upper_bound):
                    # The trailing +Inf line below covers the overflow
                    # bucket; emitting it here too would duplicate the
                    # series (invalid Prometheus text format).
                    continue
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{repr(upper_bound)}"}} {cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {histogram.sum}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"


def merge_histograms(histograms: Iterable[Histogram], name: str = "merged") -> Histogram:
    """Merge several same-layout histograms into a fresh one."""
    iterator = iter(histograms)
    try:
        first = next(iterator)
    except StopIteration:
        return Histogram(name)
    merged = Histogram(
        name, lo=first.lo, hi=first.hi, buckets_per_decade=first.buckets_per_decade
    )
    merged.merge(first)
    for histogram in iterator:
        merged.merge(histogram)
    return merged
