"""repro.obs — the observability subsystem.

Cross-cutting measurement for the training stack, mirroring what
:mod:`repro.engine.telemetry` provides for serving:

- :class:`OpProfiler` — context-manager autograd op profiler (per-op
  wall time, bytes, FLOP estimates, module-scope attribution; zero
  overhead when inactive);
- :func:`write_chrome_trace` / :func:`format_top_table` — export a
  profile as a ``chrome://tracing`` timeline or a top-K text table;
- :class:`RunMetrics` — per-epoch JSONL training metrics (loss,
  accuracy, epoch wall time, gradient norm, update/param ratios, RSS
  high-water mark);
- :class:`GradientHealthMonitor` — NaN/Inf/vanishing gradient checks
  that raise or warn;
- :class:`Tracer` / :func:`span` — request-scoped serving trace spans
  with contextvars propagation, head + slow/error sampling, a JSONL
  span log and Chrome trace export (no-op when no tracer is
  installed);
- :class:`MetricsRegistry` — thread-safe counters, gauges and
  mergeable fixed-log-bucket histograms with Prometheus text
  exposition (the storage behind the engine's ``Telemetry``);
- :func:`make_report` — the unified JSON report envelope shared by
  profiles, run metrics and the serving telemetry snapshot
  (:func:`make_serving_report` bundles the whole serving surface).

CLI entry points: ``repro profile``, ``repro train --metrics-out`` and
``repro serve-bench --trace-out/--metrics-out/--slow-ms``.
"""

from repro.obs.grad_health import (
    GradientHealthError,
    GradientHealthMonitor,
    GradIssue,
)
from repro.obs.metrics_registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histograms,
)
from repro.obs.profiler import (
    OpProfiler,
    OpStat,
    attach_scopes,
    get_active_profiler,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    is_report,
    make_report,
    make_serving_report,
    write_report,
)
from repro.obs.run_metrics import RECORD_SCHEMA, RunMetrics, rss_high_water_mb
from repro.obs.spans import (
    SPAN_SCHEMA,
    Span,
    Tracer,
    current_span,
    get_active_tracer,
    span,
    tracing_enabled,
)
from repro.obs.trace import (
    chrome_trace_events,
    format_top_table,
    span_chrome_events,
    stats_payload,
    write_chrome_trace,
    write_span_chrome_trace,
)

__all__ = [
    "OpProfiler",
    "OpStat",
    "attach_scopes",
    "get_active_profiler",
    "chrome_trace_events",
    "write_chrome_trace",
    "format_top_table",
    "stats_payload",
    "RunMetrics",
    "rss_high_water_mb",
    "RECORD_SCHEMA",
    "GradientHealthMonitor",
    "GradientHealthError",
    "GradIssue",
    "REPORT_SCHEMA",
    "make_report",
    "make_serving_report",
    "is_report",
    "write_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_histograms",
    "SPAN_SCHEMA",
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_active_tracer",
    "tracing_enabled",
    "span_chrome_events",
    "write_span_chrome_trace",
]
