"""repro.obs — the observability subsystem.

Cross-cutting measurement for the training stack, mirroring what
:mod:`repro.engine.telemetry` provides for serving:

- :class:`OpProfiler` — context-manager autograd op profiler (per-op
  wall time, bytes, FLOP estimates, module-scope attribution; zero
  overhead when inactive);
- :func:`write_chrome_trace` / :func:`format_top_table` — export a
  profile as a ``chrome://tracing`` timeline or a top-K text table;
- :class:`RunMetrics` — per-epoch JSONL training metrics (loss,
  accuracy, epoch wall time, gradient norm, update/param ratios, RSS
  high-water mark);
- :class:`GradientHealthMonitor` — NaN/Inf/vanishing gradient checks
  that raise or warn;
- :func:`make_report` — the unified JSON report envelope shared by
  profiles, run metrics and the serving telemetry snapshot.

CLI entry points: ``repro profile`` and ``repro train --metrics-out``.
"""

from repro.obs.grad_health import (
    GradientHealthError,
    GradientHealthMonitor,
    GradIssue,
)
from repro.obs.profiler import (
    OpProfiler,
    OpStat,
    attach_scopes,
    get_active_profiler,
)
from repro.obs.report import REPORT_SCHEMA, is_report, make_report, write_report
from repro.obs.run_metrics import RECORD_SCHEMA, RunMetrics, rss_high_water_mb
from repro.obs.trace import (
    chrome_trace_events,
    format_top_table,
    stats_payload,
    write_chrome_trace,
)

__all__ = [
    "OpProfiler",
    "OpStat",
    "attach_scopes",
    "get_active_profiler",
    "chrome_trace_events",
    "write_chrome_trace",
    "format_top_table",
    "stats_payload",
    "RunMetrics",
    "rss_high_water_mb",
    "RECORD_SCHEMA",
    "GradientHealthMonitor",
    "GradientHealthError",
    "GradIssue",
    "REPORT_SCHEMA",
    "make_report",
    "is_report",
    "write_report",
]
