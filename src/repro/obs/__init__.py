"""repro.obs — the observability subsystem.

Cross-cutting measurement for the training stack, mirroring what
:mod:`repro.engine.telemetry` provides for serving:

- :class:`OpProfiler` — context-manager autograd op profiler (per-op
  wall time, bytes, FLOP estimates, module-scope attribution; zero
  overhead when inactive);
- :func:`write_chrome_trace` / :func:`format_top_table` — export a
  profile as a ``chrome://tracing`` timeline or a top-K text table;
- :class:`RunMetrics` — per-epoch JSONL training metrics (loss,
  accuracy, epoch wall time, gradient norm, update/param ratios, RSS
  high-water mark);
- :class:`GradientHealthMonitor` — NaN/Inf/vanishing gradient checks
  that raise or warn;
- :class:`Tracer` / :func:`span` — request-scoped serving trace spans
  with contextvars propagation, head + slow/error sampling, a JSONL
  span log and Chrome trace export (no-op when no tracer is
  installed);
- :class:`MetricsRegistry` — thread-safe counters, gauges and
  mergeable fixed-log-bucket histograms with Prometheus text
  exposition (the storage behind the engine's ``Telemetry``);
- :func:`make_report` — the unified JSON report envelope shared by
  profiles, run metrics and the serving telemetry snapshot
  (:func:`make_serving_report` bundles the whole serving surface);
- :class:`RemoteSpanRecorder` / :func:`adopt_remote_spans` — the
  cross-process tracing bridge: workers record spans tracer-free, the
  router stitches them into the live trace (see docs/observability.md,
  "Distributed tracing");
- :class:`TimeSeriesStore` — bounded ring-buffer series scraped from
  metric registries, the substrate SLOs and drift detectors query;
- :class:`SLOMonitor` / :class:`SLOSpec` — declarative objectives with
  multi-window burn-rate evaluation and transition-based alerts;
- :class:`ScoreDistributionDetector` (PSI) /
  :class:`RateDegradationDetector` / :class:`GradientTrendDetector` —
  streaming drift and degradation watches over an :class:`AlertLog`;
- :func:`build_ops_report` / :func:`run_ops_session` — the unified
  fleet ops report (metrics + SLO + alerts + traces + online health)
  as JSON and a self-contained HTML dashboard.

CLI entry points: ``repro profile``, ``repro train --metrics-out``,
``repro serve-bench --trace-out/--metrics-out/--slow-ms``,
``repro online-bench --metrics-out`` and ``repro obs-report``.
"""

from repro.obs.alerts import ALERT_SCHEMA, AlertEvent, AlertLog
from repro.obs.drift import (
    GradientTrendDetector,
    RateDegradationDetector,
    ScoreDistributionDetector,
    psi,
)

from repro.obs.grad_health import (
    GradientHealthError,
    GradientHealthMonitor,
    GradIssue,
)
from repro.obs.metrics_registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histograms,
)
from repro.obs.profiler import (
    OpProfiler,
    OpStat,
    attach_scopes,
    get_active_profiler,
)
from repro.obs.ops_report import (
    OPS_REPORT_KIND,
    build_ops_report,
    render_ops_html,
    trace_summaries,
    write_ops_report,
)
from repro.obs.ops_session import OpsSessionConfig, run_ops_session
from repro.obs.report import (
    REPORT_SCHEMA,
    is_report,
    make_report,
    make_serving_report,
    write_report,
)
from repro.obs.run_metrics import (
    RECORD_SCHEMA,
    JsonlWriter,
    RunMetrics,
    rss_high_water_mb,
)
from repro.obs.slo import SLOMonitor, SLOSpec, SLOStatus
from repro.obs.spans import (
    REMOTE_SPAN_SCHEMA,
    SPAN_SCHEMA,
    RemoteSpanRecorder,
    Span,
    Tracer,
    adopt_remote_spans,
    current_span,
    get_active_tracer,
    span,
    trace_context,
    tracing_enabled,
)
from repro.obs.timeseries import HISTOGRAM_KEYS, TimeSeriesStore
from repro.obs.trace import (
    chrome_trace_events,
    format_top_table,
    span_chrome_events,
    stats_payload,
    write_chrome_trace,
    write_span_chrome_trace,
)

__all__ = [
    "OpProfiler",
    "OpStat",
    "attach_scopes",
    "get_active_profiler",
    "chrome_trace_events",
    "write_chrome_trace",
    "format_top_table",
    "stats_payload",
    "RunMetrics",
    "rss_high_water_mb",
    "RECORD_SCHEMA",
    "GradientHealthMonitor",
    "GradientHealthError",
    "GradIssue",
    "REPORT_SCHEMA",
    "make_report",
    "make_serving_report",
    "is_report",
    "write_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_histograms",
    "SPAN_SCHEMA",
    "REMOTE_SPAN_SCHEMA",
    "Span",
    "Tracer",
    "RemoteSpanRecorder",
    "adopt_remote_spans",
    "trace_context",
    "span",
    "current_span",
    "get_active_tracer",
    "tracing_enabled",
    "span_chrome_events",
    "write_span_chrome_trace",
    "ALERT_SCHEMA",
    "AlertEvent",
    "AlertLog",
    "TimeSeriesStore",
    "HISTOGRAM_KEYS",
    "SLOSpec",
    "SLOStatus",
    "SLOMonitor",
    "psi",
    "ScoreDistributionDetector",
    "RateDegradationDetector",
    "GradientTrendDetector",
    "JsonlWriter",
    "OPS_REPORT_KIND",
    "build_ops_report",
    "render_ops_html",
    "trace_summaries",
    "write_ops_report",
    "OpsSessionConfig",
    "run_ops_session",
]
