"""Structured alert events and a thread-safe alert log.

Every monitoring component that detects a condition worth a human's
attention — an SLO burning through its error budget, a drifting score
distribution, a degrading cache hit-rate — emits an
:class:`AlertEvent` into a shared :class:`AlertLog`.  Events are plain
data (``repro.obs/alert/v1``), so they serialize into the unified ops
report and can be asserted on exactly in tests.

Alerting is **transition-based**: detectors emit one event when a
condition starts (``*_breach`` / ``drift`` / ``degradation``) and one
when it clears (``*_recovered``), never one event per evaluation tick
— a monitor polled every second does not page every second.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Schema tag on every serialized alert event.
ALERT_SCHEMA = "repro.obs/alert/v1"

#: Severity levels, in increasing order of urgency.
SEVERITIES = ("info", "warn", "page")


@dataclass(frozen=True)
class AlertEvent:
    """One detected condition transition.

    ``kind`` names the condition class (``slo_breach``,
    ``slo_recovered``, ``drift``, ``drift_recovered``, ``degradation``,
    ``degradation_recovered``, ...); ``source`` names the spec or
    detector that raised it, so ``(kind, source)`` identifies exactly
    which alert fired.
    """

    kind: str
    source: str
    severity: str
    message: str
    ts: float
    details: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity '{self.severity}' (choose from {SEVERITIES})"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": ALERT_SCHEMA,
            "kind": self.kind,
            "source": self.source,
            "severity": self.severity,
            "message": self.message,
            "ts": self.ts,
            "details": self.details,
        }


class AlertLog:
    """Append-only, thread-safe collection of :class:`AlertEvent`.

    Bounded at ``max_events`` (oldest dropped first) so a misbehaving
    detector cannot grow memory without bound.  When ``jsonl_path`` is
    set every event is additionally appended to that file and flushed,
    so alerts survive the process.
    """

    def __init__(
        self, max_events: int = 10_000, jsonl_path: Optional[str] = None
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.jsonl_path = jsonl_path
        self._lock = threading.Lock()
        self._events: List[AlertEvent] = []
        self._dropped = 0
        self._handle = None

    def emit(
        self,
        kind: str,
        source: str,
        severity: str,
        message: str,
        ts: Optional[float] = None,
        **details: Any,
    ) -> AlertEvent:
        event = AlertEvent(
            kind=kind,
            source=source,
            severity=severity,
            message=message,
            ts=time.time() if ts is None else float(ts),
            details=details,
        )
        with self._lock:
            self._events.append(event)
            while len(self._events) > self.max_events:
                self._events.pop(0)
                self._dropped += 1
            if self.jsonl_path is not None:
                if self._handle is None:
                    self._handle = open(self.jsonl_path, "a", encoding="utf-8")
                self._handle.write(json.dumps(event.as_dict()) + "\n")
                self._handle.flush()
        return event

    def events(
        self, kind: Optional[str] = None, source: Optional[str] = None
    ) -> List[AlertEvent]:
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [event for event in events if event.kind == kind]
        if source is not None:
            events = [event for event in events if event.source == source]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def payload(self) -> Dict[str, Any]:
        """JSON-friendly summary plus the retained events."""
        with self._lock:
            events = list(self._events)
            dropped = self._dropped
        by_kind: Dict[str, int] = {}
        by_severity: Dict[str, int] = {}
        for event in events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            by_severity[event.severity] = by_severity.get(event.severity, 0) + 1
        return {
            "total": len(events),
            "dropped": dropped,
            "by_kind": by_kind,
            "by_severity": by_severity,
            "events": [event.as_dict() for event in events],
        }
