"""Streaming drift and degradation detectors.

Three monitors for "the system still works, but the *behavior* moved":

- :class:`ScoreDistributionDetector` — population stability index
  (PSI) of recently served recommendation scores against a frozen
  reference window.  GroupSA's latent-voting scores shift as the
  online trainer ingests a drifting stream; PSI above ~0.25 is the
  classic "distribution moved, retrain/investigate" boundary.
- :class:`RateDegradationDetector` — a windowed mean floor over any
  ratio series (ScoreCache hit-rate, ANN recall proxy): alerts when
  the trailing mean sinks below the floor.
- :class:`GradientTrendDetector` — half-over-half growth of a
  training-health series (gradient norm, online loss): alerts when
  the recent half of the window grew by ``growth_ratio`` over the
  older half, the smooth-explosion case a NaN check cannot see.

All detectors are transition-based against a shared
:class:`~repro.obs.alerts.AlertLog` (one event when the condition
starts, one when it clears) and return a JSON-ready status dict from
every ``evaluate`` call so the ops report can embed the latest state.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Sequence

import numpy as np

from repro.obs.alerts import AlertLog
from repro.obs.timeseries import TimeSeriesStore


def psi(
    reference: np.ndarray, current: np.ndarray, bins: int = 10
) -> float:
    """Population stability index of ``current`` against ``reference``.

    Bin edges are equal-frequency quantiles of the reference sample, so
    each reference bin holds ~1/bins of its mass; PSI is then
    ``sum((c - r) * ln(c / r))`` over the binned fractions, with both
    sides floored at a small epsilon so empty bins stay finite.
    0 = identical; common rules of thumb: < 0.1 stable, 0.1-0.25
    moderate shift, > 0.25 major shift.
    """
    reference = np.asarray(reference, dtype=np.float64).ravel()
    current = np.asarray(current, dtype=np.float64).ravel()
    if reference.size == 0 or current.size == 0:
        raise ValueError("psi needs non-empty reference and current samples")
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")
    quantiles = np.linspace(0.0, 1.0, bins + 1)[1:-1]
    edges = np.quantile(reference, quantiles)
    ref_counts = np.bincount(np.searchsorted(edges, reference), minlength=bins)
    cur_counts = np.bincount(np.searchsorted(edges, current), minlength=bins)
    epsilon = 1e-6
    ref_frac = np.maximum(ref_counts / reference.size, epsilon)
    cur_frac = np.maximum(cur_counts / current.size, epsilon)
    return float(np.sum((cur_frac - ref_frac) * np.log(cur_frac / ref_frac)))


class ScoreDistributionDetector:
    """PSI of a rolling score window against a frozen reference.

    Feed it the top-K scores of served requests via :meth:`observe`;
    :meth:`set_reference` freezes the healthy baseline (typically the
    first window after deploy).  :meth:`evaluate` computes PSI of the
    current rolling window and raises a ``drift`` alert on the upward
    threshold crossing.
    """

    def __init__(
        self,
        name: str = "score-drift",
        threshold: float = 0.25,
        bins: int = 10,
        window: int = 2048,
        min_samples: int = 50,
        severity: str = "warn",
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.name = name
        self.threshold = float(threshold)
        self.bins = int(bins)
        self.min_samples = int(min_samples)
        self.severity = severity
        self._reference: Optional[np.ndarray] = None
        self._current: Deque[float] = deque(maxlen=int(window))
        self._drifted = False

    @property
    def has_reference(self) -> bool:
        return self._reference is not None

    def set_reference(self, values: Sequence[float]) -> None:
        reference = np.asarray(values, dtype=np.float64).ravel()
        if reference.size < self.min_samples:
            raise ValueError(
                f"reference needs >= {self.min_samples} samples, "
                f"got {reference.size}"
            )
        self._reference = reference

    def observe(self, values: Sequence[float]) -> None:
        """Add served scores to the rolling current window.

        Before a reference is frozen, observations accumulate toward
        :meth:`freeze_reference_if_ready` instead of toward drift.
        """
        self._current.extend(float(value) for value in np.ravel(values))

    def freeze_reference_if_ready(self) -> bool:
        """Adopt the buffered window as reference once it is big enough;
        clears the buffer so reference and current never overlap."""
        if self._reference is not None:
            return True
        if len(self._current) < self.min_samples:
            return False
        self.set_reference(list(self._current))
        self._current.clear()
        return True

    def evaluate(
        self, alerts: Optional[AlertLog] = None, now: Optional[float] = None
    ) -> Dict[str, Any]:
        now = time.time() if now is None else float(now)
        status: Dict[str, Any] = {
            "name": self.name,
            "threshold": self.threshold,
            "reference_samples": (
                0 if self._reference is None else int(self._reference.size)
            ),
            "current_samples": len(self._current),
            "psi": None,
            "drifted": self._drifted,
        }
        if self._reference is None or len(self._current) < self.min_samples:
            return status
        value = psi(self._reference, np.asarray(self._current), bins=self.bins)
        drifted = value >= self.threshold
        status["psi"] = value
        status["drifted"] = drifted
        if alerts is not None:
            if drifted and not self._drifted:
                alerts.emit(
                    "drift",
                    self.name,
                    self.severity,
                    f"score distribution drifted: PSI {value:.3f} >= "
                    f"{self.threshold}",
                    ts=now,
                    psi=value,
                    threshold=self.threshold,
                )
            elif self._drifted and not drifted:
                alerts.emit(
                    "drift_recovered",
                    self.name,
                    "info",
                    f"score distribution back in range: PSI {value:.3f}",
                    ts=now,
                    psi=value,
                )
        self._drifted = drifted
        return status


class RateDegradationDetector:
    """Windowed-mean floor over a ratio series (hit-rate, recall proxy)."""

    def __init__(
        self,
        name: str,
        series: str,
        floor: float,
        window: float = 120.0,
        min_samples: int = 3,
        severity: str = "warn",
    ) -> None:
        self.name = name
        self.series = series
        self.floor = float(floor)
        self.window = float(window)
        self.min_samples = int(min_samples)
        self.severity = severity
        self._degraded = False

    def evaluate(
        self,
        store: TimeSeriesStore,
        alerts: Optional[AlertLog] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        now = time.time() if now is None else float(now)
        points = store.window(self.series, self.window, now)
        mean = (
            float(np.mean([value for __, value in points])) if points else None
        )
        degraded = (
            len(points) >= self.min_samples
            and mean is not None
            and mean < self.floor
        )
        if alerts is not None:
            if degraded and not self._degraded:
                alerts.emit(
                    "degradation",
                    self.name,
                    self.severity,
                    f"{self.series} degraded: windowed mean {mean:.3f} < "
                    f"floor {self.floor}",
                    ts=now,
                    series=self.series,
                    mean=mean,
                    floor=self.floor,
                )
            elif self._degraded and not degraded:
                alerts.emit(
                    "degradation_recovered",
                    self.name,
                    "info",
                    f"{self.series} recovered",
                    ts=now,
                    series=self.series,
                    mean=mean,
                )
        self._degraded = degraded
        return {
            "name": self.name,
            "series": self.series,
            "floor": self.floor,
            "mean": mean,
            "samples": len(points),
            "degraded": degraded,
        }


class GradientTrendDetector:
    """Half-over-half growth watch on a training-health series."""

    def __init__(
        self,
        name: str = "grad-trend",
        series: str = "online.grad_norm",
        window: float = 300.0,
        growth_ratio: float = 2.0,
        min_samples: int = 6,
        severity: str = "warn",
    ) -> None:
        if growth_ratio <= 1.0:
            raise ValueError(
                f"growth_ratio must be > 1, got {growth_ratio}"
            )
        self.name = name
        self.series = series
        self.window = float(window)
        self.growth_ratio = float(growth_ratio)
        self.min_samples = int(min_samples)
        self.severity = severity
        self._trending = False

    def evaluate(
        self,
        store: TimeSeriesStore,
        alerts: Optional[AlertLog] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        now = time.time() if now is None else float(now)
        points = store.window(self.series, self.window, now)
        ratio = None
        trending = False
        if len(points) >= self.min_samples:
            values = np.asarray([value for __, value in points])
            half = values.size // 2
            older = float(np.mean(values[:half]))
            recent = float(np.mean(values[half:]))
            if older > 0:
                ratio = recent / older
                trending = ratio >= self.growth_ratio
        if alerts is not None:
            if trending and not self._trending:
                alerts.emit(
                    "trend",
                    self.name,
                    self.severity,
                    f"{self.series} growing: recent/older mean ratio "
                    f"{ratio:.2f} >= {self.growth_ratio}",
                    ts=now,
                    series=self.series,
                    ratio=ratio,
                )
            elif self._trending and not trending:
                alerts.emit(
                    "trend_recovered",
                    self.name,
                    "info",
                    f"{self.series} growth subsided",
                    ts=now,
                    series=self.series,
                    ratio=ratio,
                )
        self._trending = trending
        return {
            "name": self.name,
            "series": self.series,
            "growth_ratio": self.growth_ratio,
            "ratio": ratio,
            "samples": len(points),
            "trending": trending,
        }
