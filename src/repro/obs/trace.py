"""Profile rendering: Chrome trace JSON and the human top-K table.

The Chrome format is the ``chrome://tracing`` / Perfetto "JSON Array"
flavor: a ``traceEvents`` list of complete ("X") events with
microsecond timestamps.  Load the file via chrome://tracing ("Load") or
https://ui.perfetto.dev to see the op timeline nested under module
scopes.

Two producers share the format: the autograd :class:`OpProfiler`
(:func:`write_chrome_trace`) and the serving-side request tracer
(:func:`write_span_chrome_trace` — each kept trace gets its own track,
spans nest by wall time so the service → engine → batcher → forward
tree reads directly off the timeline).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.profiler import OpProfiler, OpStat
from repro.obs.spans import Span, Tracer

#: tid layout: scopes on one row, forward ops on another, backward on a
#: third, so the three layers stack visually in the viewer.
_TRACK_IDS = {"scope": 0, "op": 1, "backward": 2}


def chrome_trace_events(profiler: OpProfiler) -> List[Dict[str, Any]]:
    """Convert recorded events into Chrome trace dicts."""
    events = profiler.events
    if not events:
        return []
    origin = min(event.start for event in events)
    rows: List[Dict[str, Any]] = []
    for event in events:
        args: Dict[str, Any] = {"scope": event.scope}
        if event.cat == "op":
            args.update(
                bytes_in=event.bytes_in,
                bytes_out=event.bytes_out,
                flops=event.flops,
            )
        rows.append(
            {
                "name": event.name,
                "cat": event.cat,
                "ph": "X",
                "ts": (event.start - origin) * 1e6,
                "dur": event.duration * 1e6,
                "pid": 0,
                "tid": _TRACK_IDS.get(event.cat, 3),
                "args": args,
            }
        )
    return rows


def write_chrome_trace(profiler: OpProfiler, path: str) -> int:
    """Write the trace file; returns the number of events written."""
    rows = chrome_trace_events(profiler)
    document = {
        "traceEvents": rows,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "dropped_events": profiler.dropped_events,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(rows)


def span_chrome_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Convert request spans into Chrome trace dicts.

    Traces map to tracks (``tid``) in order of first appearance, so
    concurrent requests stack as parallel rows in the viewer; span
    attributes, ids and status land in the ``args`` panel.
    """
    if not spans:
        return []
    origin = min(item.start for item in spans)
    track_by_trace: Dict[str, int] = {}
    rows: List[Dict[str, Any]] = []
    for item in sorted(spans, key=lambda entry: entry.start):
        track = track_by_trace.setdefault(item.trace_id, len(track_by_trace))
        rows.append(
            {
                "name": item.name,
                "cat": "span" if item.status == "ok" else "span,error",
                "ph": "X",
                "ts": (item.start - origin) * 1e6,
                "dur": item.duration * 1e6,
                "pid": 0,
                "tid": track,
                "args": {
                    "trace_id": item.trace_id,
                    "span_id": item.span_id,
                    "parent_id": item.parent_id,
                    "status": item.status,
                    "thread": item.thread,
                    **item.attrs,
                },
            }
        )
    return rows


def write_span_chrome_trace(
    source: Union[Tracer, Sequence[Span]], path: str
) -> int:
    """Write kept request spans as a Chrome trace; returns event count."""
    spans = source.finished_spans() if isinstance(source, Tracer) else source
    rows = span_chrome_events(spans)
    document = {
        "traceEvents": rows,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.spans"},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(rows)


def format_top_table(
    stats: Sequence[OpStat],
    k: int = 15,
    sort_by: str = "self_s",
) -> str:
    """Render the top-``k`` (op, scope) rows as an aligned text table.

    ``sort_by`` is any numeric :class:`OpStat` field (``self_s``,
    ``total_s``, ``calls``, ``flops``, ``bytes_in``...).
    """
    rows = sorted(stats, key=lambda s: getattr(s, sort_by), reverse=True)[:k]
    total_self = sum(s.self_s for s in stats) or 1.0
    header = (
        f"{'op':<14} {'cat':<8} {'scope':<44} {'calls':>7} "
        f"{'total_ms':>9} {'self_ms':>9} {'%self':>6} {'MFLOP':>8} {'MB_in':>8} {'MB_out':>8}"
    )
    lines = [header, "-" * len(header)]
    for stat in rows:
        scope = stat.scope if len(stat.scope) <= 44 else "…" + stat.scope[-43:]
        lines.append(
            f"{stat.name:<14} {stat.cat:<8} {scope:<44} {stat.calls:>7d} "
            f"{stat.total_s * 1e3:>9.2f} {stat.self_s * 1e3:>9.2f} "
            f"{100.0 * stat.self_s / total_self:>6.1f} "
            f"{stat.flops / 1e6:>8.2f} "
            f"{stat.bytes_in / 1e6:>8.2f} {stat.bytes_out / 1e6:>8.2f}"
        )
    return "\n".join(lines)


def stats_payload(stats: Iterable[OpStat], top_k: int = 25) -> Dict[str, Any]:
    """JSON-ready view of aggregated stats for the unified report."""
    ordered = sorted(stats, key=lambda s: s.self_s, reverse=True)
    return {
        "top_ops": [stat.as_dict() for stat in ordered[:top_k]],
        "num_distinct_ops": len(ordered),
    }
