"""Command-line interface: generate data, train, evaluate, recommend.

Examples::

    python -m repro.cli generate --preset yelp --scale 0.01 --out world.npz
    python -m repro.cli train --data world.npz --out model.npz --group-epochs 30
    python -m repro.cli train --data world.npz --out model.npz \
        --checkpoint-dir ckpts --resume
    python -m repro.cli train --data world.npz --out model.npz \
        --metrics-out run.jsonl --grad-health raise
    python -m repro.cli evaluate --data world.npz --model model.npz --task group
    python -m repro.cli recommend --data world.npz --model model.npz --group 3 -k 5
    python -m repro.cli serve-bench --data world.npz --model model.npz --requests 200
    python -m repro.cli serve-bench --data world.npz --model model.npz \
        --workers 1,2,4 --shards 4 --json report.json
    python -m repro.cli serve-bench --data world.npz --model model.npz \
        --trace-out spans_trace.json --span-log spans.jsonl \
        --metrics-out metrics.prom --slow-ms 50 --sample-rate 0.1
    python -m repro.cli profile --preset yelp --scale 0.01 \
        --trace-out trace.json --report-out profile.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.core.config import GroupSAConfig
from repro.data.io import load_dataset, save_dataset
from repro.data.loaders import GroupBatcher
from repro.data.presets import douban_like, yelp_like
from repro.data.splits import split_interactions
from repro.data.stats import table1_statistics
from repro.evaluation.protocol import evaluate, prepare_task
from repro.evaluation.ranking import top_k_items
from repro.persistence import load_model, save_model
from repro.training.callbacks import print_progress
from repro.training.trainer import TrainingConfig
from repro.training.two_stage import build_model, fit_groupsa, train_groupsa


def _command_generate(args: argparse.Namespace) -> int:
    presets = {"yelp": yelp_like, "douban": douban_like}
    world = presets[args.preset](scale=args.scale, seed=args.seed)
    save_dataset(world.dataset, args.out)
    print(f"wrote {args.out}")
    for key, value in table1_statistics(world.dataset).items():
        print(f"  {key:35s} {value:10.2f}")
    return 0


def _command_train(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    dataset = load_dataset(args.data)
    split = split_interactions(dataset, rng=args.seed)
    config = GroupSAConfig(
        embedding_dim=args.dim,
        num_attention_layers=args.layers,
        blend_weight=args.blend_weight,
        top_h=args.top_h,
        dtype=args.dtype,
    )
    training = TrainingConfig(
        user_epochs=args.user_epochs,
        group_epochs=args.group_epochs,
        learning_rate=args.lr,
        seed=args.seed,
        sparse_grads=not args.dense_grads,
        fused_ops=not args.no_fused_ops,
    )
    monitor = None
    if args.grad_health != "off":
        from repro.obs import GradientHealthMonitor

        monitor = GradientHealthMonitor(on_nonfinite=args.grad_health)
    callback = print_progress if args.progress else None
    metrics = None
    if args.metrics_out:
        from repro.obs import RunMetrics

        metrics = RunMetrics(args.metrics_out, chain=callback, grad_monitor=monitor)
        callback = metrics
    try:
        model, __, history = train_groupsa(
            split,
            config,
            training,
            callback=callback,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            keep_last=args.keep_last,
            grad_monitor=monitor,
        )
    finally:
        if metrics is not None:
            metrics.close()
    if metrics is not None:
        print(f"wrote {args.metrics_out} ({len(metrics.records)} epoch records)")
    save_model(model, args.out)
    print(
        f"wrote {args.out} "
        f"(final user loss {history.final_loss('user'):.4f}, "
        f"group loss {history.final_loss('group'):.4f})"
    )
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.data)
    split = split_interactions(dataset, rng=args.seed)
    model = load_model(args.model)
    full = split.full
    if args.task == "group":
        batcher = GroupBatcher(split.train)
        task = prepare_task(
            split.test.group_item, full.group_items(), full.num_items,
            num_candidates=args.candidates, rng=args.seed,
        )
        result = evaluate(
            lambda groups, items: model.score_group_items(batcher.batch(groups), items),
            task,
        )
    else:
        task = prepare_task(
            split.test.user_item, full.user_items(), full.num_items,
            num_candidates=args.candidates, rng=args.seed,
        )
        result = evaluate(model.score_user_items, task)
    for metric, value in result.metrics.items():
        print(f"{metric:10s} {value:.4f}")
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.data)
    model = load_model(args.model)
    batcher = GroupBatcher(dataset)
    if args.group >= dataset.num_groups or args.group < 0:
        print(f"error: group {args.group} out of range", file=sys.stderr)
        return 2
    top = top_k_items(
        lambda groups, items: model.score_group_items(batcher.batch(groups), items),
        entity=args.group,
        num_items=dataset.num_items,
        k=args.k,
        exclude=dataset.group_items()[args.group],
    )
    members = dataset.group_members[args.group]
    print(f"group #{args.group} (members {members.tolist()})")
    print(f"top-{args.k}: {top.tolist()}")
    gamma = model.member_attention(batcher.batch([args.group]), np.array([int(top[0])]))
    print("voting weights for the top item:")
    for member, weight in zip(members, gamma[0][: members.size]):
        print(f"  user #{member}: {weight:.3f}")
    return 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    from repro.engine import EngineConfig, InferenceEngine, benchmark_user_serving
    from repro.obs.spans import Tracer
    from repro.obs.trace import write_span_chrome_trace
    from repro.serving import RecommendationService

    dataset = load_dataset(args.data)
    service = RecommendationService.from_checkpoint(args.model, dataset)
    engine = InferenceEngine(
        service.model,
        dataset,
        config=EngineConfig(
            max_batch_size=args.max_batch,
            flush_interval=args.flush_ms / 1000.0,
            score_cache_budget_mb=args.cache_mb,
            retrieval=args.retrieval,
            ann_nlist=args.nlist,
            ann_nprobe=args.nprobe,
            ann_candidates=args.ann_candidates,
        ),
    )
    tracer = None
    if args.trace_out or args.span_log:
        tracer = Tracer(
            sample_rate=args.sample_rate,
            slow_ms=args.slow_ms,
            jsonl_path=args.span_log,
        ).install()
    rng = np.random.default_rng(args.seed)
    users = rng.integers(0, dataset.num_users, size=args.requests)
    try:
        report = benchmark_user_serving(
            service, engine, users, k=args.k, clients=args.clients
        )
        report["retrieval"] = args.retrieval
    finally:
        if tracer is not None:
            tracer.uninstall()
        engine.close()
    for mode in ("direct", "engine"):
        side = report[mode]
        print(
            f"{mode:8s} {side['rps']:10.1f} req/s   "
            f"p50 {side['p50_ms']:8.3f} ms   p99 {side['p99_ms']:8.3f} ms"
        )
    print(f"speedup  {report['speedup_rps']:10.1f}x (requests/second)")
    if args.workers:
        from repro.cluster import benchmark_sharded_scaling

        worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
        scaling = benchmark_sharded_scaling(
            service.model,
            dataset,
            users,
            worker_counts,
            k=args.k,
            num_shards=args.shards,
            clients=args.clients,
            dataset_path=args.data,
            retrieval=args.retrieval,
            ann_nprobe=args.nprobe,
            ann_nlist=args.nlist,
            ann_candidates=args.ann_candidates,
        )
        report["sharded_scaling"] = scaling
        for point in scaling["points"]:
            print(
                f"workers={point['workers']:<3d} shards={point['shards']:<3d} "
                f"{point['rps']:10.1f} req/s   "
                f"p50 {point['p50_ms']:8.3f} ms   p99 {point['p99_ms']:8.3f} ms   "
                f"x{point['speedup_vs_first']:.2f} vs {scaling['points'][0]['workers']} worker(s)"
            )
    if tracer is not None:
        report["tracing"] = tracer.summary()
        kept = report["tracing"]["traces_kept"]
        print(
            f"tracing  kept {kept}/{report['tracing']['traces_started']} traces "
            f"({report['tracing']['kept_slow']} slow, "
            f"{report['tracing']['kept_error']} errored)"
        )
        if args.trace_out:
            written = write_span_chrome_trace(tracer, args.trace_out)
            print(f"wrote {args.trace_out} ({written} span events)")
        if args.span_log:
            tracer.close()
            print(f"wrote {args.span_log}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(engine.telemetry.exposition())
        print(f"wrote {args.metrics_out}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def _command_online_bench(args: argparse.Namespace) -> int:
    import tempfile

    from repro.online.bench import run_online_swap_bench
    from repro.training.two_stage import build_model as build_groupsa

    if args.data:
        dataset = load_dataset(args.data)
    else:
        presets = {"yelp": yelp_like, "douban": douban_like}
        dataset = presets[args.preset](scale=args.scale, seed=args.seed).dataset
    split = split_interactions(dataset, rng=args.seed)
    if args.model:
        model = load_model(args.model)
    else:
        model, __ = build_groupsa(split, GroupSAConfig(embedding_dim=args.dim))
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-online-bench-")
    report = run_online_swap_bench(
        model,
        dataset,
        workdir,
        num_requests=args.requests,
        clients=args.clients,
        k=args.k,
        num_events=args.events,
        events_per_version=args.events_per_version,
        batch_size=args.batch_size,
        keep_last=args.keep_last,
        poll_interval=args.poll_ms / 1000.0,
        seed=args.seed,
        metrics_path=args.metrics_out,
    )
    for side in ("baseline_idle", "baseline", "with_swaps"):
        summary = report[side]
        print(
            f"{side:10s} {summary['rps']:10.1f} req/s   "
            f"p50 {summary['p50_ms']:8.3f} ms   p99 {summary['p99_ms']:8.3f} ms"
        )
    print(
        f"p99 ratio  {report['p99_ratio']:.2f}x   "
        f"swaps applied {report['swaps_applied']}   "
        f"versions published {report['versions_published']}   "
        f"failed requests {len(report['failed_requests'])}"
    )
    if args.json:
        import os

        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if args.metrics_out:
        print(f"wrote {args.metrics_out}")
    return 0


def _command_obs_report(args: argparse.Namespace) -> int:
    import tempfile

    from repro.obs.ops_report import write_ops_report
    from repro.obs.ops_session import OpsSessionConfig, run_ops_session
    from repro.training.two_stage import build_model as build_groupsa

    if args.data:
        dataset = load_dataset(args.data)
    else:
        presets = {"yelp": yelp_like, "douban": douban_like}
        dataset = presets[args.preset](scale=args.scale, seed=args.seed).dataset
    split = split_interactions(dataset, rng=args.seed)
    if args.model:
        model = load_model(args.model)
    else:
        model, __ = build_groupsa(split, GroupSAConfig(embedding_dim=args.dim))
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-obs-")
    config = OpsSessionConfig(
        mode=args.mode,
        num_warm=args.warm,
        num_requests=args.requests,
        k=args.k,
        num_events=args.events,
        drift=args.drift,
        inject_latency_s=args.inject_latency_ms / 1000.0,
        seed=args.seed,
        num_workers=args.workers,
        num_shards=args.shards,
    )
    report = run_ops_session(model, dataset, workdir, config)
    data = report["data"]
    slo = data["slo"]
    alerts = data["alerts"]
    print(
        f"mode {args.mode}   SLOs burning {slo['burning']}/{slo['specs']}   "
        f"alerts {alerts['total']} "
        f"(pages {alerts['by_severity'].get('page', 0)}, "
        f"warns {alerts['by_severity'].get('warn', 0)})"
    )
    for event in alerts["events"]:
        print(f"  [{event['severity']}] {event['kind']}: {event['message']}")
    for status in data["drift"]:
        flagged = (
            status.get("drifted") or status.get("degraded")
            or status.get("trending")
        )
        print(f"drift    {status['name']:14s} {'FLAGGED' if flagged else 'ok'}")
    online = data["online"]
    print(
        f"online   version {online['model_version']}   "
        f"steps {online['steps']}   events {online['events_ingested']}"
    )
    traces = data["traces"]["summary"]
    print(
        f"tracing  kept {traces['traces_kept']}/{traces['traces_started']} "
        f"traces   root p99 {traces['root_latency_ms']['p99_ms']:.3f} ms"
    )
    write_ops_report(report, json_path=args.json, html_path=args.html)
    for path in (args.json, args.html):
        if path:
            print(f"wrote {path}")
    print(f"session artifacts in {workdir}")
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    from repro.obs import (
        OpProfiler,
        attach_scopes,
        format_top_table,
        make_report,
        stats_payload,
        write_chrome_trace,
        write_report,
    )

    if args.data:
        dataset = load_dataset(args.data)
        world_meta = {"data": args.data}
    else:
        presets = {"yelp": yelp_like, "douban": douban_like}
        dataset = presets[args.preset](scale=args.scale, seed=args.seed).dataset
        world_meta = {"preset": args.preset, "scale": args.scale}
    split = split_interactions(dataset, rng=args.seed)
    config = GroupSAConfig(
        embedding_dim=args.dim,
        num_attention_layers=args.layers,
        top_h=args.top_h,
    )
    training = TrainingConfig(
        user_epochs=args.user_epochs,
        group_epochs=args.group_epochs,
        seed=args.seed,
    )
    model, batcher = build_model(split, config)
    attach_scopes(model, root="groupsa")

    with OpProfiler() as profiler:
        with profiler.scope("train"):
            fit_groupsa(model, split, batcher, training)
        with profiler.scope("forward"):
            count = min(args.forward_groups, split.train.num_groups)
            groups = np.arange(count)
            items = np.arange(count) % dataset.num_items
            model.score_group_items(batcher.batch(groups), items)

    stats = profiler.stats()
    totals = profiler.totals()
    print(format_top_table(stats, k=args.top))
    print(
        f"\n{totals['op_calls']} forward ops in {totals['op_time_s'] * 1e3:.1f} ms, "
        f"{totals['backward_calls']} backward closures in "
        f"{totals['backward_time_s'] * 1e3:.1f} ms, "
        f"~{totals['flops'] / 1e9:.3f} GFLOP "
        f"(wall {totals['wall_s']:.2f} s)",
        flush=True,
    )
    if args.trace_out:
        written = write_chrome_trace(profiler, args.trace_out)
        print(f"wrote {args.trace_out} ({written} trace events)")
    if args.report_out:
        meta = {
            "world": world_meta,
            "user_epochs": args.user_epochs,
            "group_epochs": args.group_epochs,
            "embedding_dim": args.dim,
        }
        report = make_report(
            "op_profile",
            {"totals": totals, **stats_payload(stats, top_k=args.top)},
            meta=meta,
        )
        write_report(report, args.report_out)
        print(f"wrote {args.report_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic world")
    generate.add_argument("--preset", choices=("yelp", "douban"), default="yelp")
    generate.add_argument("--scale", type=float, default=0.01)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_command_generate)

    train = commands.add_parser("train", help="train GroupSA on a saved dataset")
    train.add_argument("--data", required=True)
    train.add_argument("--out", required=True)
    train.add_argument("--dim", type=int, default=32)
    train.add_argument("--layers", type=int, default=1)
    train.add_argument("--blend-weight", type=float, default=0.9)
    train.add_argument("--top-h", type=int, default=4)
    train.add_argument("--user-epochs", type=int, default=25)
    train.add_argument("--group-epochs", type=int, default=30)
    train.add_argument("--lr", type=float, default=0.01)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--dense-grads",
        action="store_true",
        help="force the dense reference gradient path (row-sparse "
        "embedding gradients are on by default and bit-identical; "
        "see docs/performance.md)",
    )
    train.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help="floating dtype of the model's tables and activations "
        "(float64 is the bit-exact reference; float32 halves memory "
        "traffic, see docs/performance.md)",
    )
    train.add_argument(
        "--no-fused-ops",
        action="store_true",
        help="force the op-by-op attention/MLP graphs (fused ops are on "
        "by default and bit-identical in float64)",
    )
    train.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write resumable epoch checkpoints into this directory",
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="continue from the newest checkpoint in --checkpoint-dir",
    )
    train.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="checkpoint every N epochs (stage boundaries always checkpoint)",
    )
    train.add_argument(
        "--keep-last",
        type=int,
        default=3,
        help="retain the newest N checkpoints (best-by-loss kept separately)",
    )
    train.add_argument(
        "--metrics-out",
        default=None,
        help="stream per-epoch run metrics (loss, grad norm, timing, RSS) "
        "to this JSONL file",
    )
    train.add_argument(
        "--grad-health",
        choices=("off", "warn", "raise"),
        default="off",
        help="check every step's gradients for NaN/Inf and warn or abort",
    )
    train.add_argument(
        "--progress",
        action="store_true",
        help="print a progress line per epoch",
    )
    train.set_defaults(handler=_command_train)

    evaluate_cmd = commands.add_parser("evaluate", help="evaluate a checkpoint")
    evaluate_cmd.add_argument("--data", required=True)
    evaluate_cmd.add_argument("--model", required=True)
    evaluate_cmd.add_argument("--task", choices=("user", "group"), default="group")
    evaluate_cmd.add_argument("--candidates", type=int, default=100)
    evaluate_cmd.add_argument("--seed", type=int, default=0)
    evaluate_cmd.set_defaults(handler=_command_evaluate)

    recommend = commands.add_parser("recommend", help="top-K items for a group")
    recommend.add_argument("--data", required=True)
    recommend.add_argument("--model", required=True)
    recommend.add_argument("--group", type=int, required=True)
    recommend.add_argument("-k", type=int, default=10)
    recommend.set_defaults(handler=_command_recommend)

    serve_bench = commands.add_parser(
        "serve-bench",
        help="benchmark direct vs engine-backed (and, with --workers, "
        "sharded multi-process) user Top-K serving",
    )
    serve_bench.add_argument("--data", required=True)
    serve_bench.add_argument("--model", required=True)
    serve_bench.add_argument("--requests", type=int, default=200)
    serve_bench.add_argument("-k", type=int, default=10)
    serve_bench.add_argument("--clients", type=int, default=8)
    serve_bench.add_argument("--max-batch", type=int, default=64)
    serve_bench.add_argument("--flush-ms", type=float, default=0.0)
    serve_bench.add_argument("--cache-mb", type=float, default=None)
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--json", default=None, help="write the report here")
    serve_bench.add_argument(
        "--workers",
        default=None,
        help="also benchmark sharded multi-process serving at these "
        "worker counts (comma-separated, e.g. 1,2,4)",
    )
    serve_bench.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --workers runs (default: one shard per worker)",
    )
    serve_bench.add_argument(
        "--retrieval",
        choices=["exhaustive", "ann"],
        default="exhaustive",
        help="candidate generation: exhaustive full-catalog scoring "
        "(default, bit-exact) or IVF ANN candidates + exact rerank",
    )
    serve_bench.add_argument(
        "--nprobe",
        type=int,
        default=8,
        help="ANN: inverted lists probed per query (higher = better "
        "recall, slower)",
    )
    serve_bench.add_argument(
        "--nlist",
        type=int,
        default=None,
        help="ANN: number of inverted lists (default: ~sqrt(num_items))",
    )
    serve_bench.add_argument(
        "--ann-candidates",
        type=int,
        default=256,
        help="ANN: candidate pool size handed to the exact reranker",
    )
    serve_bench.add_argument(
        "--trace-out",
        default=None,
        help="enable request tracing and write sampled span trees as a "
        "chrome://tracing JSON timeline",
    )
    serve_bench.add_argument(
        "--span-log",
        default=None,
        help="enable request tracing and append kept spans to this JSONL file",
    )
    serve_bench.add_argument(
        "--metrics-out",
        default=None,
        help="write the engine's Prometheus text exposition here",
    )
    serve_bench.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="always keep traces whose root is slower than this many "
        "milliseconds, regardless of --sample-rate",
    )
    serve_bench.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        help="head-sampling probability for request traces (slow and "
        "errored requests are always kept)",
    )
    serve_bench.set_defaults(handler=_command_serve_bench)

    online_bench = commands.add_parser(
        "online-bench",
        help="measure serving p99 during continuous hot-swaps vs a "
        "no-swap baseline (streaming trainer publishing versions, "
        "ModelSwapper applying them under live traffic)",
    )
    online_bench.add_argument("--data", default=None, help="saved dataset (.npz)")
    online_bench.add_argument("--preset", choices=("yelp", "douban"), default="yelp")
    online_bench.add_argument("--scale", type=float, default=0.02)
    online_bench.add_argument(
        "--model", default=None, help="checkpoint to stream-train (default: fresh)"
    )
    online_bench.add_argument("--dim", type=int, default=32)
    online_bench.add_argument("--requests", type=int, default=400)
    online_bench.add_argument("-k", type=int, default=10)
    online_bench.add_argument("--clients", type=int, default=4)
    online_bench.add_argument("--events", type=int, default=2000)
    online_bench.add_argument(
        "--events-per-version",
        type=int,
        default=32,
        help="events consumed per published version (lower = more swap "
        "pressure)",
    )
    online_bench.add_argument("--batch-size", type=int, default=16)
    online_bench.add_argument("--keep-last", type=int, default=3)
    online_bench.add_argument(
        "--poll-ms",
        type=float,
        default=10.0,
        help="ModelSwapper poll interval in milliseconds",
    )
    online_bench.add_argument("--seed", type=int, default=0)
    online_bench.add_argument(
        "--workdir", default=None, help="event log + snapshots go here"
    )
    online_bench.add_argument("--json", default=None, help="write the report here")
    online_bench.add_argument(
        "--metrics-out",
        default=None,
        help="stream per-replay-batch trainer metrics (offset, loss, "
        "events/s, replay lag) to this JSONL file",
    )
    online_bench.set_defaults(handler=_command_online_bench)

    obs_report = commands.add_parser(
        "obs-report",
        help="run a short serve/stream/swap ops session and write the "
        "unified fleet report (metrics, SLO burn rates, alerts, drift, "
        "traces, online health) as JSON and a self-contained HTML "
        "dashboard",
    )
    obs_report.add_argument("--data", default=None, help="saved dataset (.npz)")
    obs_report.add_argument("--preset", choices=("yelp", "douban"), default="yelp")
    obs_report.add_argument("--scale", type=float, default=0.02)
    obs_report.add_argument(
        "--model", default=None, help="checkpoint to serve (default: fresh)"
    )
    obs_report.add_argument("--dim", type=int, default=32)
    obs_report.add_argument(
        "--mode", choices=("direct", "engine", "cluster"), default="engine"
    )
    obs_report.add_argument("--requests", type=int, default=60)
    obs_report.add_argument("--warm", type=int, default=40)
    obs_report.add_argument("-k", type=int, default=10)
    obs_report.add_argument("--events", type=int, default=400)
    obs_report.add_argument(
        "--drift",
        type=float,
        default=0.0,
        help="event-stream drift knob in [0, 1] (high values should trip "
        "the event-drift detector)",
    )
    obs_report.add_argument(
        "--inject-latency-ms",
        type=float,
        default=0.0,
        help="add this constant to every recorded post-swap request "
        "latency sample — a deterministic SLO-breach injection",
    )
    obs_report.add_argument("--workers", type=int, default=2)
    obs_report.add_argument("--shards", type=int, default=2)
    obs_report.add_argument("--seed", type=int, default=0)
    obs_report.add_argument(
        "--workdir", default=None, help="session artifacts go here"
    )
    obs_report.add_argument("--json", default=None, help="write the JSON report here")
    obs_report.add_argument(
        "--html", default=None, help="write the HTML dashboard here"
    )
    obs_report.set_defaults(handler=_command_obs_report)

    profile = commands.add_parser(
        "profile",
        help="profile a short training run + forward pass; emit a Chrome "
        "trace and a per-op table",
    )
    profile.add_argument("--data", default=None, help="saved dataset (.npz)")
    profile.add_argument("--preset", choices=("yelp", "douban"), default="yelp")
    profile.add_argument("--scale", type=float, default=0.01)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--dim", type=int, default=32)
    profile.add_argument("--layers", type=int, default=1)
    profile.add_argument("--top-h", type=int, default=4)
    profile.add_argument("--user-epochs", type=int, default=2)
    profile.add_argument("--group-epochs", type=int, default=2)
    profile.add_argument(
        "--forward-groups",
        type=int,
        default=32,
        help="groups scored in the standalone profiled forward pass",
    )
    profile.add_argument("--top", type=int, default=15, help="table rows")
    profile.add_argument(
        "--trace-out", default=None, help="write chrome://tracing JSON here"
    )
    profile.add_argument(
        "--report-out", default=None, help="write the JSON op-profile report here"
    )
    profile.set_defaults(handler=_command_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
