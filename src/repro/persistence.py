"""Model checkpointing: save/load a trained GroupSA with its wiring.

A checkpoint bundles the weights, the model configuration and the
Top-H neighbour tables into one ``.npz`` archive, so a trained model
can be reloaded for serving without re-deriving anything from the
training split.

Format v2 optionally extends the archive with *training* state — the
optimizer moments, the trainer's RNG bit-generator state, epoch
counters and the two-stage schedule position — so an interrupted run
can resume and produce bit-identical results (see
:mod:`repro.training.checkpointing`).  v1 weight-only checkpoints
remain loadable.

All writes are atomic: the archive is serialized to a temporary file
in the target directory, fsynced, and moved into place with
``os.replace``.  A crash mid-write can never corrupt an existing
checkpoint at the target path.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.config import GroupSAConfig
from repro.core.groupsa import GroupSA
from repro.data.loaders import TopNeighbours

PathLike = Union[str, Path]

_FORMAT_VERSION = 2
#: Versions this reader understands.  v1 is the original weight-only
#: layout; v2 adds the optional ``optim/*`` + ``__train_meta__`` entries.
_COMPAT_VERSIONS = frozenset({1, 2})


@dataclasses.dataclass(frozen=True)
class TrainingState:
    """Training-time state carried by a v2 checkpoint.

    ``trainer`` is the :meth:`GroupSATrainer.state_dict` payload
    (optimizer moments, RNG states, epoch counters, history);
    ``schedule`` is the two-stage schedule position recorded by
    :func:`repro.training.two_stage.fit_groupsa`; ``metric`` is the
    retention metric the writer attached (lower-is-better group loss by
    default).  Any of them may be ``None`` for weight-only checkpoints.
    """

    trainer: Optional[Dict[str, Any]] = None
    schedule: Optional[Dict[str, Any]] = None
    metric: Optional[float] = None


def _normalize_path(path: PathLike) -> Path:
    """Resolve the on-disk archive name for ``path``.

    ``np.savez_compressed`` silently appends ``.npz`` to suffix-less
    names, which historically made ``save_model(m, "ckpt")`` /
    ``load_model("ckpt")`` disagree about the file name.  Both sides now
    normalize through this helper so they always address the same file.
    """
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def _atomic_savez(path: Path, payload: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` archive atomically (tmp + fsync + ``os.replace``)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    # Make the rename itself durable (best effort; not all filesystems
    # support fsync on directories).
    with contextlib.suppress(OSError):
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def _decode_config(raw_json: str) -> GroupSAConfig:
    """Parse a serialized :class:`GroupSAConfig`, tolerating newer writers.

    Unknown keys (fields added by a later version of the code) are
    dropped with a warning instead of crashing ``GroupSAConfig(**raw)``
    with a ``TypeError``, so older readers stay forward compatible.
    """
    raw = json.loads(raw_json)
    known = {field.name for field in dataclasses.fields(GroupSAConfig)}
    unknown = sorted(set(raw) - known)
    if unknown:
        warnings.warn(
            f"checkpoint config has unknown keys {unknown}; "
            "ignoring them (written by a newer version?)",
            RuntimeWarning,
            stacklevel=3,
        )
        raw = {key: value for key, value in raw.items() if key in known}
    for key in ("prediction_hidden", "fusion_hidden"):
        if key in raw:
            raw[key] = tuple(raw[key])
    return GroupSAConfig(**raw)


def _check_version(archive) -> int:
    version = int(archive["__version__"])
    if version not in _COMPAT_VERSIONS:
        supported = sorted(_COMPAT_VERSIONS)
        raise ValueError(
            f"unsupported checkpoint version {version} (supported: {supported})"
        )
    return version


def _model_payload(model: GroupSA) -> Dict[str, np.ndarray]:
    payload = {
        "__version__": np.array(_FORMAT_VERSION),
        "__config__": np.array(json.dumps(dataclasses.asdict(model.config))),
        "__num_users__": np.array(model.num_users),
        "__num_items__": np.array(model.num_items),
    }
    for name, weights in model.state_dict().items():
        payload[f"param/{name}"] = weights
    tables = model.top_neighbours
    if tables is not None:
        payload["tables/items"] = tables.items
        payload["tables/item_mask"] = tables.item_mask
        payload["tables/friends"] = tables.friends
        payload["tables/friend_mask"] = tables.friend_mask
    return payload


def save_checkpoint(
    model: GroupSA,
    path: PathLike,
    *,
    trainer_state: Optional[Dict[str, Any]] = None,
    schedule: Optional[Dict[str, Any]] = None,
    metric: Optional[float] = None,
) -> Path:
    """Atomically write a v2 checkpoint; returns the normalized path.

    With only ``model`` this is a weight-only checkpoint (what
    :func:`save_model` writes).  ``trainer_state`` is the payload of
    :meth:`GroupSATrainer.state_dict`; its optimizer arrays are stored
    as native ``.npz`` entries and everything else as JSON metadata.
    """
    path = _normalize_path(path)
    payload = _model_payload(model)
    meta: Dict[str, Any] = {}
    if trainer_state is not None:
        optimizer = trainer_state["optimizer"]
        for key, array in optimizer["arrays"].items():
            payload[f"optim/{key}"] = array
        meta["trainer"] = {
            **{k: v for k, v in trainer_state.items() if k != "optimizer"},
            "optimizer": {k: v for k, v in optimizer.items() if k != "arrays"},
        }
    if schedule is not None:
        meta["schedule"] = schedule
    if metric is not None:
        meta["metric"] = float(metric)
    if meta:
        payload["__train_meta__"] = np.array(json.dumps(meta))
    _atomic_savez(path, payload)
    return path


def load_checkpoint(
    path: PathLike,
    model: Optional[GroupSA] = None,
    *,
    dtype: Optional[str] = None,
) -> Tuple[GroupSA, Optional[TrainingState]]:
    """Load a checkpoint; returns ``(model, training_state)``.

    Pass ``model`` to load the weights into an existing instance (the
    resume path) instead of constructing a fresh one from the stored
    config.  ``training_state`` is ``None`` for weight-only checkpoints
    (including every v1 archive).

    ``dtype`` overrides the stored config's dtype policy, so a float64
    reference checkpoint can be served as a float32 model (or a float32
    run promoted back to float64).  With or without the override, the
    stored arrays are explicitly cast to each parameter's dtype —
    checkpoints written before the dtype field existed load unchanged.
    """
    path = _normalize_path(path)
    with np.load(path, allow_pickle=False) as archive:
        _check_version(archive)
        config = _decode_config(str(archive["__config__"]))
        if dtype is not None:
            config = config.variant(dtype=dtype)
        num_users = int(archive["__num_users__"])
        num_items = int(archive["__num_items__"])
        if model is None:
            model = GroupSA(num_users, num_items, config)
        elif model.num_users != num_users or model.num_items != num_items:
            raise ValueError(
                f"checkpoint holds a {num_users}x{num_items} world but the "
                f"model is {model.num_users}x{model.num_items}"
            )
        parameters = dict(model.named_parameters())
        state = {
            name[len("param/") :]: archive[name]
            for name in archive.files
            if name.startswith("param/")
        }
        state = {
            name: (
                array.astype(parameters[name].data.dtype, copy=False)
                if name in parameters
                else array
            )
            for name, array in state.items()
        }
        model.load_state_dict(state)
        if "tables/items" in archive.files:
            model.set_top_neighbours(
                TopNeighbours(
                    items=archive["tables/items"],
                    item_mask=archive["tables/item_mask"],
                    friends=archive["tables/friends"],
                    friend_mask=archive["tables/friend_mask"],
                )
            )
        training_state = None
        if "__train_meta__" in archive.files:
            meta = json.loads(str(archive["__train_meta__"]))
            trainer = meta.get("trainer")
            if trainer is not None:
                trainer["optimizer"]["arrays"] = {
                    name[len("optim/") :]: archive[name]
                    for name in archive.files
                    if name.startswith("optim/")
                }
            training_state = TrainingState(
                trainer=trainer,
                schedule=meta.get("schedule"),
                metric=meta.get("metric"),
            )
    return model, training_state


def save_model(model: GroupSA, path: PathLike) -> None:
    """Write a weight-only checkpoint of ``model`` to ``path`` (``.npz``)."""
    save_checkpoint(model, path)


def load_model(path: PathLike, *, dtype: Optional[str] = None) -> GroupSA:
    """Reconstruct a GroupSA model from a checkpoint written by
    :func:`save_model` or :func:`save_checkpoint` (v1 or v2).

    ``dtype`` optionally overrides the stored dtype policy (see
    :func:`load_checkpoint`).
    """
    model, __ = load_checkpoint(path, dtype=dtype)
    return model


def roundtrip_equal(model: GroupSA, other: GroupSA) -> bool:
    """Whether two models have identical weights (testing helper)."""
    own = model.state_dict()
    theirs = other.state_dict()
    if set(own) != set(theirs):
        return False
    return all(np.array_equal(own[name], theirs[name]) for name in own)


def checkpoint_info(path: PathLike) -> Tuple[GroupSAConfig, int, int]:
    """Read (config, num_users, num_items) without building the model."""
    with np.load(_normalize_path(path), allow_pickle=False) as archive:
        _check_version(archive)
        return (
            _decode_config(str(archive["__config__"])),
            int(archive["__num_users__"]),
            int(archive["__num_items__"]),
        )


def checkpoint_metadata(path: PathLike) -> Dict[str, Any]:
    """Read the JSON training metadata (schedule, metric) of a checkpoint.

    Returns ``{}`` for weight-only checkpoints; the optimizer arrays are
    not materialized (use :func:`load_checkpoint` for those).
    """
    with np.load(_normalize_path(path), allow_pickle=False) as archive:
        _check_version(archive)
        if "__train_meta__" not in archive.files:
            return {}
        return json.loads(str(archive["__train_meta__"]))
