"""Model checkpointing: save/load a trained GroupSA with its wiring.

A checkpoint bundles the weights, the model configuration and the
Top-H neighbour tables into one ``.npz`` archive, so a trained model
can be reloaded for serving without re-deriving anything from the
training split.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.core.config import GroupSAConfig
from repro.core.groupsa import GroupSA
from repro.data.loaders import TopNeighbours

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_model(model: GroupSA, path: PathLike) -> None:
    """Write a full checkpoint of ``model`` to ``path`` (``.npz``)."""
    payload = {
        "__version__": np.array(_FORMAT_VERSION),
        "__config__": np.array(json.dumps(dataclasses.asdict(model.config))),
        "__num_users__": np.array(model.num_users),
        "__num_items__": np.array(model.num_items),
    }
    for name, weights in model.state_dict().items():
        payload[f"param/{name}"] = weights
    tables = model.top_neighbours
    if tables is not None:
        payload["tables/items"] = tables.items
        payload["tables/item_mask"] = tables.item_mask
        payload["tables/friends"] = tables.friends
        payload["tables/friend_mask"] = tables.friend_mask
    np.savez_compressed(Path(path), **payload)


def load_model(path: PathLike) -> GroupSA:
    """Reconstruct a GroupSA model from a checkpoint written by
    :func:`save_model`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        version = int(archive["__version__"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} (expected {_FORMAT_VERSION})"
            )
        raw_config = json.loads(str(archive["__config__"]))
        raw_config["prediction_hidden"] = tuple(raw_config["prediction_hidden"])
        raw_config["fusion_hidden"] = tuple(raw_config["fusion_hidden"])
        config = GroupSAConfig(**raw_config)
        model = GroupSA(
            int(archive["__num_users__"]), int(archive["__num_items__"]), config
        )
        state = {
            name[len("param/") :]: archive[name]
            for name in archive.files
            if name.startswith("param/")
        }
        model.load_state_dict(state)
        if "tables/items" in archive.files:
            model.set_top_neighbours(
                TopNeighbours(
                    items=archive["tables/items"],
                    item_mask=archive["tables/item_mask"],
                    friends=archive["tables/friends"],
                    friend_mask=archive["tables/friend_mask"],
                )
            )
    return model


def roundtrip_equal(model: GroupSA, other: GroupSA) -> bool:
    """Whether two models have identical weights (testing helper)."""
    own = model.state_dict()
    theirs = other.state_dict()
    if set(own) != set(theirs):
        return False
    return all(np.array_equal(own[name], theirs[name]) for name in own)


def checkpoint_info(path: PathLike) -> Tuple[GroupSAConfig, int, int]:
    """Read (config, num_users, num_items) without building the model."""
    with np.load(Path(path), allow_pickle=False) as archive:
        raw_config = json.loads(str(archive["__config__"]))
        raw_config["prediction_hidden"] = tuple(raw_config["prediction_hidden"])
        raw_config["fusion_hidden"] = tuple(raw_config["fusion_hidden"])
        return (
            GroupSAConfig(**raw_config),
            int(archive["__num_users__"]),
            int(archive["__num_items__"]),
        )
