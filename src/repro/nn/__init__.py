"""Neural network layers built on :mod:`repro.autograd`."""

from repro.nn.activations import Identity, ReLU, Sigmoid, Tanh
from repro.nn.attention import (
    MASK_VALUE,
    PairwiseAttention,
    ScaledDotProductSelfAttention,
    social_bias_matrix,
)
from repro.nn.containers import ModuleList, Sequential
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module, Parameter
from repro.nn.normalization import LayerNorm

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "MLP",
    "Sequential",
    "ModuleList",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "PairwiseAttention",
    "ScaledDotProductSelfAttention",
    "social_bias_matrix",
    "MASK_VALUE",
]
