"""Embedding table with scatter-add gradients."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils import RngLike, ensure_rng


class Embedding(Module):
    """Lookup table of ``num_embeddings`` vectors of size ``dim``.

    Section III-E of the paper applies Glorot initialization to
    embedding layers; that is the default here.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        weight_init: str = "glorot",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.num_embeddings = num_embeddings
        self.dim = dim
        if weight_init == "glorot":
            weight = init.glorot_uniform((num_embeddings, dim), generator)
        elif weight_init == "gaussian":
            weight = init.gaussian((num_embeddings, dim), generator)
        else:
            raise ValueError(f"unknown weight_init '{weight_init}'")
        self.weight = Parameter(weight)
        # Embedding tables are the row-gather workload the sparse
        # gradient path exists for; mark the table as eligible (the
        # global sparse_grads switch still gates actual emission).
        self.weight._sparse_grad = True

    def forward(self, indices: np.ndarray) -> Tensor:
        """Gather embeddings; output shape is ``indices.shape + (dim,)``."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        hook = self.weight._gather_hook
        if hook is not None:
            # Lazy optimizers defer updates for untouched rows; give
            # them a chance to bring the rows we are about to read up
            # to date, so the forward pass sees dense-path weights.
            hook(indices)
        return self.weight[indices]
