"""Weight initialization schemes used by the paper.

Section III-E: Glorot initialization on embedding layers and Gaussian
(mean 0, std 0.1) on hidden layers, following AGREE [9].
"""

from __future__ import annotations

import numpy as np

from repro.autograd.dtype import default_dtype


def glorot_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization [35].

    The RNG always draws in float64 so a given seed produces the same
    weights under every dtype policy; the cast to the active default
    dtype happens afterwards.
    """
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    draw = rng.uniform(-limit, limit, size=shape)
    return draw.astype(default_dtype(), copy=False)


def gaussian(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.1
) -> np.ndarray:
    """Zero-mean Gaussian initialization with the paper's std of 0.1."""
    draw = rng.normal(0.0, std, size=shape)
    return draw.astype(default_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=default_dtype())


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
