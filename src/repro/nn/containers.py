"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for position, module in enumerate(modules):
            self.register_module(str(position), module)
            self._ordered.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x


class ModuleList(Module):
    """A list of submodules that registers each for parameter traversal."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self.register_module(str(len(self._ordered)), module)
        self._ordered.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]
