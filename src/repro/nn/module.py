"""Parameter and Module base classes (a compact ``torch.nn`` analogue)."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable weight of a :class:`Module`.

    Two extra slots support the row-sparse gradient path for
    embedding-style tables:

    - ``_sparse_grad``: opt-in flag read by the gather backward — when
      set (and sparse gradients are globally enabled), integer-index
      gathers emit a :class:`~repro.autograd.sparse.RowSparseGrad`;
    - ``_gather_hook``: optional pre-read callback, installed by lazy
      optimizers, invoked with the gather indices *before* the rows are
      read so lazily deferred updates can be applied first.
    """

    __slots__ = ("_sparse_grad", "_gather_hook")

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)
        self._sparse_grad = False
        self._gather_hook = None


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; they are auto-registered so :meth:`parameters`,
    :meth:`state_dict` and train/eval mode propagation work recursively.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        parameters: Dict[str, Parameter] = self.__dict__.get("_parameters", {})
        modules: Dict[str, Module] = self.__dict__.get("_modules", {})
        parameters.pop(name, None)
        modules.pop(name, None)
        if isinstance(value, Parameter):
            parameters[name] = value
        elif isinstance(value, Module):
            modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a submodule under an explicit name (for containers)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        for __, parameter in self.named_parameters():
            yield parameter

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, root first.

        The root's name is ``prefix`` (empty by default); children append
        their attribute names with ``.`` separators, mirroring
        :meth:`named_parameters`.
        """
        yield prefix, self
        for name, module in self._modules.items():
            child = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(prefix=child)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def scope_name(self) -> str:
        """Label used by the op profiler for work inside this module.

        Defaults to the class name; :func:`repro.obs.attach_scopes`
        overrides it with the qualified attribute path (for example,
        ``groupsa.voting.layers.0.attention``).
        """
        return getattr(self, "_obs_scope", None) or type(self).__name__

    def set_scope_name(self, name: str) -> None:
        object.__setattr__(self, "_obs_scope", name)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total count of scalar weights (useful for model summaries)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            if parameter.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for '{name}': "
                    f"{parameter.data.shape} vs {state[name].shape}"
                )
            parameter.data[...] = state[name]

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------

    def forward(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)
