"""Layer normalization, used after each attention/FFN sub-layer."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter
from repro.nn import init


class LayerNorm(Module):
    """Normalize the last dimension to zero mean / unit variance,
    then apply a learned affine transform (gain and bias)."""

    def __init__(self, dim: int, epsilon: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.epsilon = epsilon
        self.gain = Parameter(init.zeros((dim,)) + 1.0)
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        variance = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / ((variance + self.epsilon).sqrt())
        return normalized * self.gain + self.bias
