"""Multi-layer perceptron used by the fusion and prediction towers."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.autograd.tensor import Tensor
from repro.nn.activations import Identity, ReLU
from repro.nn.containers import ModuleList
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.utils import RngLike, ensure_rng


class MLP(Module):
    """Feed-forward tower ``in -> hidden... -> out``.

    ``output_activation`` distinguishes the paper's two uses:

    - Eq. (19) user-factor fusion applies the non-linearity on every
      layer including the last (``output_activation='relu'``);
    - Eqs. (20)/(22) prediction towers end in a plain linear scorer
      (``output_activation=None``).
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: Sequence[int],
        out_features: int,
        output_activation: Optional[str] = None,
        dropout: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        dims = [in_features, *hidden_features, out_features]
        self.layers = ModuleList(
            Linear(dims[i], dims[i + 1], rng=generator) for i in range(len(dims) - 1)
        )
        self.hidden_activation = ReLU()
        if output_activation is None:
            self.output_activation: Module = Identity()
        elif output_activation == "relu":
            self.output_activation = ReLU()
        elif output_activation == "sigmoid":
            from repro.nn.activations import Sigmoid

            self.output_activation = Sigmoid()
        else:
            raise ValueError(f"unknown output_activation '{output_activation}'")
        self.dropout = Dropout(dropout, rng=generator) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        relu_output = isinstance(self.output_activation, ReLU)
        for position, layer in enumerate(self.layers):
            if position < last:
                x = layer.forward_relu(x)
                if self.dropout is not None:
                    x = self.dropout(x)
            elif relu_output:
                x = layer.forward_relu(x)
            else:
                x = self.output_activation(layer(x))
        return x
