"""Attention building blocks.

Two kinds of attention appear in the paper:

- :class:`PairwiseAttention` — the "vanilla attention" two-layer scoring
  network of Eqs. (9)-(10), (13)-(14) and (17)-(18): a query vector
  attends over a set of candidates, with logits produced by
  ``w2^T . sigma(W1 [q (+) c] + b1) + b2``.
- :class:`ScaledDotProductSelfAttention` — the transformer-style
  self-attention of Eqs. (1)-(5), with an additive bias matrix used to
  inject the social mask.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.autograd.context import fused_ops_enabled
from repro.autograd.fused import fused_masked_attention, fused_pairwise_logits
from repro.autograd.tensor import Tensor, concatenate
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.utils import RngLike, ensure_rng

# Large negative logit standing in for the paper's -inf bias: it drives
# the post-softmax weight to ~0 without producing NaNs when an entire
# row is masked (e.g. padding members of a short group).
MASK_VALUE = -1.0e9


class PairwiseAttention(Module):
    """Query-conditioned attention over a candidate set.

    Given queries ``q`` of shape (B, d_q) and candidates ``c`` of shape
    (B, H, d_c), produces softmax weights over the H candidates and the
    attention-weighted sum of the value vectors (the candidates
    themselves unless ``values`` is supplied).
    """

    def __init__(
        self,
        query_features: int,
        candidate_features: int,
        hidden_features: int = 32,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.score_hidden = Linear(
            query_features + candidate_features, hidden_features, rng=generator
        )
        self.score_out = Linear(hidden_features, 1, rng=generator)

    def logits(self, query: Tensor, candidates: Tensor) -> Tensor:
        """Unnormalized attention logits of shape (B, H)."""
        batch, count, __ = candidates.shape
        if fused_ops_enabled():
            return fused_pairwise_logits(
                query,
                candidates,
                self.score_hidden.weight,
                self.score_hidden.bias,
                self.score_out.weight,
                self.score_out.bias,
            )
        expanded = query.reshape(batch, 1, query.shape[-1])
        tiled = expanded.broadcast_to((batch, count, query.shape[-1]))
        joint = concatenate([tiled, candidates], axis=-1)
        hidden = self.score_hidden(joint).relu()
        return self.score_out(hidden).reshape(batch, count)

    def forward(
        self,
        query: Tensor,
        candidates: Tensor,
        mask: Optional[np.ndarray] = None,
        values: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Return ``(aggregated, weights)``.

        ``mask`` is a boolean (B, H) array; False entries receive ~zero
        weight.  ``weights`` always sums to 1 over the valid candidates.
        """
        scores = self.logits(query, candidates)
        row_valid: Optional[np.ndarray] = None
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            bias = np.where(mask, 0.0, MASK_VALUE)
            scores = scores + Tensor(bias, dtype=scores.data.dtype)
            row_valid = mask.any(axis=1)
        weights = scores.softmax(axis=-1)
        if values is None:
            values = candidates
        batch, count = weights.shape
        aggregated = (weights.reshape(batch, count, 1) * values).sum(axis=1)
        if row_valid is not None and not row_valid.all():
            # Rows with zero valid candidates (e.g. a user with no
            # interactions) must not aggregate padding garbage: their
            # output is the zero vector.
            aggregated = aggregated * Tensor(
                row_valid[:, None].astype(aggregated.data.dtype)
            )
        return aggregated, weights


class ScaledDotProductSelfAttention(Module):
    """Self-attention with an additive bias matrix.

    Implements Eqs. (1)-(5): ``softmax(Q K^T / sqrt(d_k) + S) V`` where
    ``S`` carries both the social connectivity mask and any padding
    mask, expressed as 0 (allowed) / ``MASK_VALUE`` (disallowed).

    The paper uses a single head; ``num_heads > 1`` is an extension
    (each head gets ``key_features / num_heads`` dimensions and the
    same social bias, and the returned attention weights are the
    head-average).
    """

    def __init__(
        self,
        model_features: int,
        key_features: int = 32,
        value_features: int = 32,
        num_heads: int = 1,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        if key_features % num_heads or value_features % num_heads:
            raise ValueError(
                "key_features and value_features must be divisible by num_heads"
            )
        generator = ensure_rng(rng)
        self.key_features = key_features
        self.num_heads = num_heads
        self.head_key_features = key_features // num_heads
        self.head_value_features = value_features // num_heads
        self.query_proj = Linear(model_features, key_features, bias=False, rng=generator)
        self.key_proj = Linear(model_features, key_features, bias=False, rng=generator)
        self.value_proj = Linear(model_features, value_features, bias=False, rng=generator)
        self.output_proj = Linear(value_features, model_features, bias=False, rng=generator)

    def _split_heads(self, x: Tensor, head_dim: int) -> Tensor:
        batch, length, __ = x.shape
        return x.reshape(batch, length, self.num_heads, head_dim).permute(0, 2, 1, 3)

    def forward(
        self,
        x: Tensor,
        bias: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Return ``(output, attention_weights)``.

        ``x`` has shape (B, L, d_model); ``bias`` is a (B, L, L) or
        (L, L) additive float array (0 = attend, ``MASK_VALUE`` = skip).
        ``attention_weights`` has shape (B, L, L) — the head average
        when ``num_heads > 1``.
        """
        batch, length, __ = x.shape
        queries = self.query_proj(x)
        keys = self.key_proj(x)
        values = self.value_proj(x)
        fused = fused_ops_enabled()
        if self.num_heads == 1:
            if fused:
                bias_array = (
                    None if bias is None
                    else np.asarray(bias, dtype=queries.data.dtype)
                )
                mixed, weights = fused_masked_attention(
                    queries, keys, values,
                    bias=bias_array,
                    scale=math.sqrt(self.key_features),
                )
                return self.output_proj(mixed), weights
            scores = (queries @ keys.transpose(-1, -2)) / math.sqrt(self.key_features)
            if bias is not None:
                scores = scores + Tensor(np.asarray(bias, dtype=scores.data.dtype))
            weights = scores.softmax(axis=-1)
            mixed = weights @ values
            return self.output_proj(mixed), weights

        queries = self._split_heads(queries, self.head_key_features)
        keys = self._split_heads(keys, self.head_key_features)
        values = self._split_heads(values, self.head_value_features)
        if fused:
            bias_array = None
            if bias is not None:
                bias_array = np.asarray(bias, dtype=queries.data.dtype)
                if bias_array.ndim == 2:
                    bias_array = bias_array[None, None]
                else:
                    bias_array = bias_array[:, None]
            mixed, weights = fused_masked_attention(
                queries, keys, values,
                bias=bias_array,
                scale=math.sqrt(self.head_key_features),
            )
        else:
            scores = (queries @ keys.transpose(-1, -2)) / math.sqrt(self.head_key_features)
            if bias is not None:
                bias_array = np.asarray(bias, dtype=scores.data.dtype)
                if bias_array.ndim == 2:
                    bias_array = bias_array[None, None]
                else:
                    bias_array = bias_array[:, None]
                scores = scores + Tensor(bias_array)
            weights = scores.softmax(axis=-1)  # (B, H, L, L)
            mixed = weights @ values  # (B, H, L, dv)
        merged = mixed.permute(0, 2, 1, 3).reshape(
            batch, length, self.num_heads * self.head_value_features
        )
        return self.output_proj(merged), weights.mean(axis=1)


def social_bias_matrix(
    adjacency: np.ndarray,
    member_mask: Optional[np.ndarray] = None,
    include_self: bool = True,
) -> np.ndarray:
    """Build the additive social bias ``S`` of Eq. (5) for a batch.

    ``adjacency`` is a boolean (B, L, L) array: entry (b, i, j) is True
    when members i and j of group b are socially connected (f(i,j)=1).
    ``member_mask`` is a boolean (B, L) validity mask for padded groups.
    The diagonal is always enabled when ``include_self`` because a voter
    can always weigh their own opinion (the q_i k_i term of Eq. (1)).
    """
    allowed = np.asarray(adjacency, dtype=bool).copy()
    if allowed.ndim != 3 or allowed.shape[-1] != allowed.shape[-2]:
        raise ValueError("adjacency must have shape (B, L, L)")
    length = allowed.shape[-1]
    if include_self:
        eye = np.eye(length, dtype=bool)
        allowed |= eye
    if member_mask is not None:
        valid = np.asarray(member_mask, dtype=bool)
        allowed &= valid[:, None, :]
        allowed &= valid[:, :, None]
        # Keep the diagonal of padded rows enabled so their softmax rows
        # stay well-defined; downstream aggregation masks them out.
        allowed |= np.eye(length, dtype=bool)
    return np.where(allowed, 0.0, MASK_VALUE)
