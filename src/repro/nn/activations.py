"""Activation modules (the paper uses ReLU throughout)."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
