"""Inverted dropout regularization (paper uses ratio 0.1)."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.utils import RngLike, ensure_rng


class Dropout(Module):
    """Randomly zero activations during training, identity in eval mode.

    Uses inverted scaling so expected activations match between modes.
    """

    def __init__(self, rate: float = 0.1, rng: RngLike = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)
