"""Fully connected layer."""

from __future__ import annotations

from typing import Optional

from repro.autograd.context import fused_ops_enabled
from repro.autograd.fused import fused_linear_relu
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils import RngLike, ensure_rng


class Linear(Module):
    """Affine map ``y = x W + b`` with weight of shape (in, out).

    Initialized with the paper's Gaussian(0, 0.1) scheme for hidden
    layers by default; pass ``weight_init='glorot'`` for Glorot uniform.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: str = "gaussian",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        generator = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        if weight_init == "gaussian":
            weight = init.gaussian((in_features, out_features), generator)
        elif weight_init == "glorot":
            weight = init.glorot_uniform((in_features, out_features), generator)
        else:
            raise ValueError(f"unknown weight_init '{weight_init}'")
        self.weight = Parameter(weight)
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_relu(self, x: Tensor) -> Tensor:
        """``relu(self(x))``, fused into one graph node when enabled.

        The fused op records a single backward closure instead of the
        matmul/add/relu chain; in float64 the result (forward and
        gradients) is bit-identical to ``self(x).relu()``.
        """
        if fused_ops_enabled():
            return fused_linear_relu(x, self.weight, self.bias)
        return self(x).relu()
