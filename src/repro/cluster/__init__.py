"""Sharded multi-process serving: scale Top-K past one process.

The single-process engine (:mod:`repro.engine`) tops out at one
process's memory (every embedding table resident) and one GIL's worth
of request handling.  This package shards the *item catalog* instead:

- :mod:`repro.cluster.plan` — :class:`ShardPlan`, the contiguous or
  modulo partition of item ids plus the global↔local index mapping;
- :mod:`repro.cluster.weights` — :class:`SharedWeightStore`, one
  mmap-backed on-disk copy of the model that every worker attaches
  read-only (``np.memmap``), so N workers share one set of tables;
- :mod:`repro.cluster.worker` — the shard worker process: runs the
  existing Top-K kernel over its item slices and answers scatter
  requests over a pipe, shipping back global-id candidates plus a
  lossless :class:`~repro.obs.metrics_registry.MetricsRegistry`
  snapshot;
- :mod:`repro.cluster.merge` — the exact cross-shard Top-K merge
  (descending score, ascending global item id);
- :mod:`repro.cluster.router` — :class:`ShardRouter`: scatter-gather
  with per-request worker restart-once recovery, fleet-exact metric
  aggregation, and results bit-identical to single-process serving;
- :mod:`repro.cluster.bench` — the rps/p99-vs-worker-count scaling
  harness behind ``repro serve-bench --workers``.

Because user, group and ad-hoc traffic all reduce to the same
score-items-then-Top-K loop (the paper's Section II-F fast path), one
item-sharded scoring tier accelerates every request kind at once.
"""

from repro.cluster.bench import benchmark_sharded_scaling
from repro.cluster.merge import merge_topk
from repro.cluster.plan import ShardPlan
from repro.cluster.router import ClusterConfig, ClusterError, ShardRouter
from repro.cluster.weights import (
    SharedWeightStore,
    attach_shared_model,
    write_model_store,
)
from repro.cluster.worker import ShardScorer, WorkerSpec

__all__ = [
    "benchmark_sharded_scaling",
    "merge_topk",
    "ShardPlan",
    "ClusterConfig",
    "ClusterError",
    "ShardRouter",
    "SharedWeightStore",
    "attach_shared_model",
    "write_model_store",
    "ShardScorer",
    "WorkerSpec",
]
