"""Exact cross-shard Top-K merge.

The single-process kernel (:func:`repro.engine.topk.topk_indices`)
orders by descending score with ties broken by ascending item index.
Each shard returns its local Top-K already under that contract *within
its slice*; merging is then a straight selection over the union of
candidates by ``(-score, global item id)``.  Because every shard
contributes its best ``min(k, local candidates)`` items, the global
Top-K is guaranteed to be inside the union — the merge is exact, not
approximate.

Shared by the router (merging worker replies) and by workers that host
several shards (merging their own scorers' slices before replying).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

TopK = Tuple[np.ndarray, np.ndarray]  # (global item ids, scores), best first


def merge_topk(parts: Iterable[TopK], k: int) -> TopK:
    """Merge per-shard ``(global ids, scores)`` lists into one Top-K.

    Ordering contract: descending score, ties by ascending *global*
    item id — bit-identical to running ``topk_indices`` over the full
    concatenated score vector.
    """
    id_chunks = []
    score_chunks = []
    for ids, scores in parts:
        ids = np.asarray(ids, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if ids.shape != scores.shape:
            raise ValueError(
                f"ids/scores length mismatch: {ids.shape} vs {scores.shape}"
            )
        if ids.size:
            id_chunks.append(ids)
            score_chunks.append(scores)
    if not id_chunks:
        return np.empty(0, dtype=np.int64), np.empty(0)
    all_ids = np.concatenate(id_chunks)
    all_scores = np.concatenate(score_chunks)
    # lexsort keys are least-significant first: primary -score,
    # secondary ascending global id.
    order = np.lexsort((all_ids, -all_scores))[: max(k, 0)]
    return all_ids[order], all_scores[order]
