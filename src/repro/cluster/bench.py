"""Sharded-serving benchmark: rps/p99 scaling vs worker count.

Spins up a fresh cluster per worker count, drives a closed request
loop through the router, and reports one scaling point per
configuration — the curve ``repro serve-bench --workers 1,2,4``
prints and ``results/engine_throughput.json`` records.

Setup cost (store write, spawn, readiness pings) is excluded from the
timed window; a short warmup pages the mapped tables in before
measurement so the first requests do not charge cold page faults to
the curve.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.router import ClusterConfig, ShardRouter
from repro.engine.bench import run_closed_loop


def benchmark_sharded_scaling(
    model,
    dataset,
    users: Sequence[int],
    worker_counts: Sequence[int],
    k: int = 10,
    num_shards: Optional[int] = None,
    strategy: str = "contiguous",
    clients: int = 1,
    warmup_requests: int = 5,
    dataset_path=None,
    retrieval: str = "exhaustive",
    ann_nprobe: int = 8,
    ann_nlist: Optional[int] = None,
    ann_candidates: int = 256,
) -> dict:
    """One scaling point per entry of ``worker_counts``.

    ``num_shards`` defaults to the worker count of each point (one
    shard per worker); pass an explicit value to hold the partition
    fixed while varying the pool size.  ``dataset_path`` skips the
    per-point dataset re-save when the world is already on disk.
    ``retrieval="ann"`` benchmarks IVF candidate generation inside
    every worker instead of exhaustive slice scans.
    """
    users = [int(u) for u in users]
    if not users:
        raise ValueError("need at least one user request")
    points = []
    for workers in worker_counts:
        config = ClusterConfig(
            num_workers=int(workers),
            num_shards=num_shards,
            strategy=strategy,
            retrieval=retrieval,
            ann_nprobe=ann_nprobe,
            ann_nlist=ann_nlist,
            ann_candidates=ann_candidates,
        )
        router = ShardRouter.launch(
            model, dataset, config=config, dataset_path=dataset_path
        )
        try:
            for index in range(min(warmup_requests, len(users))):
                router.topk_user(users[index], k=k)
            summary = run_closed_loop(
                lambda i: router.topk_user(users[i], k=k),
                len(users),
                clients=clients,
            )
            points.append(
                {
                    "workers": int(workers),
                    "shards": router.plan.num_shards,
                    "strategy": strategy,
                    "retrieval": retrieval,
                    **summary,
                }
            )
        finally:
            router.close()
    baseline = points[0]["rps"] if points else 0.0
    for point in points:
        point["speedup_vs_first"] = point["rps"] / baseline if baseline else 0.0
    return {
        "k": k,
        "clients": clients,
        "requests": len(users),
        "worker_counts": [int(w) for w in worker_counts],
        "points": points,
    }
