"""Shared weight store: one on-disk copy of the model, N memmap views.

A cluster of worker processes must not hold N private copies of the
embedding tables — at millions-of-users scale the tables *are* the
memory footprint.  :class:`SharedWeightStore` writes every model array
once into a single binary blob (64-byte aligned, described by a JSON
manifest) and lets any number of processes attach read-only
``np.memmap`` views.  The OS page cache backs all views with the same
physical pages, so worker RSS grows only with the rows a worker
actually touches, and attach time is O(1) regardless of table size.

Layout of a store directory::

    store/
      manifest.json   # {"arrays": {name: {dtype, shape, offset}}, "meta": ...}
      weights.bin     # raw little-endian array bytes, 64-byte aligned

The manifest is written last (atomically via ``os.replace``), so a
partially written store is never attachable.

On top of the generic store sit two model-shaped helpers:
:func:`write_model_store` serializes a trained
:class:`~repro.core.groupsa.GroupSA` (parameters + Top-H neighbour
tables + config), and :func:`attach_shared_model` rebuilds a model
whose parameters *are* the read-only mapped arrays — forward passes
gather rows out of the shared pages without ever copying a table.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
DATA_NAME = "weights.bin"
_ALIGNMENT = 64
_FORMAT = "repro.cluster.weights/v1"


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


class SharedWeightStore:
    """Read-only mapped view over a store directory.

    Build one with :meth:`create` (writer side) or :meth:`attach`
    (worker side); access arrays with ``store[name]``.  Every array is
    an ``np.memmap`` opened mode ``"r"`` — attempting to write raises,
    which is exactly the contract serving workers want.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no weight-store manifest at {manifest_path} "
                "(create one with SharedWeightStore.create)"
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != _FORMAT:
            raise ValueError(
                f"unsupported weight-store format {manifest.get('format')!r}"
            )
        self.meta: Dict = manifest.get("meta", {})
        self._entries: Dict[str, Dict] = manifest["arrays"]
        data_path = self.directory / DATA_NAME
        self._arrays: Dict[str, np.memmap] = {}
        for name, entry in self._entries.items():
            self._arrays[name] = np.memmap(
                data_path,
                dtype=np.dtype(entry["dtype"]),
                mode="r",
                offset=int(entry["offset"]),
                shape=tuple(entry["shape"]),
            )

    # -- construction ----------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: PathLike,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Dict] = None,
    ) -> "SharedWeightStore":
        """Write ``arrays`` into ``directory`` and attach to the result."""
        if not arrays:
            raise ValueError("refusing to create an empty weight store")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        entries: Dict[str, Dict] = {}
        offset = 0
        data_path = directory / DATA_NAME
        with open(data_path, "wb") as handle:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                offset = _align(offset)
                handle.seek(offset)
                handle.write(array.tobytes())
                entries[name] = {
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                    "offset": offset,
                }
                offset += array.nbytes
            handle.flush()
            os.fsync(handle.fileno())
        manifest = {"format": _FORMAT, "arrays": entries, "meta": meta or {}}
        # Manifest last, atomically: attach() can never see a half store.
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, directory / MANIFEST_NAME)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return cls.attach(directory)

    @classmethod
    def attach(cls, directory: PathLike) -> "SharedWeightStore":
        """Map an existing store read-only (any number of processes)."""
        return cls(directory)

    # -- access ----------------------------------------------------------

    def names(self) -> list:
        return list(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __getitem__(self, name: str) -> np.memmap:
        return self._arrays[name]

    @property
    def nbytes(self) -> int:
        """Total mapped bytes (one physical copy however many attach)."""
        return sum(array.nbytes for array in self._arrays.values())


# ----------------------------------------------------------------------
# Versioned stores
# ----------------------------------------------------------------------


def versioned_store_dir(root: PathLike, version: int) -> Path:
    """Canonical directory for one model version's weight store."""
    return Path(root) / f"store-v{int(version):06d}"


class VersionedStoreGC:
    """Keep-last-N garbage collector over versioned store directories.

    The hot-swap router publishes one store directory per model version
    and rolls workers onto it one at a time.  A version directory may
    only be deleted once (a) it has fallen out of the keep-last-N
    window **and** (b) no tracked worker is still attached to it — a
    worker mid-roll (or one that failed its swap and is still serving
    an old version) keeps that version's mmap pages live, and deleting
    the backing file under an active ``np.memmap`` is undefined.

    Thread-safe; ``collect()`` is idempotent.
    """

    def __init__(self, keep_last: int = 2) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.keep_last = int(keep_last)
        self._lock = threading.Lock()
        self._versions: Dict[int, Path] = {}
        self._attached: Dict[int, int] = {}  # worker id -> confirmed version

    def register(self, version: int, directory: PathLike) -> None:
        """Record a published store directory for ``version``."""
        with self._lock:
            self._versions[int(version)] = Path(directory)

    def confirm(self, worker_id: int, version: int) -> None:
        """Record that ``worker_id`` now serves from ``version``."""
        with self._lock:
            self._attached[int(worker_id)] = int(version)

    def attached_versions(self) -> Dict[int, int]:
        with self._lock:
            return dict(self._attached)

    def registered_versions(self) -> list:
        with self._lock:
            return sorted(self._versions)

    def collect(self) -> list:
        """Delete every collectable version directory; returns the paths.

        Collectable = outside the ``keep_last`` newest registered
        versions and not confirmed-attached by any tracked worker.
        """
        import shutil

        with self._lock:
            keep = set(sorted(self._versions)[-self.keep_last :])
            live = set(self._attached.values())
            doomed = [
                version
                for version in sorted(self._versions)
                if version not in keep and version not in live
            ]
            removed = []
            for version in doomed:
                directory = self._versions.pop(version)
                removed.append(directory)
        for directory in removed:
            shutil.rmtree(directory, ignore_errors=True)
        return removed


# ----------------------------------------------------------------------
# GroupSA-shaped store
# ----------------------------------------------------------------------

_PARAM_PREFIX = "param/"
_TABLE_PREFIX = "tables/"


def write_model_store(model, directory: PathLike) -> SharedWeightStore:
    """Serialize a trained GroupSA into a shared weight store."""
    arrays: Dict[str, np.ndarray] = {
        _PARAM_PREFIX + name: weights for name, weights in model.state_dict().items()
    }
    tables = model.top_neighbours
    if tables is not None:
        arrays[_TABLE_PREFIX + "items"] = tables.items
        arrays[_TABLE_PREFIX + "item_mask"] = tables.item_mask
        arrays[_TABLE_PREFIX + "friends"] = tables.friends
        arrays[_TABLE_PREFIX + "friend_mask"] = tables.friend_mask
    meta = {
        "config": json.dumps(dataclasses.asdict(model.config)),
        "num_users": model.num_users,
        "num_items": model.num_items,
        # Redundant with the config JSON and per-array manifest dtypes,
        # but directly inspectable by ops tooling without parsing either.
        "dtype": model.config.dtype,
    }
    return SharedWeightStore.create(directory, arrays, meta=meta)


def attach_shared_model(directory: PathLike):
    """Rebuild a GroupSA whose parameters are the store's mapped arrays.

    The returned model is read-only in the only sense that matters for
    serving: each :class:`~repro.nn.module.Parameter`'s ``data`` is a
    mode-``"r"`` memmap, so forward passes gather shared pages and any
    accidental in-place write raises immediately.
    """
    from repro.core.groupsa import GroupSA
    from repro.data.loaders import TopNeighbours
    from repro.persistence import _decode_config

    store = SharedWeightStore.attach(directory)
    config = _decode_config(store.meta["config"])
    model = GroupSA(int(store.meta["num_users"]), int(store.meta["num_items"]), config)
    for name, parameter in model.named_parameters():
        mapped = store[_PARAM_PREFIX + name]
        if parameter.data.shape != mapped.shape:
            raise ValueError(
                f"shape mismatch for '{name}': "
                f"{parameter.data.shape} vs {mapped.shape}"
            )
        # Replace the freshly initialized array outright (assignment,
        # not copy) so the table never exists as private memory.
        parameter.data = mapped
    if _TABLE_PREFIX + "items" in store:
        model.set_top_neighbours(
            TopNeighbours(
                items=store[_TABLE_PREFIX + "items"],
                item_mask=store[_TABLE_PREFIX + "item_mask"],
                friends=store[_TABLE_PREFIX + "friends"],
                friend_mask=store[_TABLE_PREFIX + "friend_mask"],
            )
        )
    model.eval()
    return model
