"""Scatter-gather router over a pool of shard worker processes.

:class:`ShardRouter` is the serving tier's front door: it validates a
request once, scatters it to every worker, gathers each worker's local
Top-K (global ids + scores) and exact-merges them under the engine's
tie-break contract (descending score, ascending global item id).  The
result is bit-identical to a single-process Top-K over the full
catalog — sharding is a deployment detail, not a semantics change.

Failure handling: a worker that times out, dies mid-request, or whose
pipe breaks is killed and restarted **once per request**
(``ClusterConfig.max_restarts_per_request``); the request is re-sent to
the fresh process.  A second failure fails the request with
:class:`ClusterError`.  Restarts are cheap because worker state is a
read-only view of the shared weight store — there is nothing to
recover.

Observability: the router keeps its own
:class:`~repro.obs.metrics_registry.MetricsRegistry` (request
latencies, per-kind counters, restarts) and :meth:`metrics` folds in
every worker's registry via the lossless histogram state/merge path,
so fleet-wide percentiles are exact, not averaged averages.

The router is thread-safe: concurrent callers demultiplex replies by
request id through per-worker mailboxes, so a slow request on one
thread never steals another thread's reply.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.merge import merge_topk
from repro.cluster.plan import ShardPlan
from repro.cluster.weights import (
    VersionedStoreGC,
    versioned_store_dir,
    write_model_store,
)
from repro.cluster.worker import WorkerSpec, worker_main
from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.spans import adopt_remote_spans, span, trace_context

TopK = Tuple[np.ndarray, np.ndarray]  # (global item ids, scores), best first
VersionedTopK = Tuple[np.ndarray, np.ndarray, int]  # + min version served

#: Environment knobs pinned in worker processes so N workers do not
#: oversubscribe the machine with N full BLAS thread pools.
_BLAS_ENV = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS")


class ClusterError(RuntimeError):
    """A scatter request could not be completed (worker died twice,
    timed out after its restart, or reported an internal error)."""


@dataclass
class ClusterConfig:
    """Deployment shape and failure policy for a shard cluster.

    Attributes
    ----------
    num_workers:
        Worker processes to spawn.
    num_shards:
        Item-catalog shards; defaults to ``num_workers``.  May exceed
        it (shards are assigned round-robin), never be below it.
    strategy:
        :class:`~repro.cluster.plan.ShardPlan` partition strategy.
    keep_last_stores:
        Versioned weight-store directories retained after a hot-swap
        (older ones are garbage-collected once no worker is attached).
    request_timeout_s:
        Gather deadline per request before a worker is declared dead.
    max_restarts_per_request:
        Worker restarts a single request will tolerate before failing.
    start_method:
        ``multiprocessing`` start method; ``spawn`` keeps workers free
        of inherited thread/lock state (the parent runs thread pools).
    start_timeout_s:
        Readiness-ping deadline covering worker boot (imports, store
        attach, dataset load).
    worker_blas_threads:
        BLAS thread cap exported to each worker (None leaves the
        library default, which oversubscribes with many workers).
    retrieval:
        ``"exhaustive"`` (default; bit-identical to pre-ANN behavior)
        or ``"ann"`` — each worker builds an IVF index over its own
        item slice and scores only generated candidates.
    ann_nlist, ann_nprobe, ann_candidates, ann_seed:
        Per-worker :class:`~repro.engine.ann.IVFIndex` knobs (see
        :class:`~repro.engine.service.EngineConfig`); ``ann_nlist`` is
        clamped to each shard's slice size.
    """

    num_workers: int = 2
    num_shards: Optional[int] = None
    strategy: str = "contiguous"
    keep_last_stores: int = 2
    request_timeout_s: float = 30.0
    max_restarts_per_request: int = 1
    start_method: str = "spawn"
    start_timeout_s: float = 120.0
    worker_blas_threads: Optional[int] = 1
    retrieval: str = "exhaustive"
    ann_nlist: Optional[int] = None
    ann_nprobe: int = 8
    ann_candidates: int = 256
    ann_seed: int = 0

    def resolved_shards(self) -> int:
        shards = self.num_shards if self.num_shards is not None else self.num_workers
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if shards < self.num_workers:
            raise ValueError(
                f"num_shards ({shards}) must be >= num_workers "
                f"({self.num_workers}); idle workers serve nothing"
            )
        return shards


class _WorkerDied(Exception):
    """Internal: a worker failed; carries the generation observed."""

    def __init__(self, reason: str, generation: int) -> None:
        super().__init__(reason)
        self.reason = reason
        self.generation = generation


class _WorkerHandle:
    """Process + pipe + reply mailbox for one worker, thread-safe.

    ``generation`` increments on every restart; requesters capture the
    generation at send time, so a handle restarted underneath a waiting
    thread surfaces as :class:`_WorkerDied` (and a stale requester can
    never restart a fresh process — :meth:`restart` is a no-op unless
    the generation still matches).
    """

    def __init__(self, spec: WorkerSpec, ctx) -> None:
        self.spec = spec
        self._ctx = ctx
        self._lock = threading.RLock()
        self.process = None
        self.conn = None
        self.generation = 0
        self.restarts = 0
        self._mailbox: dict = {}

    def start(self) -> None:
        with self._lock:
            parent_conn, child_conn = self._ctx.Pipe()
            self.process = self._ctx.Process(
                target=worker_main,
                args=(child_conn, self.spec),
                name=f"repro-shard-worker-{self.spec.worker_id}",
                daemon=True,
            )
            self.process.start()
            child_conn.close()
            self.conn = parent_conn
            self._mailbox.clear()

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            process, conn = self.process, self.conn
            self.process = None
            self.conn = None
            self._mailbox.clear()
        if conn is not None:
            with contextlib.suppress(OSError, ValueError):
                conn.send(("stop",))
        if process is not None:
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout)
        if conn is not None:
            with contextlib.suppress(OSError):
                conn.close()

    def send(self, message: tuple) -> int:
        """Send ``message``; returns the generation it was sent under."""
        with self._lock:
            generation = self.generation
            if self.conn is None or self.process is None or not self.process.is_alive():
                raise _WorkerDied("worker process is not running", generation)
            try:
                self.conn.send(message)
            except (OSError, ValueError, BrokenPipeError) as error:
                raise _WorkerDied(f"send failed: {error}", generation) from error
            return generation

    def recv(self, req_id: int, generation: int, deadline: float) -> tuple:
        """Reply for ``req_id``, demultiplexing interleaved responses."""
        while True:
            with self._lock:
                if self.generation != generation:
                    raise _WorkerDied(
                        "worker restarted while awaiting reply", generation
                    )
                if req_id in self._mailbox:
                    return self._mailbox.pop(req_id)
                try:
                    # Short poll slice: the lock is held while polling,
                    # so this bounds how long a concurrent sender (or a
                    # requester whose reply already arrived) can be
                    # blocked behind one waiter.
                    if self.conn.poll(0.002):
                        reply = self.conn.recv()
                        if reply[1] == req_id:
                            return reply
                        if reply[0] == "error" and reply[1] == -1:
                            # Boot failure: addressed to nobody, fatal.
                            raise _WorkerDied(
                                f"worker boot failed: {reply[2]}: {reply[3]}",
                                generation,
                            )
                        self._mailbox[reply[1]] = reply
                        continue
                except (EOFError, OSError) as error:
                    raise _WorkerDied(f"pipe closed: {error}", generation) from error
            if time.monotonic() >= deadline:
                raise _WorkerDied(
                    f"timed out awaiting reply for request {req_id}", generation
                )

    def restart(self, generation: int) -> bool:
        """Kill and respawn if still at ``generation``; True if restarted."""
        with self._lock:
            if self.generation != generation:
                return False  # somebody already recovered this worker
            self.generation += 1
            self.restarts += 1
            process, conn = self.process, self.conn
            self.process = None
            self.conn = None
            self._mailbox.clear()
            if conn is not None:
                with contextlib.suppress(OSError):
                    conn.close()
            if process is not None:
                with contextlib.suppress(Exception):
                    process.kill()
                    process.join(5.0)
            self.start()
            return True

    def alive(self) -> bool:
        with self._lock:
            return self.process is not None and self.process.is_alive()


class ShardRouter:
    """Scatter user/group/ad-hoc Top-K requests across shard workers.

    Build with :meth:`launch` (writes the shared weight store, saves
    the dataset if needed, spawns and readiness-pings the pool)::

        router = ShardRouter.launch(model=model, dataset=dataset,
                                    config=ClusterConfig(num_workers=4))
        items, scores = router.topk_user(7, k=10)
        router.close()

    Also usable as a context manager.
    """

    def __init__(
        self,
        plan: ShardPlan,
        handles: List[_WorkerHandle],
        config: ClusterConfig,
        num_users: int,
        num_groups: int,
        registry: Optional[MetricsRegistry] = None,
        tmpdir: Optional[tempfile.TemporaryDirectory] = None,
        workdir: Optional[Union[str, Path]] = None,
        model_version: int = 0,
    ) -> None:
        self.plan = plan
        self.config = config
        self.num_users = num_users
        self.num_groups = num_groups
        self.registry = registry or MetricsRegistry()
        self._handles = handles
        self._ids = itertools.count()
        self._tmpdir = tmpdir
        self._workdir = None if workdir is None else Path(workdir)
        self._version = int(model_version)
        self._swap_lock = threading.Lock()
        self._gc = VersionedStoreGC(keep_last=config.keep_last_stores)
        for handle in handles:
            self._gc.confirm(handle.spec.worker_id, handle.spec.model_version)
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def launch(
        cls,
        model,
        dataset,
        config: Optional[ClusterConfig] = None,
        workdir: Optional[Union[str, Path]] = None,
        dataset_path: Optional[Union[str, Path]] = None,
    ) -> "ShardRouter":
        """Materialize the store, spawn the pool, wait for readiness.

        ``workdir`` (default: a self-cleaning temp directory) receives
        the weight store and, when ``dataset_path`` is not supplied, a
        saved copy of the dataset for workers to load.
        """
        import multiprocessing

        from repro.data.io import save_dataset

        config = config or ClusterConfig()
        if config.retrieval not in ("exhaustive", "ann"):
            raise ValueError(
                f"unknown retrieval mode '{config.retrieval}' "
                "(choose 'exhaustive' or 'ann')"
            )
        num_shards = config.resolved_shards()
        plan = ShardPlan(dataset.num_items, num_shards, config.strategy)
        tmpdir = None
        if workdir is None:
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            workdir = tmpdir.name
        workdir = Path(workdir)
        store_dir = versioned_store_dir(workdir, 0)
        write_model_store(model, store_dir)
        if dataset_path is None:
            dataset_path = workdir / "dataset.npz"
            save_dataset(dataset, dataset_path)
        specs = [
            WorkerSpec(
                worker_id=worker,
                shards=tuple(range(worker, num_shards, config.num_workers)),
                plan=plan,
                store_dir=str(store_dir),
                dataset_path=str(dataset_path),
                retrieval=config.retrieval,
                ann_nlist=config.ann_nlist,
                ann_nprobe=config.ann_nprobe,
                ann_candidates=config.ann_candidates,
                ann_seed=config.ann_seed,
            )
            for worker in range(config.num_workers)
        ]
        ctx = multiprocessing.get_context(config.start_method)
        handles = [_WorkerHandle(spec, ctx) for spec in specs]
        router = cls(
            plan,
            handles,
            config,
            num_users=dataset.num_users,
            num_groups=dataset.num_groups,
            tmpdir=tmpdir,
            workdir=workdir,
        )
        router._gc.register(0, store_dir)
        saved_env = {name: os.environ.get(name) for name in _BLAS_ENV}
        try:
            if config.worker_blas_threads is not None:
                for name in _BLAS_ENV:
                    os.environ[name] = str(config.worker_blas_threads)
            for handle in handles:
                handle.start()
        finally:
            for name, value in saved_env.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
        try:
            router._ping_all(config.start_timeout_s)
        except BaseException:
            router.close()
            raise
        return router

    def close(self) -> None:
        """Stop every worker and release the scratch directory."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            handle.stop()
        if self._tmpdir is not None:
            with contextlib.suppress(OSError):
                self._tmpdir.cleanup()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def num_workers(self) -> int:
        return len(self._handles)

    @property
    def model_version(self) -> int:
        """Most recently published model version."""
        return self._version

    @property
    def worker_restarts(self) -> int:
        """Lifetime restarts across the pool."""
        return sum(handle.restarts for handle in self._handles)

    def workers_alive(self) -> int:
        return sum(1 for handle in self._handles if handle.alive())

    # -- request surface -------------------------------------------------

    def topk_user(self, user: int, k: int = 10) -> TopK:
        return self.topk_user_versioned(user, k)[:2]

    def topk_group(self, group: int, k: int = 10) -> TopK:
        return self.topk_group_versioned(group, k)[:2]

    def topk_members(self, members: Sequence[int], k: int = 10) -> TopK:
        return self.topk_members_versioned(members, k)[:2]

    # Versioned variants: the third element is the *minimum* model
    # version any contributing worker served — during a rolling swap the
    # fleet is briefly mixed, and the oldest contributor bounds how
    # stale the merged list can be.

    def topk_user_versioned(self, user: int, k: int = 10) -> VersionedTopK:
        user = int(user)
        if not 0 <= user < self.num_users:
            raise IndexError(f"user {user} out of range [0, {self.num_users})")
        self._check_k(k)
        return self._scatter("user", user, k)

    def topk_group_versioned(self, group: int, k: int = 10) -> VersionedTopK:
        group = int(group)
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range [0, {self.num_groups})")
        self._check_k(k)
        return self._scatter("group", group, k)

    def topk_members_versioned(
        self, members: Sequence[int], k: int = 10
    ) -> VersionedTopK:
        if len(members) == 0:
            raise ValueError("members must be a non-empty sequence of user ids")
        for member in members:
            if not 0 <= int(member) < self.num_users:
                raise IndexError(
                    f"member {int(member)} out of range [0, {self.num_users})"
                )
        self._check_k(k)
        canonical = tuple(
            int(m) for m in np.unique(np.asarray(members, dtype=np.int64))
        )
        return self._scatter("adhoc", canonical, k)

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")

    # -- hot-swap ----------------------------------------------------------

    def swap_model(self, model, version: Optional[int] = None) -> int:
        """Roll the fleet onto ``model`` one worker at a time.

        Writes a new versioned weight store, then re-attaches each
        worker in turn (the others keep serving the old version, so the
        pool never goes dark).  A worker whose swap op fails is killed
        and restarted directly against the new store.  Old store
        directories are garbage-collected once outside the
        ``keep_last_stores`` window *and* no worker is attached.

        Returns the new version; versions must be strictly increasing.
        """
        if self._closed:
            raise ClusterError("router is closed")
        if self._workdir is None:
            raise ClusterError(
                "router has no workdir to publish versioned stores into"
            )
        with self._swap_lock:
            version = self._version + 1 if version is None else int(version)
            if version <= self._version:
                raise ValueError(
                    f"model_version must increase: {version} <= {self._version}"
                )
            start = time.perf_counter()
            with span("cluster.swap", version=int(version)):
                store_dir = versioned_store_dir(self._workdir, version)
                with span("cluster.swap.store_write", version=int(version)):
                    write_model_store(model, store_dir)
                self._gc.register(version, store_dir)
                for handle in self._handles:
                    with span(
                        "cluster.swap.worker",
                        worker=handle.spec.worker_id,
                        version=int(version),
                    ):
                        self._swap_worker(handle, store_dir, version)
                    self._gc.confirm(handle.spec.worker_id, version)
            self._version = version
            self.registry.counter("router.swaps").inc()
            self.registry.histogram("router.swap").observe(
                time.perf_counter() - start
            )
            self.registry.gauge("router.model_version").set(float(version))
            self._gc.collect()
        return version

    def _swap_worker(self, handle: _WorkerHandle, store_dir: Path, version: int) -> None:
        """Move one worker to ``store_dir``; restart it if the op fails."""
        deadline = time.monotonic() + (
            self.config.request_timeout_s + self.config.start_timeout_s
        )
        new_spec = dataclasses.replace(
            handle.spec, store_dir=str(store_dir), model_version=version
        )
        req_id = next(self._ids)
        try:
            generation = handle.send(("swap", req_id, str(store_dir), version))
            reply = handle.recv(req_id, generation, deadline)
            if reply[0] == "error":
                raise _WorkerDied(
                    f"swap failed: {reply[2]}: {reply[3]}", generation
                )
        except _WorkerDied as died:
            # Fall back to a restart straight onto the new store: spec
            # update first so the fresh process boots the new version.
            handle.spec = new_spec
            if handle.restart(died.generation):
                self.registry.counter("router.worker_restarts").inc()
            ping_id = next(self._ids)
            try:
                generation = handle.send(("ping", ping_id))
                reply = handle.recv(ping_id, generation, deadline)
            except _WorkerDied as died_again:
                raise ClusterError(
                    f"worker {handle.spec.worker_id} failed to re-attach to "
                    f"model version {version}: {died_again.reason}"
                ) from died_again
            if reply[0] == "error":
                raise ClusterError(
                    f"worker {handle.spec.worker_id} failed to boot on "
                    f"model version {version}: {reply[2]}: {reply[3]}"
                )
            return
        # Swap confirmed in-process: future restarts must boot the new
        # store, so the spec follows the confirm.
        handle.spec = new_spec

    # -- scatter-gather core ---------------------------------------------

    def _scatter(self, kind: str, payload, k: int) -> VersionedTopK:
        if self._closed:
            raise ClusterError("router is closed")
        # ``span`` is a shared no-op when tracing is off, and
        # ``trace_context()`` is then None, so the untraced path sends
        # the exact pre-tracing 5-tuple over the pipe.
        with span(
            "router.scatter", kind=kind, workers=len(self._handles)
        ) as scatter_span:
            return self._scatter_gather(kind, payload, k, scatter_span)

    def _scatter_gather(self, kind: str, payload, k: int, scatter_span) -> VersionedTopK:
        req_id = next(self._ids)
        context = trace_context()
        message = ("score", req_id, kind, payload, int(k))
        if context is not None:
            message = message + (context,)
        start = time.perf_counter()
        deadline = start + self.config.request_timeout_s
        # Phase 1: fan the request out so workers compute concurrently;
        # send failures are deferred to the gather phase's retry logic.
        sent: dict = {}
        for handle in self._handles:
            try:
                sent[handle] = handle.send(message)
            except _WorkerDied as died:
                sent[handle] = died
        # Phase 2: gather, restarting a failed worker at most
        # ``max_restarts_per_request`` times before giving up.
        parts = []
        versions: List[int] = []
        for handle in self._handles:
            state = sent[handle]
            attempts = 0
            while True:
                try:
                    if isinstance(state, _WorkerDied):
                        raise state
                    reply = handle.recv(req_id, state, deadline)
                    break
                except _WorkerDied as died:
                    if attempts >= self.config.max_restarts_per_request:
                        raise ClusterError(
                            f"worker {handle.spec.worker_id} (shards "
                            f"{list(handle.spec.shards)}) failed a {kind} "
                            f"request after {attempts} restart(s): {died.reason}"
                        ) from died
                    attempts += 1
                    if handle.restart(died.generation):
                        self.registry.counter("router.worker_restarts").inc()
                    # Fresh process: give the retry a boot-inclusive deadline.
                    deadline = time.monotonic() + (
                        self.config.request_timeout_s + self.config.start_timeout_s
                    )
                    try:
                        state = handle.send(message)
                    except _WorkerDied as died_again:
                        state = died_again
            if reply[0] == "error":
                raise ClusterError(
                    f"worker {handle.spec.worker_id} failed a {kind} "
                    f"request: {reply[2]}: {reply[3]}"
                )
            if scatter_span is not None and len(reply) > 5:
                adopt_remote_spans(scatter_span, reply[5])
            parts.append((reply[2], reply[3]))
            versions.append(int(reply[4]) if len(reply) > 4 else 0)
        with span("router.merge", parts=len(parts)):
            merged = merge_topk(parts, k)
        self.registry.counter(f"router.requests.{kind}").inc()
        self.registry.histogram("router.request").observe(
            time.perf_counter() - start
        )
        return merged + (min(versions),)

    # -- metrics ---------------------------------------------------------

    def metrics(self) -> MetricsRegistry:
        """Router metrics + every reachable worker's, exactly merged."""
        merged = MetricsRegistry()
        merged.merge(self.registry)
        for handle in self._handles:
            req_id = next(self._ids)
            try:
                generation = handle.send(("metrics", req_id))
                reply = handle.recv(
                    req_id,
                    generation,
                    time.monotonic() + self.config.request_timeout_s,
                )
            except _WorkerDied:
                merged.counter("router.metrics_gather_failures").inc()
                continue
            if reply[0] != "metrics":
                merged.counter("router.metrics_gather_failures").inc()
                continue
            merged.merge(MetricsRegistry.from_state(reply[2]))
        return merged

    def metrics_payload(self) -> dict:
        """JSON-friendly summary of the merged fleet metrics."""
        return self.metrics().payload()

    # -- readiness -------------------------------------------------------

    def _ping_all(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            req_id = next(self._ids)
            try:
                generation = handle.send(("ping", req_id))
                reply = handle.recv(req_id, generation, deadline)
            except _WorkerDied as died:
                raise ClusterError(
                    f"worker {handle.spec.worker_id} failed to come up: "
                    f"{died.reason}"
                ) from died
            if reply[0] == "error":
                raise ClusterError(
                    f"worker {handle.spec.worker_id} failed to boot: "
                    f"{reply[2]}: {reply[3]}"
                )
