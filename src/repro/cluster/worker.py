"""Shard worker: one process, one or more item slices, the Top-K kernel.

A worker attaches the shared weight store (read-only memmap — no table
copy), loads the dataset for exclusion sets and group membership, and
answers scatter requests over a multiprocessing pipe.  Every request
kind reduces to the same loop the single-process engine runs — score a
set of candidate items, run :func:`repro.engine.topk.topk_indices` —
restricted to the items the worker's shards own.  Replies carry
*global* item ids, so the router's merge never touches the local index
space.

Because a shard's owned items are listed in ascending global order,
``topk_indices``'s tie-break (ascending position) is exactly ascending
global item id within the shard; a worker hosting several shards folds
them together with the same exact merge the router uses, so however
shards are assigned to workers the final list is bit-identical to a
single-process Top-K.

:class:`ShardScorer` holds the in-process scoring logic for one shard
and is used directly by tests; :func:`worker_main` is the process
entry point wrapping scorers in the pipe protocol and a per-worker
:class:`~repro.obs.metrics_registry.MetricsRegistry` whose lossless
snapshots the router merges fleet-wide.

Wire protocol (parent → worker, tuples)::

    ("score", req_id, kind, payload, k)   kind in {user, group, adhoc}
    ("score", req_id, kind, payload, k, trace_ctx)   traced variant
    ("swap", req_id, store_dir, model_version)
    ("metrics", req_id)
    ("ping", req_id)
    ("stop",)

and worker → parent::

    ("ok", req_id, global_item_ids, scores, model_version)
    ("ok", req_id, global_item_ids, scores, model_version, spans)
    ("swapped", req_id, worker_id, model_version)
    ("error", req_id, exception_type_name, message)
    ("metrics", req_id, registry_state)
    ("pong", req_id, worker_id)

Distributed tracing rides the two extended arities: when the router's
request runs under an installed :class:`~repro.obs.spans.Tracer`, the
score message carries a sixth element — the parent trace context
(trace id, span id, wall-clock send timestamp) — and the reply carries
the worker-side child spans (queue wait, per-shard candidate
generation / forward / Top-K kernel, merge contribution) serialized by
a :class:`~repro.obs.spans.RemoteSpanRecorder`.  With tracing off both
sides send exactly the pre-tracing 5-tuples, so the disabled path
pickles byte-identical messages (guarded by
``benchmarks/test_bench_cluster_trace.py``).

The ``swap`` op re-attaches the worker to a new versioned weight-store
directory and rebuilds its scorers (including per-shard IVF indexes)
against the new tables; requests arriving after the ``swapped`` reply
are served by the new model.  A swap failure leaves the old scorers
serving and reports ``error`` — the router then falls back to a
restart against the new store.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cluster.merge import merge_topk
from repro.cluster.plan import ShardPlan
from repro.cluster.weights import attach_shared_model
from repro.core.adhoc import build_adhoc_batch
from repro.data.io import load_dataset
from repro.data.loaders import GroupBatch, GroupBatcher
from repro.engine.ann import IVFIndex, default_nlist
from repro.engine.topk import exclusion_mask, topk_indices
from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.spans import RemoteSpanRecorder

TopK = Tuple[np.ndarray, np.ndarray]  # (global item ids, scores), best first


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to boot, picklable for spawn.

    ``retrieval``/``ann_*`` mirror the single-process
    :class:`~repro.engine.service.EngineConfig` knobs; with
    ``retrieval="ann"`` each scorer builds an IVF index over *its own*
    item slice, so candidate generation shards along with scoring and
    the router's merge stays untouched.
    """

    worker_id: int
    shards: Tuple[int, ...]
    plan: ShardPlan
    store_dir: str
    dataset_path: str
    retrieval: str = "exhaustive"
    ann_nlist: Optional[int] = None
    ann_nprobe: int = 8
    ann_candidates: int = 256
    ann_seed: int = 0
    #: Version of the store at ``store_dir``; replies echo the version
    #: actually served so the router can stamp merged results.
    model_version: int = 0


class ShardScorer:
    """Scores one shard's item slice for user/group/ad-hoc requests.

    ``model`` and ``dataset`` are shared across a worker's scorers (and
    may be plain in-memory objects in tests — nothing here requires the
    mmap-backed store).

    With ``retrieval="ann"`` the scorer owns an
    :class:`~repro.engine.ann.IVFIndex` over just its item slice; ANN
    candidates come back as ascending local positions, which map
    through ``owned`` to ascending *global* ids — so the exact-rerank
    tie contract (descending score, ascending global id) survives both
    the shard boundary and the router's merge.
    """

    def __init__(
        self,
        shard: int,
        plan: ShardPlan,
        model,
        dataset,
        retrieval: str = "exhaustive",
        ann_nlist: Optional[int] = None,
        ann_nprobe: int = 8,
        ann_candidates: int = 256,
        ann_seed: int = 0,
    ) -> None:
        if dataset.num_items != plan.num_items:
            raise ValueError(
                f"plan covers {plan.num_items} items but the dataset "
                f"has {dataset.num_items}"
            )
        if retrieval not in ("exhaustive", "ann"):
            raise ValueError(
                f"unknown retrieval mode '{retrieval}' "
                "(choose 'exhaustive' or 'ann')"
            )
        self.shard = shard
        self.plan = plan
        self.model = model
        self.dataset = dataset
        #: Owned global item ids, ascending — local index i is owned[i].
        self.owned = plan.global_items(shard)
        self._user_items = dataset.user_items()
        self._group_items = dataset.group_items()
        self._friend_sets = dataset.friend_set()
        self._batcher = GroupBatcher(dataset)
        self.ann_candidates = int(ann_candidates)
        #: Per-request remote-span recorder; set for the duration of one
        #: traced ``score()`` call (workers serve requests one at a time).
        self._recorder: Optional[RemoteSpanRecorder] = None
        self.ann_index: Optional[IVFIndex] = None
        if retrieval == "ann" and self.owned.size > 0:
            # nlist is clamped to the slice: a small shard cannot host
            # more lists than items.
            nlist = default_nlist(self.owned.size) if ann_nlist is None else ann_nlist
            self.ann_index = IVFIndex(
                np.asarray(model.item_embedding.weight.data)[self.owned],
                nlist=min(int(nlist), self.owned.size),
                nprobe=ann_nprobe,
                seed=ann_seed,
            )

    def score(
        self, kind: str, payload, k: int, recorder: Optional[RemoteSpanRecorder] = None
    ) -> TopK:
        """Local Top-K (global ids) for one scatter request."""
        self._recorder = recorder
        try:
            if kind == "user":
                return self._score_user(int(payload), k)
            if kind == "group":
                return self._score_group(int(payload), k)
            if kind == "adhoc":
                return self._score_adhoc(tuple(int(m) for m in payload), k)
            raise ValueError(f"unknown request kind '{kind}'")
        finally:
            self._recorder = None

    # -- per-kind scoring ------------------------------------------------

    def _phase(self, name: str, **attrs):
        """Span context for one scoring phase; no-op when untraced."""
        recorder = self._recorder
        if recorder is None:
            return nullcontext()
        attrs.setdefault("shard", self.shard)
        return recorder.span(name, **attrs)

    def _local_mask(self, exclude) -> Optional[np.ndarray]:
        """This shard's slice of the global exclusion mask."""
        mask = exclusion_mask(self.dataset.num_items, exclude)
        return None if mask is None else mask[self.owned]

    def _user_query(self, user: int) -> np.ndarray:
        return np.asarray(
            self.model.user_embedding.weight.data[user], dtype=np.float64
        )

    def _members_query(self, members) -> np.ndarray:
        """Mean member embedding — the Section II-F group fast path."""
        return np.asarray(
            self.model.user_embedding.weight.data[
                np.asarray(members, dtype=np.int64)
            ],
            dtype=np.float64,
        ).mean(axis=0)

    def _score_user(self, user: int, k: int) -> TopK:
        if self.owned.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        if self.ann_index is not None:
            candidates = self._candidates(
                self._user_items[user], self._user_query(user), k
            )
            if candidates.size == 0:
                return np.empty(0, dtype=np.int64), np.empty(0)
            with self._phase("shard.forward", candidates=int(candidates.size)):
                scores = self.model.score_user_items(
                    np.full(candidates.size, user, dtype=np.int64), candidates
                )
            with self._phase("shard.topk"):
                chosen = topk_indices(scores, k)
            return candidates[chosen], scores[chosen]
        with self._phase("shard.forward", candidates=int(self.owned.size)):
            scores = self.model.score_user_items(
                np.full(self.owned.size, user, dtype=np.int64), self.owned
            )
        with self._phase("shard.topk"):
            chosen = topk_indices(
                scores, k, self._local_mask(self._user_items[user])
            )
        return self.owned[chosen], scores[chosen]

    def _score_group(self, group: int, k: int) -> TopK:
        query = None
        if self.ann_index is not None:
            query = self._members_query(self.dataset.group_members[group])
        candidates = self._candidates(self._group_items[group], query, k)
        if candidates.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        with self._phase("shard.forward", candidates=int(candidates.size)):
            scores = self.model.score_group_items(
                self._batcher.batch(
                    np.full(candidates.size, group, dtype=np.int64)
                ),
                candidates,
            )
        with self._phase("shard.topk"):
            chosen = topk_indices(scores, k)
        return candidates[chosen], scores[chosen]

    def _score_adhoc(self, members: Tuple[int, ...], k: int) -> TopK:
        single = build_adhoc_batch([list(members)], self._friend_sets)
        exclude: set = set()
        for member in members:
            exclude |= self._user_items[member]
        query = self._members_query(members) if self.ann_index is not None else None
        candidates = self._candidates(exclude, query, k)
        if candidates.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        repeated = GroupBatch(
            group_ids=np.full(candidates.size, -1, dtype=np.int64),
            members=np.repeat(single.members, candidates.size, axis=0),
            mask=np.repeat(single.mask, candidates.size, axis=0),
            adjacency=np.repeat(single.adjacency, candidates.size, axis=0),
        )
        with self._phase("shard.forward", candidates=int(candidates.size)):
            scores = self.model.score_group_items(repeated, candidates)
        with self._phase("shard.topk"):
            chosen = topk_indices(scores, k)
        return candidates[chosen], scores[chosen]

    def _candidates(
        self, exclude, query: Optional[np.ndarray] = None, k: int = 0
    ) -> np.ndarray:
        """Valid global candidate ids, ascending.

        Exhaustive: all owned items minus exclusions.  ANN: the index's
        candidate positions (ascending local), mapped through ``owned``
        — ascending local positions over an ascending ``owned`` array
        yield ascending global ids, preserving the rerank tie contract.
        """
        with self._phase("shard.candidates", ann=self.ann_index is not None):
            mask = self._local_mask(exclude)
            if self.ann_index is not None and query is not None:
                local = self.ann_index.candidates(
                    query, self.ann_candidates, exclude_mask=mask, min_results=k
                )
                return self.owned[local]
            if mask is None:
                return self.owned
            return self.owned[~mask]


def _build_scorers(spec: WorkerSpec, store_dir: str, dataset) -> list:
    """Attach ``store_dir`` and rebuild every shard scorer against it."""
    model = attach_shared_model(store_dir)
    return [
        ShardScorer(
            shard,
            spec.plan,
            model,
            dataset,
            retrieval=spec.retrieval,
            ann_nlist=spec.ann_nlist,
            ann_nprobe=spec.ann_nprobe,
            ann_candidates=spec.ann_candidates,
            ann_seed=spec.ann_seed,
        )
        for shard in spec.shards
    ]


def worker_main(conn, spec: WorkerSpec) -> None:
    """Process entry point: serve scatter requests until ``stop``/EOF."""
    registry = MetricsRegistry()
    try:
        dataset = load_dataset(spec.dataset_path)
        scorers = _build_scorers(spec, spec.store_dir, dataset)
        model_version = int(spec.model_version)
    except BaseException as error:  # boot failure: report, then bail
        try:
            conn.send(("error", -1, type(error).__name__, str(error)))
        finally:
            conn.close()
        return
    owned_items = sum(scorer.owned.size for scorer in scorers)
    registry.gauge("shard.items").set(float(owned_items))
    registry.gauge("shard.count").set(float(len(scorers)))
    registry.gauge("shard.model_version").set(float(model_version))
    latency = registry.histogram("shard.request")
    swap_latency = registry.histogram("shard.swap")
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message[0]
            if op == "stop":
                break
            if op == "ping":
                conn.send(("pong", message[1], spec.worker_id))
                continue
            if op == "metrics":
                conn.send(("metrics", message[1], registry.state()))
                continue
            if op == "swap":
                __, req_id, store_dir, new_version = message
                start = time.perf_counter()
                try:
                    # Build against the new store first; the old scorers
                    # keep serving if anything goes wrong.
                    fresh = _build_scorers(spec, str(store_dir), dataset)
                except BaseException as error:
                    registry.counter("shard.swap_errors").inc()
                    conn.send(("error", req_id, type(error).__name__, str(error)))
                    continue
                scorers = fresh
                model_version = int(new_version)
                swap_latency.observe(time.perf_counter() - start)
                registry.counter("shard.swaps").inc()
                registry.gauge("shard.model_version").set(float(model_version))
                conn.send(("swapped", req_id, spec.worker_id, model_version))
                continue
            if op == "score":
                if len(message) > 5:
                    __, req_id, kind, payload, k, trace = message
                    recorder = RemoteSpanRecorder()
                    received = time.time()
                    sent = float(trace.get("sent_ts", received))
                    recorder.record(
                        "worker.queue_wait",
                        sent,
                        max(0.0, received - sent),
                        worker=spec.worker_id,
                        proc=f"worker-{spec.worker_id}",
                    )
                else:
                    __, req_id, kind, payload, k = message
                    recorder = None
                start = time.perf_counter()
                try:
                    if recorder is not None:
                        with recorder.span(
                            "worker.score",
                            worker=spec.worker_id,
                            kind=str(kind),
                            proc=f"worker-{spec.worker_id}",
                        ):
                            parts = []
                            for scorer in scorers:
                                with recorder.span("shard.score", shard=scorer.shard):
                                    parts.append(
                                        scorer.score(
                                            kind, payload, int(k), recorder=recorder
                                        )
                                    )
                            with recorder.span("worker.merge", parts=len(parts)):
                                items, scores = merge_topk(parts, int(k))
                    else:
                        parts = [
                            scorer.score(kind, payload, int(k)) for scorer in scorers
                        ]
                        items, scores = merge_topk(parts, int(k))
                except BaseException as error:
                    registry.counter("shard.errors").inc()
                    conn.send(("error", req_id, type(error).__name__, str(error)))
                    continue
                latency.observe(time.perf_counter() - start)
                registry.counter(f"shard.requests.{kind}").inc()
                if recorder is not None:
                    conn.send(
                        ("ok", req_id, items, scores, model_version, recorder.payload())
                    )
                else:
                    conn.send(("ok", req_id, items, scores, model_version))
                continue
            conn.send(("error", message[1] if len(message) > 1 else -1,
                       "ValueError", f"unknown op '{op}'"))
    finally:
        conn.close()
