"""Shard planning: how the item catalog is split across workers.

A :class:`ShardPlan` is the single source of truth for which worker
owns which items and how global item ids map to a worker's local slice.
Both sides of the cluster hold the same plan — the router uses it to
reason about shard sizes and the workers use it to materialize their
owned item ids — so the mapping can never drift between them.

Two partition strategies:

- ``contiguous`` (default): shard ``s`` owns one dense range of item
  ids.  Sizes differ by at most one (the first ``num_items %
  num_shards`` shards get the extra item).  Contiguous ranges keep a
  worker's rows of the item-embedding table adjacent on disk, which is
  what the mmap-backed weight store wants for page locality.
- ``modulo``: shard ``s`` owns every item with ``item % num_shards ==
  s``.  This round-robin layout spreads popularity-correlated id
  ranges (real catalogs often cluster hot items) evenly across shards
  at the cost of strided table access.

In both strategies a shard's owned items, listed in ascending global
order, define its *local* index space (``local 0`` is the smallest
owned global id), which is exactly the order the worker's score slice
uses — so local Top-K tie-breaks by local position agree with global
tie-breaks by item id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

STRATEGIES = ("contiguous", "modulo")

IntArray = Union[int, Sequence[int], np.ndarray]


@dataclass(frozen=True)
class ShardPlan:
    """Partition of ``num_items`` catalog items into ``num_shards``.

    Empty shards are legal (``num_shards > num_items``); they simply
    never contribute candidates.
    """

    num_items: int
    num_shards: int
    strategy: str = "contiguous"

    def __post_init__(self) -> None:
        if self.num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {self.num_items}")
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy '{self.strategy}' (choose from {STRATEGIES})"
            )

    # -- sizes and ownership -------------------------------------------

    @property
    def shard_sizes(self) -> np.ndarray:
        """Number of items each shard owns, indexed by shard id."""
        base, extra = divmod(self.num_items, self.num_shards)
        sizes = np.full(self.num_shards, base, dtype=np.int64)
        sizes[:extra] += 1
        return sizes

    def _starts(self) -> np.ndarray:
        """Contiguous-strategy range starts (start of shard ``s``)."""
        starts = np.zeros(self.num_shards, dtype=np.int64)
        np.cumsum(self.shard_sizes[:-1], out=starts[1:])
        return starts

    def global_items(self, shard: int) -> np.ndarray:
        """Global item ids owned by ``shard``, ascending.

        The position of an id in this array is its *local* index.
        """
        self._check_shard(shard)
        if self.strategy == "modulo":
            return np.arange(shard, self.num_items, self.num_shards, dtype=np.int64)
        start = int(self._starts()[shard])
        stop = start + int(self.shard_sizes[shard])
        return np.arange(start, stop, dtype=np.int64)

    def shard_of(self, items: IntArray) -> np.ndarray:
        """Owning shard id for each global item id."""
        items = self._check_items(items)
        if self.strategy == "modulo":
            return items % self.num_shards
        base, extra = divmod(self.num_items, self.num_shards)
        boundary = extra * (base + 1)
        wide = np.minimum(items, boundary - 1) // (base + 1) if extra else 0
        if base == 0:
            # More shards than items: everything lives in the first
            # ``extra`` (== num_items) one-item shards.
            return items.astype(np.int64)
        narrow = extra + np.maximum(items - boundary, 0) // base
        return np.where(items < boundary, wide, narrow).astype(np.int64)

    # -- index mapping ---------------------------------------------------

    def to_local(self, shard: int, items: IntArray) -> np.ndarray:
        """Local indices of global ``items`` within ``shard``.

        Raises ``ValueError`` when an item is not owned by ``shard``.
        """
        self._check_shard(shard)
        items = self._check_items(items)
        if not np.all(self.shard_of(items) == shard):
            foreign = items[self.shard_of(items) != shard]
            raise ValueError(
                f"items {foreign.tolist()} are not owned by shard {shard}"
            )
        if self.strategy == "modulo":
            return (items - shard) // self.num_shards
        return items - int(self._starts()[shard])

    def to_global(self, shard: int, local: IntArray) -> np.ndarray:
        """Global item ids for local indices of ``shard``."""
        self._check_shard(shard)
        local = np.atleast_1d(np.asarray(local, dtype=np.int64))
        size = int(self.shard_sizes[shard])
        if local.size and (local.min() < 0 or local.max() >= size):
            raise ValueError(
                f"local index out of range [0, {size}) for shard {shard}"
            )
        if self.strategy == "modulo":
            return shard + local * self.num_shards
        return int(self._starts()[shard]) + local

    # -- serialization ---------------------------------------------------

    def payload(self) -> Dict:
        """JSON-serializable description (also the wire format)."""
        return {
            "num_items": self.num_items,
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "shard_sizes": self.shard_sizes.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "ShardPlan":
        return cls(
            num_items=int(payload["num_items"]),
            num_shards=int(payload["num_shards"]),
            strategy=str(payload["strategy"]),
        )

    # -- validation ------------------------------------------------------

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise IndexError(f"shard {shard} out of range [0, {self.num_shards})")

    def _check_items(self, items: IntArray) -> np.ndarray:
        items = np.atleast_1d(np.asarray(items, dtype=np.int64))
        if items.size and (items.min() < 0 or items.max() >= self.num_items):
            raise ValueError(f"item id out of range [0, {self.num_items})")
        return items
