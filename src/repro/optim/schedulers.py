"""Learning-rate schedules (step decay used for long fine-tuning runs)."""

from __future__ import annotations

from repro.optim.optimizer import Optimizer


class StepDecay:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class ConstantSchedule:
    """No-op schedule, so trainers can treat schedules uniformly."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer

    def step(self) -> None:  # pragma: no cover - trivially nothing
        return None
