"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from repro.nn.module import Parameter


class Optimizer:
    """Base class: holds the parameter list and the shared step logic.

    ``weight_decay`` implements the paper's L2 regularization term
    ``lambda * ||Theta||^2`` by adding ``2 * lambda * theta`` to each
    gradient at step time (equivalent to including it in the loss).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _decayed_grad(self, parameter: Parameter):
        grad = parameter.grad
        if grad is None:
            return None
        if self.weight_decay:
            grad = grad + 2.0 * self.weight_decay * parameter.data
        return grad
