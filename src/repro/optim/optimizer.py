"""Optimizer base class."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: holds the parameter list and the shared step logic.

    ``weight_decay`` implements the paper's L2 regularization term
    ``lambda * ||Theta||^2`` by adding ``2 * lambda * theta`` to each
    gradient at step time (equivalent to including it in the loss).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        """Apply any deferred (lazily skipped) updates.

        Optimizers with a row-sparse fast path override this; for plain
        eager optimizers every step is already fully applied.
        """

    # ------------------------------------------------------------------
    # Serialization (checkpoint/resume support)
    # ------------------------------------------------------------------

    @property
    def kind(self) -> str:
        """Stable identifier stored in checkpoints (``adam``, ``sgd``)."""
        return type(self).__name__.lower()

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot of the optimizer's mutable state.

        Layout: ``{"kind": str, "scalars": {name: number},
        "arrays": {name: ndarray}}`` — scalars serialize as JSON and
        arrays as native ``.npz`` entries in a checkpoint.  Subclasses
        extend ``scalars``/``arrays``; hyper-parameters (lr, betas, …)
        are construction-time configuration and are *not* captured.
        """
        return {"kind": self.kind, "scalars": {}, "arrays": {}}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        kind = state.get("kind")
        if kind != self.kind:
            raise ValueError(
                f"optimizer state was written by '{kind}', not '{self.kind}'"
            )

    def _load_slot_arrays(
        self,
        slots: Sequence[np.ndarray],
        arrays: Dict[str, np.ndarray],
        name: str,
    ) -> None:
        """Copy per-parameter state arrays ``name/<i>`` into ``slots``."""
        for index, slot in enumerate(slots):
            key = f"{name}/{index}"
            if key not in arrays:
                raise KeyError(f"optimizer state is missing '{key}'")
            value = np.asarray(arrays[key])
            if value.shape != slot.shape:
                raise ValueError(
                    f"shape mismatch for optimizer state '{key}': "
                    f"{slot.shape} vs {value.shape}"
                )
            slot[...] = value

    def _decayed_grad(self, parameter: Parameter):
        grad = parameter.grad
        if grad is None:
            return None
        if self.weight_decay:
            grad = grad + 2.0 * self.weight_decay * parameter.data
        return grad
