"""Gradient clipping utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


def global_grad_norm(parameters: Iterable[Parameter]) -> float:
    """L2 norm of all gradients concatenated."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float((parameter.grad**2).sum())
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clipping norm (useful for logging).  Parameters
    without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    parameters = [p for p in parameters if p.grad is not None]
    norm = global_grad_norm(parameters)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for parameter in parameters:
            parameter.grad *= scale
    return norm
