"""Gradient clipping utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.sparse import RowSparseGrad
from repro.nn.module import Parameter


def global_grad_norm(parameters: Iterable[Parameter]) -> float:
    """L2 norm of all gradients concatenated.

    Row-sparse gradients are densified for the reduction: numpy's
    pairwise summation tree depends on the array length, so summing
    squares over just the touched rows would differ from the dense norm
    in the last bits — and the clip scale derived from it would break
    the sparse path's bit-for-bit equivalence with dense training.
    """
    total = 0.0
    for parameter in parameters:
        grad = parameter.grad
        if grad is None:
            continue
        if isinstance(grad, RowSparseGrad):
            grad = grad.to_dense()
        total += float((grad**2).sum())
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clipping norm (useful for logging).  Parameters
    without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    parameters = [p for p in parameters if p.grad is not None]
    norm = global_grad_norm(parameters)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for parameter in parameters:
            parameter.grad *= scale
    return norm
