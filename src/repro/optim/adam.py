"""Adam optimizer (the paper's choice for all gradient-based methods).

Two execution paths share one set of semantics:

- the **dense path** is the textbook update over full arrays, with
  preallocated scratch buffers so steady-state stepping allocates
  nothing;
- the **sparse fast path** fires when a parameter's gradient arrives as
  a :class:`~repro.autograd.sparse.RowSparseGrad` (embedding gathers).
  Only the touched rows are updated; every *untouched* row's
  deterministic drift (moment decay, bias-correction shift, weight-decay
  pull) is deferred and replayed row by row the moment something needs
  the row's true value — a forward gather (via the parameter's
  ``_gather_hook``), a later gradient, a checkpoint, or :meth:`sync`.

The replay loop re-executes the exact dense op sequence for each
skipped step, so the two paths produce bit-identical weights and
moments (up to the sign of exact zeros).  Per-step cost on the sparse
path scales with the batch, not the table.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.autograd.sparse import RowSparseGrad
from repro.nn.module import Parameter
from repro.optim.lazy import LazyRowState
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction, matching the standard formulation."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]
        #: Per-parameter lazy row bookkeeping; created on the first
        #: row-sparse gradient a parameter receives.
        self._lazy: List[Optional[LazyRowState]] = [None] * len(self.parameters)
        #: Per-parameter scratch buffers for the dense path, allocated
        #: on first dense use so sparse-path tables never pay for them.
        self._scratch: List[Optional[Dict[str, np.ndarray]]] = [None] * len(
            self.parameters
        )

    # ------------------------------------------------------------------
    # Serialization (checkpoint/resume support)
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        # Replay all deferred updates first: with every row current and
        # no pending ranges, the lazy state collapses to one anchor
        # scalar per tracked parameter.
        self.sync()
        state = super().state_dict()
        state["scalars"]["step_count"] = self._step_count
        for index, (first, second) in enumerate(
            zip(self._first_moment, self._second_moment)
        ):
            state["arrays"][f"first_moment/{index}"] = first.copy()
            state["arrays"][f"second_moment/{index}"] = second.copy()
        for index, lazy in enumerate(self._lazy):
            if lazy is not None:
                state["scalars"][f"lazy_anchor/{index}"] = int(lazy.last[0])
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["scalars"]["step_count"])
        self._load_slot_arrays(self._first_moment, state["arrays"], "first_moment")
        self._load_slot_arrays(self._second_moment, state["arrays"], "second_moment")
        # Tolerant: checkpoints written before the sparse fast path (or
        # from dense-only runs) simply carry no lazy anchors.
        for index, parameter in enumerate(self.parameters):
            anchor = state["scalars"].get(f"lazy_anchor/{index}")
            if anchor is None:
                self._lazy[index] = None
                if getattr(parameter, "_gather_hook", None) is not None:
                    parameter._gather_hook = None
            else:
                self._lazy[index] = LazyRowState(
                    parameter.data.shape[0], int(anchor)
                )
                self._install_hook(index, parameter)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self) -> None:
        self._step_count += 1
        step = self._step_count
        for index, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if grad is None:
                continue
            if isinstance(grad, RowSparseGrad):
                self._sparse_step(index, parameter, grad, step)
            else:
                lazy = self._lazy[index]
                if lazy is not None:
                    # A lazily tracked table got a full dense gradient
                    # (e.g. sparse mode toggled off): catch every row up
                    # before the dense update touches them all.
                    self._replay_rows(index, parameter, None, step - 1)
                self._dense_step(index, parameter, grad, step)
                if lazy is not None:
                    lazy.mark_synced(step)

    def _dense_step(
        self, index: int, parameter: Parameter, grad: np.ndarray, step: int
    ) -> None:
        """Full-array update, bit-identical to the reference formulation::

            grad = grad + 2 * weight_decay * data        # if weight_decay
            first = beta1 * first + (1 - beta1) * grad
            second = beta2 * second + (1 - beta2) * grad**2
            data -= lr * (first / bias1) / (sqrt(second / bias2) + eps)

        but routed through preallocated scratch buffers so the steady
        state performs zero heap allocations (scalar-array products
        commute bitwise, so ``out=`` ufuncs preserve every bit).
        """
        scratch = self._scratch[index]
        if scratch is None:
            scratch = {
                "a": np.empty_like(parameter.data),
                "b": np.empty_like(parameter.data),
            }
            if self.weight_decay:
                scratch["g"] = np.empty_like(parameter.data)
            self._scratch[index] = scratch
        first = self._first_moment[index]
        second = self._second_moment[index]
        tmp_a = scratch["a"]
        tmp_b = scratch["b"]
        if self.weight_decay:
            decayed = scratch["g"]
            np.multiply(parameter.data, 2.0 * self.weight_decay, out=decayed)
            np.add(decayed, grad, out=decayed)
            grad = decayed
        bias1 = 1.0 - self.beta1**step
        bias2 = 1.0 - self.beta2**step
        first *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=tmp_a)
        first += tmp_a
        second *= self.beta2
        np.power(grad, 2, out=tmp_a)
        tmp_a *= 1.0 - self.beta2
        second += tmp_a
        np.divide(second, bias2, out=tmp_a)
        np.sqrt(tmp_a, out=tmp_a)
        tmp_a += self.epsilon
        np.divide(first, bias1, out=tmp_b)
        tmp_b *= self.lr
        tmp_b /= tmp_a
        parameter.data -= tmp_b

    def _sparse_step(
        self, index: int, parameter: Parameter, grad: RowSparseGrad, step: int
    ) -> None:
        """Update only the rows ``grad`` touches; defer the rest."""
        lazy = self._lazy[index]
        if lazy is None:
            # Every row is dense-current through the previous step: until
            # now this parameter only ever saw dense grads (or none, in
            # which case the dense path skipped it entirely).
            lazy = LazyRowState(parameter.data.shape[0], step - 1)
            self._lazy[index] = lazy
            self._install_hook(index, parameter)
        rows = grad.indices
        self._replay_rows(index, parameter, rows, step - 1)
        lazy.note_step(step)
        first = self._first_moment[index]
        second = self._second_moment[index]
        f = first[rows]
        s = second[rows]
        theta = parameter.data[rows]
        g = grad.values
        if self.weight_decay:
            g = g + 2.0 * self.weight_decay * theta
        bias1 = 1.0 - self.beta1**step
        bias2 = 1.0 - self.beta2**step
        f *= self.beta1
        f += (1.0 - self.beta1) * g
        s *= self.beta2
        s += (1.0 - self.beta2) * g**2
        theta -= self.lr * (f / bias1) / (np.sqrt(s / bias2) + self.epsilon)
        first[rows] = f
        second[rows] = s
        parameter.data[rows] = theta
        lazy.last[rows] = step

    # ------------------------------------------------------------------
    # Lazy catch-up machinery
    # ------------------------------------------------------------------

    def _install_hook(self, index: int, parameter: Parameter) -> None:
        parameter._gather_hook = (
            lambda idx, i=index, p=parameter: self._catch_up_read(i, p, idx)
        )

    def _catch_up_read(
        self, index: int, parameter: Parameter, indices: np.ndarray
    ) -> None:
        """Pre-gather hook: make the rows about to be read dense-current."""
        lazy = self._lazy[index]
        if lazy is None or not lazy.ranges:
            return
        rows = np.unique(np.asarray(indices, dtype=np.int64).reshape(-1))
        self._replay_rows(index, parameter, rows, lazy.ranges[-1][1])

    def _replay_rows(
        self,
        index: int,
        parameter: Parameter,
        rows: Optional[np.ndarray],
        upto: int,
    ) -> None:
        """Re-run the dense per-step drift for ``rows`` through ``upto``.

        ``rows is None`` means every row.  For each recorded gradient
        step a stale row missed, the dense path would have applied the
        update with that row's gradient slice equal to zero; this loop
        re-executes exactly those ops (grouped over rows that share the
        same staleness, so each group advances vectorized).
        """
        lazy = self._lazy[index]
        if lazy is None:
            return
        if rows is None:
            rows = np.flatnonzero(lazy.last < upto)
        else:
            rows = rows[lazy.last[rows] < upto]
        if rows.size == 0:
            return
        first = self._first_moment[index]
        second = self._second_moment[index]
        data = parameter.data
        reduce_axes = tuple(range(1, data.ndim))
        for anchor, group in lazy.group_rows_by_last(rows):
            if not lazy.has_steps_between(anchor, upto):
                lazy.last[group] = upto
                continue
            if not self.weight_decay:
                # Without weight decay the skipped-step gradient is an
                # exact zero, so rows whose moments are still all-zero
                # are fixed points of the replay — skip them wholesale.
                live = np.logical_or(
                    first[group].any(axis=reduce_axes),
                    second[group].any(axis=reduce_axes),
                )
                stuck = group[~live]
                if stuck.size:
                    lazy.last[stuck] = upto
                group = group[live]
                if group.size == 0:
                    continue
            f = first[group]
            s = second[group]
            theta = data[group]
            for step in lazy.steps_between(anchor, upto):
                bias1 = 1.0 - self.beta1**step
                bias2 = 1.0 - self.beta2**step
                if self.weight_decay:
                    g = 2.0 * self.weight_decay * theta
                    f *= self.beta1
                    f += (1.0 - self.beta1) * g
                    s *= self.beta2
                    s += (1.0 - self.beta2) * g**2
                else:
                    f *= self.beta1
                    s *= self.beta2
                theta -= self.lr * (f / bias1) / (np.sqrt(s / bias2) + self.epsilon)
            first[group] = f
            second[group] = s
            data[group] = theta
            lazy.last[group] = upto

    def sync(self) -> None:
        """Apply every deferred row update; afterwards all parameters
        hold exactly the weights the dense path would hold."""
        for index, parameter in enumerate(self.parameters):
            lazy = self._lazy[index]
            if lazy is None or not lazy.ranges:
                continue
            upto = lazy.ranges[-1][1]
            self._replay_rows(index, parameter, None, upto)
            lazy.mark_synced(upto)
