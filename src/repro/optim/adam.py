"""Adam optimizer (the paper's choice for all gradient-based methods)."""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction, matching the standard formulation."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["scalars"]["step_count"] = self._step_count
        for index, (first, second) in enumerate(
            zip(self._first_moment, self._second_moment)
        ):
            state["arrays"][f"first_moment/{index}"] = first.copy()
            state["arrays"][f"second_moment/{index}"] = second.copy()
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["scalars"]["step_count"])
        self._load_slot_arrays(self._first_moment, state["arrays"], "first_moment")
        self._load_slot_arrays(self._second_moment, state["arrays"], "second_moment")

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, first, second in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            grad = self._decayed_grad(parameter)
            if grad is None:
                continue
            first *= self.beta1
            first += (1.0 - self.beta1) * grad
            second *= self.beta2
            second += (1.0 - self.beta2) * grad**2
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter.data -= self.lr * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )
