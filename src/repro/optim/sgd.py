"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Plain SGD; the paper's training method samples one positive plus
    N negatives per gradient step and applies SGD-style updates."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        for index, velocity in enumerate(self._velocity):
            state["arrays"][f"velocity/{index}"] = velocity.copy()
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._load_slot_arrays(self._velocity, state["arrays"], "velocity")

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = self._decayed_grad(parameter)
            if grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data -= self.lr * grad
