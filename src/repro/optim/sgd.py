"""Stochastic gradient descent with optional momentum.

Like :class:`~repro.optim.adam.Adam`, SGD understands row-sparse
gradients from embedding gathers.  With neither momentum nor weight
decay the dense update is an exact no-op on zero-gradient rows, so the
sparse path needs no bookkeeping at all — it just updates the touched
rows.  With momentum and/or weight decay, untouched rows drift every
step (velocity decay, weight-decay pull), so the same lazy replay
machinery Adam uses keeps the sparse path bit-identical to dense.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.autograd.sparse import RowSparseGrad
from repro.nn.module import Parameter
from repro.optim.lazy import LazyRowState
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Plain SGD; the paper's training method samples one positive plus
    N negatives per gradient step and applies SGD-style updates."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        #: Global step counter; only consumed by the lazy bookkeeping
        #: (plain SGD's update is step-independent).
        self._step_count = 0
        self._lazy: List[Optional[LazyRowState]] = [None] * len(self.parameters)

    @property
    def _stateless_rows(self) -> bool:
        """True when untouched rows are exact fixed points of a step."""
        return not self.momentum and not self.weight_decay

    def state_dict(self) -> Dict[str, Any]:
        self.sync()
        state = super().state_dict()
        state["scalars"]["step_count"] = self._step_count
        for index, velocity in enumerate(self._velocity):
            state["arrays"][f"velocity/{index}"] = velocity.copy()
        for index, lazy in enumerate(self._lazy):
            if lazy is not None:
                state["scalars"][f"lazy_anchor/{index}"] = int(lazy.last[0])
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        # Tolerant: checkpoints written before the sparse fast path have
        # no step counter or lazy anchors.
        self._step_count = int(state["scalars"].get("step_count", 0))
        self._load_slot_arrays(self._velocity, state["arrays"], "velocity")
        for index, parameter in enumerate(self.parameters):
            anchor = state["scalars"].get(f"lazy_anchor/{index}")
            if anchor is None:
                self._lazy[index] = None
                if getattr(parameter, "_gather_hook", None) is not None:
                    parameter._gather_hook = None
            else:
                self._lazy[index] = LazyRowState(
                    parameter.data.shape[0], int(anchor)
                )
                self._install_hook(index, parameter)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self) -> None:
        self._step_count += 1
        step = self._step_count
        for index, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if grad is None:
                continue
            if isinstance(grad, RowSparseGrad):
                self._sparse_step(index, parameter, grad, step)
                continue
            lazy = self._lazy[index]
            if lazy is not None:
                self._replay_rows(index, parameter, None, step - 1)
            grad = self._decayed_grad(parameter)
            velocity = self._velocity[index]
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data -= self.lr * grad
            if lazy is not None:
                lazy.mark_synced(step)

    def _sparse_step(
        self, index: int, parameter: Parameter, grad: RowSparseGrad, step: int
    ) -> None:
        rows = grad.indices
        if self._stateless_rows:
            # Zero-gradient rows are untouched by the dense update, so
            # no deferral is needed: update the touched rows and return.
            parameter.data[rows] -= self.lr * grad.values
            return
        lazy = self._lazy[index]
        if lazy is None:
            lazy = LazyRowState(parameter.data.shape[0], step - 1)
            self._lazy[index] = lazy
            self._install_hook(index, parameter)
        self._replay_rows(index, parameter, rows, step - 1)
        lazy.note_step(step)
        theta = parameter.data[rows]
        g = grad.values
        if self.weight_decay:
            g = g + 2.0 * self.weight_decay * theta
        if self.momentum:
            velocity = self._velocity[index]
            v = velocity[rows]
            v *= self.momentum
            v += g
            velocity[rows] = v
            g = v
        theta -= self.lr * g
        parameter.data[rows] = theta
        lazy.last[rows] = step

    # ------------------------------------------------------------------
    # Lazy catch-up machinery
    # ------------------------------------------------------------------

    def _install_hook(self, index: int, parameter: Parameter) -> None:
        parameter._gather_hook = (
            lambda idx, i=index, p=parameter: self._catch_up_read(i, p, idx)
        )

    def _catch_up_read(
        self, index: int, parameter: Parameter, indices: np.ndarray
    ) -> None:
        lazy = self._lazy[index]
        if lazy is None or not lazy.ranges:
            return
        rows = np.unique(np.asarray(indices, dtype=np.int64).reshape(-1))
        self._replay_rows(index, parameter, rows, lazy.ranges[-1][1])

    def _replay_rows(
        self,
        index: int,
        parameter: Parameter,
        rows: Optional[np.ndarray],
        upto: int,
    ) -> None:
        """Re-run the zero-gradient dense update for stale ``rows``."""
        lazy = self._lazy[index]
        if lazy is None:
            return
        if rows is None:
            rows = np.flatnonzero(lazy.last < upto)
        else:
            rows = rows[lazy.last[rows] < upto]
        if rows.size == 0:
            return
        velocity = self._velocity[index]
        data = parameter.data
        reduce_axes = tuple(range(1, data.ndim))
        for anchor, group in lazy.group_rows_by_last(rows):
            if not lazy.has_steps_between(anchor, upto):
                lazy.last[group] = upto
                continue
            if not self.weight_decay:
                # Momentum-only drift: rows with an all-zero velocity
                # are fixed points of the zero-gradient update.
                live = velocity[group].any(axis=reduce_axes)
                stuck = group[~live]
                if stuck.size:
                    lazy.last[stuck] = upto
                group = group[live]
                if group.size == 0:
                    continue
            theta = data[group]
            v = velocity[group]
            for _ in lazy.steps_between(anchor, upto):
                if self.weight_decay:
                    g = 2.0 * self.weight_decay * theta
                else:
                    g = 0.0
                if self.momentum:
                    v *= self.momentum
                    v += g
                    g = v
                theta -= self.lr * g
            data[group] = theta
            velocity[group] = v
            lazy.last[group] = upto

    def sync(self) -> None:
        for index, parameter in enumerate(self.parameters):
            lazy = self._lazy[index]
            if lazy is None or not lazy.ranges:
                continue
            upto = lazy.ranges[-1][1]
            self._replay_rows(index, parameter, None, upto)
            lazy.mark_synced(upto)
