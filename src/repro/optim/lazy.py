"""Per-row lazy-update bookkeeping for sparse optimizer fast paths.

A dense optimizer step updates *every* row of *every* parameter — even
with a zero gradient, Adam's moments keep decaying and weight decay
keeps pulling, so untouched embedding rows drift on every step.  The
sparse fast paths defer that drift: a row is only brought up to date
("caught up") when something needs its true value — a forward gather, a
gradient update for the row, a checkpoint, or an explicit ``sync()``.

:class:`LazyRowState` tracks, per parameter:

- ``last`` — for each row, the global step count through which the row
  is current;
- ``ranges`` — the inclusive ``[start, end]`` global step ranges at
  which this parameter received *any* gradient.  Dense optimizers skip
  parameters whose gradient is ``None`` entirely (no decay, no weight
  decay), so only steps recorded here must ever be replayed.

The ranges stay tiny: consecutive gradient steps extend the last range
in place, so their count is bounded by the number of task switches, not
the number of steps.  ``sync()`` prunes them back to empty.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np


class LazyRowState:
    """Row-level "current through step N" bookkeeping for one parameter."""

    __slots__ = ("last", "ranges")

    def __init__(self, num_rows: int, anchor: int) -> None:
        #: Global step count through which each row's weight/moments are
        #: up to date.  ``anchor`` is the step at which lazy tracking
        #: began (every row was dense-current then).
        self.last = np.full(num_rows, anchor, dtype=np.int64)
        #: Inclusive ``[start, end]`` global steps with a gradient.
        self.ranges: List[List[int]] = []

    # ------------------------------------------------------------------
    # Gradient-step recording
    # ------------------------------------------------------------------

    def note_step(self, step: int) -> None:
        """Record that the parameter received a gradient at ``step``."""
        if self.ranges:
            last_range = self.ranges[-1]
            if last_range[1] >= step:
                return
            if last_range[1] == step - 1:
                last_range[1] = step
                return
        self.ranges.append([step, step])

    @property
    def latest_step(self) -> Optional[int]:
        """Newest recorded gradient step (None when nothing is pending)."""
        return self.ranges[-1][1] if self.ranges else None

    # ------------------------------------------------------------------
    # Replay helpers
    # ------------------------------------------------------------------

    def steps_between(self, after: int, upto: int) -> Iterator[int]:
        """Yield recorded gradient steps ``s`` with ``after < s <= upto``."""
        for start, end in self.ranges:
            if end <= after:
                continue
            if start > upto:
                break
            yield from range(max(start, after + 1), min(end, upto) + 1)

    def has_steps_between(self, after: int, upto: int) -> bool:
        for start, end in self.ranges:
            if end <= after:
                continue
            return start <= upto
        return False

    def group_rows_by_last(
        self, rows: np.ndarray
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(anchor, rows)`` groups sharing the same ``last`` value.

        Grouping keeps the replay loops vectorized across rows: all rows
        stale since the same step advance together.
        """
        lasts = self.last[rows]
        order = np.argsort(lasts, kind="stable")
        sorted_rows = rows[order]
        sorted_lasts = lasts[order]
        boundaries = np.flatnonzero(np.diff(sorted_lasts)) + 1
        start = 0
        for stop in list(boundaries) + [sorted_rows.size]:
            if stop > start:
                yield int(sorted_lasts[start]), sorted_rows[start:stop]
            start = stop

    # ------------------------------------------------------------------
    # Sync
    # ------------------------------------------------------------------

    def mark_synced(self, step: int) -> None:
        """All rows are current through ``step``; drop replayed history."""
        self.last[:] = step
        self.ranges.clear()
