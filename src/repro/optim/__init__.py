"""Optimizers for training on the autograd engine."""

from repro.optim.adam import Adam
from repro.optim.clipping import clip_grad_norm, global_grad_norm
from repro.optim.lazy import LazyRowState
from repro.optim.optimizer import Optimizer
from repro.optim.schedulers import ConstantSchedule, StepDecay
from repro.optim.sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "StepDecay",
    "ConstantSchedule",
    "LazyRowState",
    "clip_grad_norm",
    "global_grad_norm",
]
