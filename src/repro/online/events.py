"""Append-only JSONL interaction log + seeded synthetic event stream.

The streaming subsystem's source of truth is a plain JSONL file: one
interaction event per line, strictly append-only, so a log can be
tailed by a trainer while a producer keeps appending.  Offsets are
**byte** offsets of line starts — a single integer fully identifies a
resume position, survives process death, and is insensitive to how
many bytes the producer appended since.

Event schema (one JSON object per line)::

    {"seq": 17, "ts": 3.25, "kind": "user",  "entity": 4, "item": 92}
    {"seq": 18, "ts": 3.31, "kind": "group", "entity": 1, "item": 7}

``seq`` is the producer's running sequence number, ``ts`` a float
timestamp in days since the stream epoch, ``kind`` selects the BPR
task (user-item or group-item), ``entity`` the user/group id and
``item`` the positive item.

:func:`generate_events` synthesizes a seeded drifting stream with the
same timestamp machinery as :func:`repro.data.temporal.attach_timestamps`
(per-item activity centres drawn from a recency-biased beta, Gaussian
event windows): early events favour one half of the catalog's activity
centres, late events the other, so a model trained on the stream's
head is measurably stale by its tail — exactly the situation online
learning exists for.

:class:`EventLogReader` replays a log from any byte offset, tolerates
a torn final line (a producer killed mid-append), and exposes the
offset *after the last fully consumed line* for checkpointing.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import GroupRecommendationDataset
from repro.utils import RngLike, ensure_rng

PathLike = Union[str, Path]

EVENT_KINDS = ("user", "group")


@dataclass(frozen=True)
class InteractionEvent:
    """One observed interaction: an entity accepted an item at a time."""

    seq: int
    ts: float
    kind: str  # "user" | "group"
    entity: int
    item: int

    def validate(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind '{self.kind}'")
        if self.entity < 0 or self.item < 0:
            raise ValueError(f"negative id in event {self}")


def generate_events(
    dataset: GroupRecommendationDataset,
    num_events: int,
    horizon_days: float = 30.0,
    recency_bias: float = 1.5,
    group_fraction: float = 0.15,
    drift: float = 0.75,
    rng: RngLike = None,
) -> List[InteractionEvent]:
    """Synthesize a time-ordered drifting event stream over ``dataset``.

    Item activity centres come from the same recency-biased beta the
    temporal-split machinery uses; each event picks its item from a
    Gaussian window around "items active now", so item popularity
    *drifts* across the stream: ``drift`` in [0, 1] scales how strongly
    the active set moves (0 = stationary popularity, 1 = fully
    time-locked).  Entities are drawn uniformly; ``group_fraction`` of
    events are group-item interactions.

    Deterministic for a fixed ``rng`` seed.
    """
    if num_events < 0:
        raise ValueError(f"num_events must be >= 0, got {num_events}")
    if horizon_days <= 0:
        raise ValueError("horizon_days must be positive")
    if not 0.0 <= group_fraction <= 1.0:
        raise ValueError("group_fraction must be in [0, 1]")
    if not 0.0 <= drift <= 1.0:
        raise ValueError("drift must be in [0, 1]")
    generator = ensure_rng(rng)
    # Per-item activity centres, exactly like attach_timestamps.
    centres = (
        generator.beta(recency_bias, 1.0, size=dataset.num_items) * horizon_days
    )
    spread = horizon_days * 0.05
    times = np.sort(
        generator.beta(recency_bias, 1.0, size=num_events) * horizon_days
    )
    kinds = generator.random(num_events) < group_fraction
    users = generator.integers(0, dataset.num_users, size=num_events)
    groups = generator.integers(0, max(1, dataset.num_groups), size=num_events)
    events: List[InteractionEvent] = []
    for seq in range(num_events):
        now = float(times[seq])
        # Affinity of each item for "now": a Gaussian window over the
        # activity centres, flattened toward uniform by (1 - drift).
        window = np.exp(-0.5 * ((centres - now) / max(spread, 1e-9)) ** 2)
        weights = drift * window + (1.0 - drift)
        total = float(weights.sum())
        if total <= 0.0:
            weights = np.full(dataset.num_items, 1.0 / dataset.num_items)
        else:
            weights = weights / total
        item = int(generator.choice(dataset.num_items, p=weights))
        kind = "group" if (kinds[seq] and dataset.num_groups > 0) else "user"
        entity = int(groups[seq]) if kind == "group" else int(users[seq])
        events.append(
            InteractionEvent(seq=seq, ts=now, kind=kind, entity=entity, item=item)
        )
    return events


# ----------------------------------------------------------------------
# Log I/O
# ----------------------------------------------------------------------


def append_events(path: PathLike, events: Sequence[InteractionEvent]) -> int:
    """Append ``events`` as JSONL lines; returns the end byte offset.

    Lines are written in one buffered pass and fsynced, so a reader
    polling the log sees either none or all of this batch's complete
    lines (plus, worst case under kill -9, one torn final line — which
    :class:`EventLogReader` skips until it is completed).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        for event in events:
            event.validate()
            handle.write(json.dumps(asdict(event), sort_keys=True))
            handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
        return handle.tell()


def write_event_log(path: PathLike, events: Sequence[InteractionEvent]) -> int:
    """Write a fresh log (truncating any existing file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8"):
        pass
    return append_events(path, events)


class EventLogReader:
    """Replayable reader over an append-only JSONL event log.

    ``offset`` is the byte position after the last *fully consumed*
    line — checkpoint it, and a new reader constructed with it resumes
    exactly where this one stopped, even across process death.  A
    torn final line (producer killed mid-write) is never yielded; the
    reader simply stops before it and picks the line up once the
    producer completes it.
    """

    def __init__(self, path: PathLike, offset: int = 0) -> None:
        self.path = Path(path)
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self._offset = int(offset)

    @property
    def offset(self) -> int:
        return self._offset

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self._offset = int(offset)

    def lag_bytes(self) -> int:
        """Bytes appended to the log beyond the current offset.

        The streaming analogue of consumer lag: 0 means the reader is
        caught up with the producer.  Never negative (a truncated or
        missing log reads as fully caught up).
        """
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return 0
        return max(0, size - self._offset)

    def read_batch(self, max_events: int) -> List[InteractionEvent]:
        """Up to ``max_events`` complete events from the current offset."""
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        events: List[InteractionEvent] = []
        if not self.path.exists():
            return events
        with open(self.path, "r", encoding="utf-8") as handle:
            handle.seek(self._offset)
            while len(events) < max_events:
                line = handle.readline()
                if not line or not line.endswith("\n"):
                    break  # end of log, or a torn line still being written
                stripped = line.strip()
                if stripped:
                    events.append(self._decode(stripped))
                self._offset += len(line.encode("utf-8"))
        return events

    def __iter__(self) -> Iterator[InteractionEvent]:
        """Drain every complete event currently in the log."""
        while True:
            batch = self.read_batch(1024)
            if not batch:
                return
            for event in batch:
                yield event

    @staticmethod
    def _decode(line: str) -> InteractionEvent:
        payload = json.loads(line)
        event = InteractionEvent(
            seq=int(payload["seq"]),
            ts=float(payload["ts"]),
            kind=str(payload["kind"]),
            entity=int(payload["entity"]),
            item=int(payload["item"]),
        )
        event.validate()
        return event


def read_events(
    path: PathLike, offset: int = 0, limit: Optional[int] = None
) -> List[InteractionEvent]:
    """Convenience: all (or the first ``limit``) events from ``offset``."""
    reader = EventLogReader(path, offset=offset)
    if limit is None:
        return list(reader)
    return reader.read_batch(limit)
