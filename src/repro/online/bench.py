"""Online-serving benchmark: p99 under continuous hot-swaps vs baseline.

The zero-downtime claim in docs/online.md is measured, not asserted:
:func:`run_online_swap_bench` serves the same request stream three
times through an engine-backed
:class:`~repro.serving.RecommendationService`:

1. **idle** — model frozen, nothing else running (floor);
2. **baseline** — a streaming
   :class:`~repro.online.trainer.OnlineTrainer` trains in-process but
   publishes nothing (the no-swap control: same CPU/GIL load);
3. **with_swaps** — the trainer publishes version after version and a
   :class:`~repro.online.swap.ModelSwapper` applies each one under the
   traffic.

``p99_ratio`` compares phase 3 against phase 2, isolating what
hot-swapping itself costs; a ratio near 1 means swaps are invisible to
the tail (the acceptance bar is 2x).  ``p99_ratio_vs_idle`` shows the
cost of co-locating a trainer at all.

Every response's ``model_version`` is collected, so the report also
shows which versions actually served traffic and that no request
failed or returned an unversioned response mid-swap.

Used by the ``repro online-bench`` CLI command; the committed
``results/online_swap.json`` is one run of it.
"""

from __future__ import annotations

import itertools
import threading
import time
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.core.groupsa import GroupSA
from repro.data.dataset import GroupRecommendationDataset
from repro.engine.bench import latency_summary
from repro.engine.service import EngineConfig
from repro.obs.metrics_registry import MetricsRegistry
from repro.online.events import EventLogReader, generate_events, write_event_log
from repro.online.snapshots import SnapshotPublisher
from repro.online.swap import ModelSwapper
from repro.online.trainer import OnlineTrainer, OnlineTrainerConfig
from repro.persistence import load_checkpoint
from repro.serving import RecommendationService


def _publish_loop(
    trainer: OnlineTrainer,
    reader: EventLogReader,
    stop: threading.Event,
    events_per_version: int,
    publish_interval_s: float,
    publish: bool = True,
) -> None:
    """Keep training (and, with ``publish``, publishing) until stopped.

    Consumes ``events_per_version`` events per cycle; recycles the log
    from the top when it runs dry so the load stays constant for as
    long as the request phase lasts.  ``publish_interval_s`` paces the
    cycles the way a real producer would.  ``publish=False`` is the
    control: identical streaming-training load, no versions published —
    the no-swap baseline that isolates what hot-swapping itself costs
    (as opposed to what sharing a process with a trainer costs).
    """
    while not stop.is_set():
        consumed = 0
        while consumed < events_per_version and not stop.is_set():
            batch = reader.read_batch(1)
            if not batch:
                reader.seek(0)
                break
            trainer.ingest(batch[0])
            consumed += 1
        trainer.step_partial()
        if publish:
            trainer.publish()
        stop.wait(publish_interval_s)


def _drive(
    request: Callable[[int], None],
    clients: int,
    should_stop: Callable[[int], bool],
) -> dict:
    """Closed-loop driver with a dynamic stop condition.

    Unlike :func:`repro.engine.bench.run_closed_loop` the request count
    is open-ended: each client thread pulls the next global index until
    ``should_stop(index)`` says the phase is over — which lets the swap
    phase keep the traffic up until enough swaps actually landed under
    it.
    """
    counter = itertools.count()
    lock = threading.Lock()
    latencies: list = []

    def worker() -> None:
        local = []
        while True:
            index = next(counter)
            if should_stop(index):
                break
            started = time.perf_counter()
            request(index)
            local.append(time.perf_counter() - started)
        with lock:
            latencies.extend(local)

    wall_start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"repro-bench-{i}", daemon=True)
        for i in range(max(1, clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - wall_start
    return latency_summary(latencies, elapsed)


def run_online_swap_bench(
    model: GroupSA,
    dataset: GroupRecommendationDataset,
    workdir,
    num_requests: int = 300,
    clients: int = 4,
    k: int = 10,
    num_events: int = 1500,
    events_per_version: int = 64,
    batch_size: int = 16,
    keep_last: int = 3,
    poll_interval: float = 0.01,
    seed: int = 0,
    min_swaps: int = 3,
    publish_interval_s: float = 0.25,
    deadline_s: float = 120.0,
    engine_config: Optional[EngineConfig] = None,
    metrics_path: Optional[str] = None,
) -> dict:
    """Measure serving p99 with and without continuous hot-swaps.

    ``model`` is the *trainer's* model; serving always runs on a fresh
    copy loaded from the first published snapshot, so streaming updates
    never mutate weights mid-request — only whole-version swaps reach
    the serving path (the invariant the subsystem exists to provide).

    Both phases serve at least ``num_requests`` requests after a
    warm-up pass; the swap phase additionally keeps the traffic up
    until ``min_swaps`` hot-swaps have landed under it (bounded by
    ``deadline_s``), so the reported tail latency genuinely overlaps
    swapping.
    """
    workdir = Path(workdir)
    registry = MetricsRegistry()
    publisher = SnapshotPublisher(workdir / "snapshots", keep_last=keep_last)
    trainer = OnlineTrainer(
        model,
        dataset,
        publisher,
        config=OnlineTrainerConfig(batch_size=batch_size, keep_last=keep_last),
        registry=registry,
        metrics_path=metrics_path,
    )
    initial = trainer.publish()

    log_path = workdir / "events.jsonl"
    events = generate_events(
        dataset, num_events, rng=np.random.default_rng(seed)
    )
    write_event_log(log_path, events)

    serving_model, __ = load_checkpoint(initial.path)
    service = RecommendationService(
        model=serving_model, dataset=dataset, model_version=initial.version
    )
    service.enable_engine(engine_config)

    request_rng = np.random.default_rng(seed + 1)
    users = request_rng.integers(0, dataset.num_users, size=max(1, num_requests))
    served_versions: list = []
    failures: list = []

    def request(index: int) -> None:
        try:
            response = service.recommend_for_user(
                int(users[index % users.size]), k=k
            )
            served_versions.append(response.model_version)
        except BaseException as error:  # the bar is *zero* failed requests
            failures.append(repr(error))

    try:
        # Warm-up: touch every distinct user once so neither phase pays
        # engine start-up or cold score-cache blocks in its tail.
        for user in sorted({int(u) for u in users}):
            service.recommend_for_user(user, k=k)
        served_versions.clear()

        idle = _drive(request, clients, lambda i: i >= num_requests)
        baseline_versions = sorted({v for v in served_versions})
        served_versions.clear()

        # No-swap baseline: the *same* streaming-training load runs in
        # the process, but no version is published and nothing swaps.
        # Comparing the swap phase's tail against this (rather than the
        # idle phase's) isolates what hot-swapping itself costs; the
        # idle numbers are reported too, so the cost of co-locating a
        # trainer at all is also visible.
        control_stop = threading.Event()
        control_thread = threading.Thread(
            target=_publish_loop,
            args=(
                trainer, EventLogReader(log_path), control_stop,
                events_per_version, publish_interval_s, False,
            ),
            name="repro-online-control",
            daemon=True,
        )
        control_thread.start()
        try:
            baseline = _drive(request, clients, lambda i: i >= num_requests)
        finally:
            control_stop.set()
            control_thread.join(timeout=60)
        served_versions.clear()

        swapper = ModelSwapper(
            service, workdir / "snapshots",
            poll_interval=poll_interval, registry=registry,
        )
        swapper.current = initial
        stop = threading.Event()
        reader = EventLogReader(log_path)
        publisher_thread = threading.Thread(
            target=_publish_loop,
            args=(trainer, reader, stop, events_per_version, publish_interval_s),
            name="repro-online-publisher",
            daemon=True,
        )
        swaps_applied = registry.counter("swap.applied")
        deadline = time.monotonic() + deadline_s

        def swap_phase_done(index: int) -> bool:
            if index < num_requests:
                return False
            if swaps_applied.value >= min_swaps:
                return True
            return time.monotonic() > deadline

        with swapper:
            publisher_thread.start()
            try:
                with_swaps = _drive(request, clients, swap_phase_done)
            finally:
                stop.set()
                publisher_thread.join(timeout=60)
        staleness = swapper.staleness_seconds
    finally:
        service.close()
        trainer.close()

    swap_summary = registry.histogram("swap.apply").summary()
    baseline_p99 = baseline["p99_ms"]
    swap_p99 = with_swaps["p99_ms"]
    return {
        "requests": int(num_requests),
        "clients": int(clients),
        "k": int(k),
        "events_per_version": int(events_per_version),
        "batch_size": int(batch_size),
        "min_swaps": int(min_swaps),
        "publish_interval_s": float(publish_interval_s),
        "baseline_idle": idle,
        "baseline": baseline,
        "with_swaps": with_swaps,
        "p99_ratio": swap_p99 / baseline_p99 if baseline_p99 else 0.0,
        "p99_ratio_vs_idle": (
            swap_p99 / idle["p99_ms"] if idle["p99_ms"] else 0.0
        ),
        "swaps_applied": registry.counter("swap.applied").value,
        "versions_published": trainer.model_version,
        "versions_served_baseline": baseline_versions,
        "versions_served_during_swaps": sorted(
            {v for v in served_versions}
        ),
        "unversioned_responses": sum(1 for v in served_versions if v is None),
        "failed_requests": failures,
        "swap_apply_s": swap_summary,
        "staleness_seconds": staleness,
        "online_steps": trainer.steps,
        "events_ingested": trainer.events_ingested,
        "batch_metrics_path": metrics_path,
    }
