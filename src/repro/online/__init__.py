"""Online learning: event log, streaming trainer, versioned hot-swap.

The train→serve loop (docs/online.md):

1. interactions append to a JSONL event log (:mod:`repro.online.events`);
2. :class:`OnlineTrainer` replays the log in micro-batches through the
   offline BPR steps and publishes versioned snapshots
   (:mod:`repro.online.trainer`, :mod:`repro.online.snapshots`);
3. :class:`ModelSwapper` watches the snapshot directory and hot-swaps a
   :class:`~repro.serving.RecommendationService` onto each new version
   without dropping a request (:mod:`repro.online.swap`).

:func:`run_online_swap_bench` measures the zero-downtime claim.
"""

from repro.online.events import (
    EVENT_KINDS,
    EventLogReader,
    InteractionEvent,
    append_events,
    generate_events,
    read_events,
    write_event_log,
)
from repro.online.snapshots import (
    LATEST_NAME,
    SnapshotInfo,
    SnapshotPublisher,
    read_latest,
)
from repro.online.swap import ModelSwapper
from repro.online.trainer import OnlineTrainer, OnlineTrainerConfig

__all__ = [
    "EVENT_KINDS",
    "EventLogReader",
    "InteractionEvent",
    "LATEST_NAME",
    "ModelSwapper",
    "OnlineTrainer",
    "OnlineTrainerConfig",
    "SnapshotInfo",
    "SnapshotPublisher",
    "append_events",
    "generate_events",
    "read_events",
    "read_latest",
    "write_event_log",
]


def run_online_swap_bench(*args, **kwargs):
    """Lazy forward to :func:`repro.online.bench.run_online_swap_bench`
    (keeps the serving stack out of import-time for log/trainer users)."""
    from repro.online.bench import run_online_swap_bench as bench

    return bench(*args, **kwargs)
