"""Hot-swap serving: watch for published versions, swap without downtime.

:class:`ModelSwapper` closes the serve side of the loop: a background
thread polls the snapshot directory's ``LATEST`` pointer and, when a
newer version appears, loads the checkpoint **off the serving path**
and applies it through
:meth:`repro.serving.RecommendationService.apply_model` — which routes
to the engine's atomic bundle swap (immutable
``(model, score cache, ANN index, version)`` state captured once per
batch; in-flight requests finish on the old bundle) and/or the cluster
router's rolling per-worker re-attach.  No request is ever dropped,
failed, or served a half-swapped model.

Everything expensive — checkpoint load, IVF index rebuild, fresh
version-keyed score cache — happens on the swapper thread; the serving
threads only ever observe one reference assignment.

Failure modes handled:

- **Pruned checkpoint**: keep-last-N may delete the file between the
  pointer read and the load; the swapper counts a miss and re-polls (a
  newer pointer necessarily exists).
- **Torn pointer**: ``LATEST.json`` is replaced atomically, so a read
  sees the old or the new pointer, never a mix.
- **Load failure**: logged as a metric, old version keeps serving.

Metrics (ISSUE 8 instrumentation): ``swap.apply`` latency histogram,
``swap.model_version`` gauge, ``swap.staleness_seconds`` gauge (age of
the serving version's publish stamp — how far serving lags training),
and spans around the load/apply phases.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Union

from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.spans import span
from repro.online.snapshots import SnapshotInfo, read_latest
from repro.persistence import load_checkpoint

PathLike = Union[str, "object"]


class ModelSwapper:
    """Poll a snapshot directory; hot-swap a service onto new versions.

    ``service`` is any object with ``apply_model(model, version)`` —
    normally a :class:`~repro.serving.RecommendationService` (covering
    direct, engine and cluster modes).  Deterministic callers (tests,
    benchmarks) can skip the thread and call :meth:`check_once`.
    """

    def __init__(
        self,
        service,
        directory,
        poll_interval: float = 0.2,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.service = service
        self.directory = directory
        self.poll_interval = float(poll_interval)
        self.registry = registry or MetricsRegistry()
        self.current: Optional[SnapshotInfo] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._swap_latency = self.registry.histogram("swap.apply")

    # -- one poll --------------------------------------------------------

    def check_once(self) -> Optional[SnapshotInfo]:
        """Poll once; swap if a newer version is published.

        Returns the newly applied :class:`SnapshotInfo`, or ``None``
        when already current (or nothing is published yet).  Updates
        the staleness gauge either way.
        """
        info = read_latest(self.directory)
        current = self._current_version()
        if info is not None and (current is None or info.version > current):
            applied = self._apply(info)
            self._update_staleness()
            return applied
        self._update_staleness()
        return None

    def _current_version(self) -> Optional[int]:
        """Version currently serving: the last one this swapper applied,
        else whatever the service was constructed with."""
        if self.current is not None:
            return self.current.version
        return getattr(self.service, "model_version", None)

    def _apply(self, info: SnapshotInfo) -> Optional[SnapshotInfo]:
        started = time.perf_counter()
        with span("swap", version=info.version):
            try:
                with span("swap.load", version=info.version):
                    model, __ = load_checkpoint(info.path)
            except FileNotFoundError:
                # keep-last-N pruned it under us; a newer pointer exists.
                self.registry.counter("swap.pruned_misses").inc()
                return None
            except BaseException:
                self.registry.counter("swap.load_failures").inc()
                raise
            with span("swap.apply", version=info.version):
                self.service.apply_model(model, info.version)
        self.current = info
        self._swap_latency.observe(time.perf_counter() - started)
        self.registry.counter("swap.applied").inc()
        self.registry.gauge("swap.model_version").set(float(info.version))
        return info

    def _update_staleness(self) -> None:
        if self.current is not None:
            self.registry.gauge("swap.staleness_seconds").set(
                max(0.0, time.time() - self.current.published_at)
            )

    @property
    def staleness_seconds(self) -> Optional[float]:
        """Age of the serving version's publish stamp (None before any
        swap)."""
        if self.current is None:
            return None
        return max(0.0, time.time() - self.current.published_at)

    # -- background watcher ----------------------------------------------

    def start(self) -> "ModelSwapper":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._watch, name="repro-model-swapper", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout)
        self._thread = None

    def _watch(self) -> None:
        while not self._stop.is_set():
            try:
                self.check_once()
            except BaseException:
                # Serving must outlive a bad snapshot; the failure is
                # already counted in swap.load_failures.
                pass
            self._stop.wait(self.poll_interval)

    def __enter__(self) -> "ModelSwapper":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
