"""Streaming trainer: micro-batch BPR updates off an event log.

:class:`OnlineTrainer` closes the train side of the train→serve loop:
it consumes interaction events from an
:class:`~repro.online.events.EventLogReader`, buffers them per task,
and applies the *exact same* BPR steps offline training runs
(:meth:`GroupSATrainer._user_step` / ``_group_step``, under the
row-sparse gradient context) once a micro-batch fills.  Because the
steps, the negative sampler and the sampler's RNG are the offline
trainer's own, a replayed event log produces weights **bit-exact**
with an offline sparse-Adam run over the same batch sequence — there
is no separate "online math" to diverge.

Checkpointing contract (the reason resume is bit-exact): a snapshot
records the reader byte offset together with the *pending micro-batch
buffers* at publish time.  Every event at an offset below the recorded
one is therefore either already applied (in the weights + optimizer
moments) or sitting in the saved buffers; a resumed trainer seeks the
reader to the offset, restores buffers and RNG state, and the replay
continues as if the kill never happened.

Versions are assigned by the
:class:`~repro.online.snapshots.SnapshotPublisher` (monotone checkpoint
indices with a manifest-written-last ``LATEST`` pointer); the serving
side picks them up through :class:`~repro.online.swap.ModelSwapper`.

Note on negatives: the sampler rejects against the *static base
dataset's* interaction sets — streamed events do not grow the
rejection sets.  That keeps sampling deterministic given RNG state
(the bit-exact-resume contract) at the cost of occasionally sampling a
"negative" the stream has since observed, the standard implicit-
feedback approximation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.context import sparse_grads as sparse_grads_context
from repro.core.groupsa import GroupSA
from repro.data.dataset import GroupRecommendationDataset
from repro.data.loaders import GroupBatcher
from repro.data.splits import DataSplit
from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.run_metrics import JsonlWriter
from repro.obs.spans import span
from repro.online.events import EventLogReader, InteractionEvent
from repro.online.snapshots import SnapshotInfo, SnapshotPublisher
from repro.training.trainer import GroupSATrainer, TrainingConfig

_SCHEDULE_KEY = "online"

#: Schema tag on every per-replay-batch JSONL metrics record.
BATCH_SCHEMA = "repro.obs/online-batch/v1"


@dataclass
class OnlineTrainerConfig:
    """Streaming knobs (optimization knobs live in ``TrainingConfig``).

    Attributes
    ----------
    batch_size:
        Events per micro-batch; a task's buffer steps when it fills.
    publish_every_steps:
        Optimizer steps between snapshot publishes.
    keep_last:
        Snapshot retention (checkpoint keep-last-N).
    """

    batch_size: int = 32
    publish_every_steps: int = 8
    keep_last: int = 3


def _degenerate_split(dataset: GroupRecommendationDataset) -> DataSplit:
    """A DataSplit whose train view is the whole base dataset."""
    empty = np.empty((0, 2), dtype=np.int64)
    hollow = dataset.with_interactions(empty, empty, name=f"{dataset.name}-empty")
    return DataSplit(train=dataset, validation=hollow, test=hollow)


class OnlineTrainer:
    """Consume an event stream, step the model, publish versions."""

    def __init__(
        self,
        model: GroupSA,
        dataset: GroupRecommendationDataset,
        publisher: SnapshotPublisher,
        config: Optional[OnlineTrainerConfig] = None,
        training: Optional[TrainingConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        metrics_path: Optional[str] = None,
    ) -> None:
        self.config = config or OnlineTrainerConfig()
        if self.config.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.config.batch_size}"
            )
        if self.config.publish_every_steps < 1:
            raise ValueError(
                "publish_every_steps must be >= 1, "
                f"got {self.config.publish_every_steps}"
            )
        self.model = model
        self.dataset = dataset
        self.publisher = publisher
        self.registry = registry or MetricsRegistry()
        training = training or TrainingConfig(
            batch_size=self.config.batch_size, grad_clip=0.0
        )
        # The embedded offline trainer supplies the step functions, the
        # negative samplers, the optimizer and the resumable state_dict
        # -- streaming reuses offline math wholesale.
        self.trainer = GroupSATrainer(
            model, _degenerate_split(dataset), GroupBatcher(dataset), training
        )
        self._pending: Dict[str, List[Tuple[int, int]]] = {"user": [], "group": []}
        self._offset = 0
        self._steps = {"user": 0, "group": 0}
        self._events = 0
        self.model_version = 0
        self._step_latency = self.registry.histogram("online.step")
        self._publish_latency = self.registry.histogram("online.publish")
        #: Per-replay-batch JSONL sink (``repro.obs/online-batch/v1``);
        #: ``None`` disables the stream.
        self._batch_writer = None if metrics_path is None else JsonlWriter(metrics_path)
        self._replay_lag_bytes = 0

    # -- introspection ---------------------------------------------------

    @property
    def offset(self) -> int:
        """Reader byte offset covered by applied + pending events."""
        return self._offset

    @property
    def steps(self) -> int:
        return self._steps["user"] + self._steps["group"]

    @property
    def events_ingested(self) -> int:
        return self._events

    @property
    def pending_counts(self) -> Dict[str, int]:
        return {kind: len(buffer) for kind, buffer in self._pending.items()}

    # -- ingestion -------------------------------------------------------

    def ingest(self, event: InteractionEvent) -> bool:
        """Buffer one event; step its task if the micro-batch filled.

        Returns ``True`` when an optimizer step ran.
        """
        event.validate()
        limit = (
            self.dataset.num_users
            if event.kind == "user"
            else self.dataset.num_groups
        )
        if not 0 <= event.entity < limit:
            raise IndexError(
                f"{event.kind} {event.entity} out of range [0, {limit})"
            )
        if not 0 <= event.item < self.dataset.num_items:
            raise IndexError(
                f"item {event.item} out of range [0, {self.dataset.num_items})"
            )
        buffer = self._pending[event.kind]
        buffer.append((int(event.entity), int(event.item)))
        self._events += 1
        self.registry.counter(f"online.events.{event.kind}").inc()
        if len(buffer) >= self.config.batch_size:
            self._step(event.kind)
            return True
        return False

    def step_partial(self) -> int:
        """Force-step whatever is buffered (end-of-stream flush).

        Returns the number of optimizer steps taken.
        """
        taken = 0
        for kind in ("user", "group"):
            if self._pending[kind]:
                self._step(kind)
                taken += 1
        return taken

    def _step(self, kind: str) -> None:
        buffer = self._pending[kind]
        edges = np.asarray(buffer, dtype=np.int64)
        buffer.clear()
        entities = np.repeat(
            edges[:, 0], self.trainer.config.negatives_per_positive
        )
        positives = np.repeat(
            edges[:, 1], self.trainer.config.negatives_per_positive
        )
        sampler = (
            self.trainer.user_sampler if kind == "user" else self.trainer.group_sampler
        )
        negatives = sampler.sample_many(
            edges[:, 0], self.trainer.config.negatives_per_positive
        ).reshape(-1)
        step = self.trainer._user_step if kind == "user" else self.trainer._group_step
        started = time.perf_counter()
        with span("online.step", kind=kind, rows=int(entities.size)):
            with sparse_grads_context(self.trainer.config.sparse_grads):
                loss, accuracy = step(entities, positives, negatives)
        duration = time.perf_counter() - started
        self._step_latency.observe(duration)
        self._steps[kind] += 1
        self.registry.counter(f"online.steps.{kind}").inc()
        self.registry.gauge(f"online.loss.{kind}").set(float(loss))
        self.registry.gauge(f"online.accuracy.{kind}").set(float(accuracy))
        if self._batch_writer is not None:
            self._batch_writer.write(
                {
                    "schema": BATCH_SCHEMA,
                    "kind": kind,
                    "step": self.steps,
                    "offset": int(self._offset),
                    "loss": float(loss),
                    "accuracy": float(accuracy),
                    "events": int(edges.shape[0]),
                    "events_per_s": (
                        edges.shape[0] / duration if duration > 0 else None
                    ),
                    "duration_s": duration,
                    "replay_lag_bytes": int(self._replay_lag_bytes),
                    "ts": time.time(),
                }
            )

    # -- publishing ------------------------------------------------------

    def publish(self, metric: Optional[float] = None) -> SnapshotInfo:
        """Snapshot the current weights + streaming position as a version.

        Flushes lazily deferred sparse-optimizer rows first so the
        checkpoint holds dense-current weights, then records the reader
        offset and the pending buffers in the schedule payload.
        """
        started = time.perf_counter()
        with span("online.publish", offset=self._offset, steps=self.steps):
            self.trainer.optimizer.sync()
            schedule = {
                _SCHEDULE_KEY: {
                    "offset": int(self._offset),
                    "pending": {
                        kind: [[int(e), int(i)] for e, i in buffer]
                        for kind, buffer in self._pending.items()
                    },
                    "steps": dict(self._steps),
                    "events": int(self._events),
                }
            }
            info = self.publisher.publish(
                self.model,
                trainer_state=self.trainer.state_dict(),
                schedule=schedule,
                metric=metric,
            )
        self.model_version = info.version
        self._publish_latency.observe(time.perf_counter() - started)
        self.registry.counter("online.publishes").inc()
        self.registry.gauge("online.model_version").set(float(info.version))
        return info

    # -- the consume loop ------------------------------------------------

    def consume(
        self,
        reader: EventLogReader,
        max_events: Optional[int] = None,
        publish_final: bool = True,
    ) -> Dict[str, Any]:
        """Drain ``reader``, stepping and publishing as configured.

        Events are read one at a time and the trainer's offset is
        advanced to the reader's *before* ingestion — so at any publish
        point every event below the recorded offset is either applied
        or in the saved pending buffers, never lost and never double-
        applied on resume.  Stops at end-of-log (or ``max_events``);
        ``publish_final`` emits one last version covering the tail.
        """
        consumed = 0
        steps_at_publish = self.steps
        while max_events is None or consumed < max_events:
            batch = reader.read_batch(1)
            if not batch:
                break
            # Offset first: it now covers the event we are about to
            # ingest, and ingest() only ever moves the event into a
            # buffer or the weights -- both captured by publish().
            self._offset = reader.offset
            self._replay_lag_bytes = reader.lag_bytes()
            self.registry.gauge("online.replay_lag_bytes").set(
                float(self._replay_lag_bytes)
            )
            self.ingest(batch[0])
            consumed += 1
            if self.steps - steps_at_publish >= self.config.publish_every_steps:
                self.publish()
                steps_at_publish = self.steps
        if publish_final and (consumed > 0 or self.publisher.latest is None):
            self.publish()
        return {
            "events": consumed,
            "steps": self.steps,
            "pending": self.pending_counts,
            "offset": self._offset,
            "model_version": self.model_version,
        }

    def close(self) -> None:
        """Flush and close the per-batch metrics stream, if any."""
        if self._batch_writer is not None:
            self._batch_writer.close()

    # -- resume ----------------------------------------------------------

    def restore_latest(self) -> Optional[int]:
        """Restore weights, optimizer/RNG state, buffers and offset from
        the newest published snapshot.  Returns the reader offset to
        seek to, or ``None`` when nothing has been published yet."""
        try:
            __, state, info = self.publisher.load(model=self.model)
        except FileNotFoundError:
            return None
        if state is None or state.trainer is None:
            raise ValueError(
                f"snapshot {info.path} has no trainer state; it was not "
                "written by OnlineTrainer.publish"
            )
        self.trainer.load_state_dict(state.trainer)
        payload = (state.schedule or {}).get(_SCHEDULE_KEY)
        if payload is None:
            raise ValueError(
                f"snapshot {info.path} has no '{_SCHEDULE_KEY}' schedule "
                "payload; it was not written by OnlineTrainer.publish"
            )
        self._offset = int(payload["offset"])
        self._pending = {
            kind: [(int(e), int(i)) for e, i in pairs]
            for kind, pairs in payload["pending"].items()
        }
        self._steps = {k: int(v) for k, v in payload["steps"].items()}
        self._events = int(payload["events"])
        self.model_version = info.version
        self.registry.gauge("online.model_version").set(float(info.version))
        return self._offset
