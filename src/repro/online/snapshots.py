"""Versioned snapshot publishing with a manifest-written-last pointer.

The streaming trainer publishes model versions as numbered v2
checkpoints through the same atomic machinery offline training uses
(:class:`repro.training.checkpointing.CheckpointManager`: tmp + fsync +
``os.replace`` per archive, keep-last-N pruning).  On top of that sits
a single ``LATEST.json`` pointer, written *after* the checkpoint it
names — the manifest-written-last rule the shared weight store also
follows — so a consumer that can read the pointer can always load the
version it names (unless keep-last-N pruned it, which consumers treat
as "re-poll").

Crash window: dying between the checkpoint write and the pointer
replace leaves an orphan checkpoint newer than ``LATEST``.  The
publisher prunes such orphans at construction, so the version sequence
a resumed trainer emits is identical to the sequence an uninterrupted
run would have emitted — version numbering stays reproducible, which
the bit-exact resume test relies on.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.groupsa import GroupSA
from repro.persistence import TrainingState, load_checkpoint
from repro.training.checkpointing import CheckpointManager

PathLike = Union[str, Path]

LATEST_NAME = "LATEST.json"


@dataclass(frozen=True)
class SnapshotInfo:
    """What the ``LATEST`` pointer names."""

    version: int
    path: Path
    published_at: float  # unix seconds


def read_latest(directory: PathLike) -> Optional[SnapshotInfo]:
    """The current ``LATEST`` pointer, or ``None`` before first publish.

    The named checkpoint may have been pruned between the pointer read
    and a subsequent load — consumers must tolerate a missing file by
    re-polling (a newer pointer always exists in that case).
    """
    pointer = Path(directory) / LATEST_NAME
    try:
        payload = json.loads(pointer.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    return SnapshotInfo(
        version=int(payload["version"]),
        path=Path(directory) / str(payload["filename"]),
        published_at=float(payload["published_at"]),
    )


class SnapshotPublisher:
    """Publish monotonically versioned model snapshots to a directory.

    ``version`` equals the checkpoint index the manager assigns, so the
    sequence is strictly increasing and survives restarts (the manager
    continues numbering from the directory contents).
    """

    def __init__(self, directory: PathLike, keep_last: int = 3) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._prune_orphans()
        self.manager = CheckpointManager(self.directory, keep_last=keep_last)

    def _prune_orphans(self) -> None:
        """Drop checkpoints newer than ``LATEST`` (crash mid-publish)."""
        latest = read_latest(self.directory)
        floor = latest.version if latest is not None else 0
        for path in self.directory.glob("ckpt-*.npz"):
            stem = path.stem.split("-")[-1]
            if stem.isdigit() and int(stem) > floor:
                path.unlink(missing_ok=True)

    @property
    def latest(self) -> Optional[SnapshotInfo]:
        return read_latest(self.directory)

    @property
    def next_version(self) -> int:
        return self.manager.next_index

    def publish(
        self,
        model: GroupSA,
        trainer_state: Optional[Dict[str, Any]] = None,
        schedule: Optional[Dict[str, Any]] = None,
        metric: Optional[float] = None,
    ) -> SnapshotInfo:
        """Write the next versioned checkpoint, then move ``LATEST``.

        Ordering is the whole point: the checkpoint is fully on disk
        (atomically, via the v2 writer) *before* the pointer names it.
        """
        path = self.manager.save(
            model, trainer_state=trainer_state, schedule=schedule, metric=metric
        )
        version = int(path.stem.split("-")[-1])
        published_at = time.time()
        payload = {
            "version": version,
            "filename": path.name,
            "published_at": published_at,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".latest.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.directory / LATEST_NAME)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return SnapshotInfo(version=version, path=path, published_at=published_at)

    def load(
        self, info: Optional[SnapshotInfo] = None, model: Optional[GroupSA] = None
    ) -> Tuple[GroupSA, Optional[TrainingState], SnapshotInfo]:
        """Load ``info`` (default: current ``LATEST``).

        Raises ``FileNotFoundError`` when nothing has been published, or
        when the named checkpoint was pruned (callers re-poll).
        """
        if info is None:
            info = read_latest(self.directory)
        if info is None:
            raise FileNotFoundError(f"no LATEST pointer in {self.directory}")
        loaded, state = load_checkpoint(info.path, model=model)
        return loaded, state, info
