"""Engine-backed serving: caches, micro-batching, telemetry.

Trains GroupSA briefly, then serves the same traffic twice — direct
mode and engine mode — and prints the measured speedup plus the
engine's telemetry snapshot.  The recommendation lists are identical;
only the execution path changes.

    python examples/engine_serving.py
"""

from __future__ import annotations

import json

import numpy as np

from repro.core import GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.engine import EngineConfig, InferenceEngine, benchmark_user_serving
from repro.serving import RecommendationService
from repro.training import TrainingConfig, train_groupsa


def main() -> None:
    world = yelp_like(scale=0.01)
    split = split_interactions(world.dataset, rng=0)
    model, __, __h = train_groupsa(
        split, GroupSAConfig(), TrainingConfig(user_epochs=10, group_epochs=15)
    )
    train = split.train

    direct = RecommendationService(model=model, dataset=train)
    backed = RecommendationService(model=model, dataset=train)
    engine = backed.enable_engine(EngineConfig(max_batch_size=64))

    # Same request, same answer — only the execution path differs.
    sample = direct.recommend_for_user(3, k=5)
    assert sample.items == backed.recommend_for_user(3, k=5).items
    print(f"user 3 top-5: {sample.items}")

    group_rec = backed.recommend_for_group(0, k=5)
    print(f"group 0 top-5: {group_rec.items}")
    adhoc_rec = backed.recommend_for_members([3, 1, 3, 7], k=5)
    print(f"adhoc {{1,3,7}} top-5: {adhoc_rec.items}")
    print(f"  voting weights: {adhoc_rec.voting_weights}")

    # Closed-loop benchmark: 200 user requests, 8 concurrent clients.
    users = np.random.default_rng(0).integers(0, train.num_users, size=200)
    report = benchmark_user_serving(direct, engine, users, k=10, clients=8)
    for mode in ("direct", "engine"):
        side = report[mode]
        print(
            f"{mode:8s} {side['rps']:9.1f} req/s   "
            f"p50 {side['p50_ms']:7.3f} ms   p99 {side['p99_ms']:7.3f} ms"
        )
    print(f"speedup  {report['speedup_rps']:.1f}x")

    snapshot = backed.telemetry_snapshot()
    print("telemetry:")
    print(json.dumps(
        {
            "rates": snapshot["rates"],
            "batches": snapshot["batches"],
            "counters": snapshot["counters"],
        },
        indent=2,
        sort_keys=True,
    ))
    backed.close()


if __name__ == "__main__":
    main()
