"""Model selection the paper's way: validation grid search + early stop.

Section III-E tunes every hyper-parameter on a 10% validation carve-out
of the training data.  This example runs a small grid over the
self-attention depth and the Top-H width, picks the winner on
validation HR@10, then fine-tunes it with early stopping and reports
the final test metrics.

    python examples/tuning_and_early_stopping.py
"""

from __future__ import annotations

from repro.core import GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.evaluation import evaluate, prepare_task
from repro.training import TrainingConfig
from repro.training.early_stopping import fit_with_early_stopping
from repro.training.two_stage import build_model
from repro.tuning import grid_search


def main() -> None:
    world = yelp_like(scale=0.01)
    split = split_interactions(world.dataset, rng=0)
    base = GroupSAConfig()
    search_training = TrainingConfig(user_epochs=8, group_epochs=12)

    # 1. Grid search on the validation split (never touches the test set).
    result = grid_search(
        split,
        grid={"num_attention_layers": [1, 2], "top_h": [3, 5]},
        base=base,
        training=search_training,
        num_candidates=50,
    )
    print(result.format())
    best = result.best_config(base)
    print(
        f"\nselected: N_X={best.num_attention_layers}, top_h={best.top_h}"
    )

    # 2. Retrain the winner with validation-monitored early stopping.
    model, batcher = build_model(split, best)
    training = TrainingConfig(user_epochs=15, group_epochs=10)
    history, monitor = fit_with_early_stopping(
        model,
        split,
        batcher,
        training,
        patience=2,
        check_every=5,
        max_group_epochs=60,
        num_candidates=50,
    )
    print(
        f"\nearly stopping: {len(monitor.history)} validation checks, "
        f"best validation HR@10 = {monitor.best_value:.4f}"
    )

    # 3. Final held-out test evaluation.
    full = split.full
    task = prepare_task(
        split.test.group_item, full.group_items(), full.num_items, rng=1
    )
    metrics = evaluate(
        lambda groups, items: model.score_group_items(batcher.batch(groups), items),
        task,
    ).metrics
    print("test metrics:", {k: round(v, 4) for k, v in metrics.items()})


if __name__ == "__main__":
    main()
