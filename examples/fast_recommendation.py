"""Fast group recommendation (Section II-F): accuracy/latency trade-off.

For large groups, running the stacked voting network per candidate item
is expensive.  The fast path scores each member with the user-item
predictor and aggregates — no voting forward pass.  This example
measures both the wall-clock and the ranking quality of the two paths.

    python examples/fast_recommendation.py
"""

from __future__ import annotations

import time

from repro.core import FastGroupRecommender, GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.evaluation import evaluate, prepare_task
from repro.training import TrainingConfig, train_groupsa


def main() -> None:
    world = yelp_like(scale=0.01)
    split = split_interactions(world.dataset, rng=0)
    model, batcher, __ = train_groupsa(
        split,
        GroupSAConfig(num_attention_layers=3),  # deliberately deep voting
        TrainingConfig(user_epochs=15, group_epochs=30),
    )

    full = split.full
    task = prepare_task(
        split.test.group_item, full.group_items(), full.num_items, rng=1
    )

    def time_scorer(name, scorer):
        start = time.perf_counter()
        result = evaluate(scorer, task)
        elapsed = time.perf_counter() - start
        print(
            f"{name:28s} HR@10={result.metrics['HR@10']:.4f} "
            f"NDCG@10={result.metrics['NDCG@10']:.4f}  ({elapsed:.2f}s)"
        )
        return result

    print(f"scoring {len(task.edges)} test interactions x 101 candidates\n")
    time_scorer(
        "full voting network",
        lambda groups, items: model.score_group_items(batcher.batch(groups), items),
    )
    for strategy in ("avg", "lm", "ms"):
        fast = FastGroupRecommender(model, strategy)
        time_scorer(
            f"fast path (Group+{strategy})",
            lambda groups, items, fast=fast: fast.score_group_items(
                batcher.batch(groups), items
            ),
        )


if __name__ == "__main__":
    main()
