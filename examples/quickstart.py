"""Quickstart: train GroupSA on a Yelp-like world and recommend.

Runs in under a minute on a laptop CPU::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.evaluation import evaluate, prepare_task, top_k_items
from repro.training import TrainingConfig, print_progress, train_groupsa


def main() -> None:
    # 1. Generate a Yelp-shaped world (the real dump is not
    #    redistributable; the generator plants a latent voting process).
    world = yelp_like(scale=0.01)
    dataset = world.dataset
    print(
        f"world: {dataset.num_users} users, {dataset.num_items} items, "
        f"{dataset.num_groups} groups"
    )

    # 2. Split 80/20 with a 10% validation carve-out, per the paper.
    split = split_interactions(dataset, rng=0)

    # 3. Train with the two-stage schedule: user-item pre-training, then
    #    group-item fine-tuning with shared embeddings.
    config = GroupSAConfig()  # paper defaults: d=32, N_X=1, w^u=0.9
    training = TrainingConfig(user_epochs=15, group_epochs=30)
    model, batcher, history = train_groupsa(
        split, config, training, callback=print_progress
    )

    # 4. Evaluate with the 100-candidate protocol.
    full = split.full
    group_task = prepare_task(
        split.test.group_item, full.group_items(), full.num_items, rng=1
    )
    result = evaluate(
        lambda groups, items: model.score_group_items(batcher.batch(groups), items),
        group_task,
    )
    print("\ngroup recommendation quality:")
    for metric, value in result.metrics.items():
        print(f"  {metric:10s} {value:.4f}")

    # 5. Produce an actual Top-5 recommendation list for one group.
    group = 0
    members = dataset.group_members[group]
    top5 = top_k_items(
        lambda groups, items: model.score_group_items(batcher.batch(groups), items),
        entity=group,
        num_items=dataset.num_items,
        k=5,
        exclude=full.group_items()[group],
    )
    print(f"\ntop-5 items for group #{group} (members {members.tolist()}): {top5.tolist()}")

    # 6. Peek at the latent voting: who carries the decision?
    gamma = model.member_attention(batcher.batch([group]), np.array([int(top5[0])]))[0]
    weights = gamma[: members.size]
    print("member voting weights for the top recommendation:")
    for member, weight in zip(members, weights):
        print(f"  user #{member}: {weight:.3f}")


if __name__ == "__main__":
    main()
