"""Traced serving: span trees, sampling, and the metrics registry.

Trains GroupSA briefly, installs a Tracer around engine-backed
serving, prints the span tree of one request, then serves mixed
traffic with head sampling plus always-keep rules for slow requests,
and finally writes the three observability artifacts: a Chrome trace,
a JSONL span log, and a Prometheus metrics exposition.

    python examples/traced_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.engine import EngineConfig
from repro.obs import Tracer, make_serving_report, write_span_chrome_trace
from repro.serving import RecommendationService
from repro.training import TrainingConfig, train_groupsa


def print_tree(spans) -> None:
    children = {}
    for item in spans:
        children.setdefault(item.parent_id, []).append(item)

    def walk(parent_id, depth):
        for item in sorted(children.get(parent_id, []), key=lambda s: s.start):
            attrs = " ".join(f"{k}={v}" for k, v in sorted(item.attrs.items()))
            print(f"  {'  ' * depth}{item.name:28s} {item.duration * 1e3:7.3f} ms  {attrs}")
            walk(item.span_id, depth + 1)

    walk(None, 0)


def main() -> None:
    world = yelp_like(scale=0.01)
    split = split_interactions(world.dataset, rng=0)
    model, __, __h = train_groupsa(
        split, GroupSAConfig(), TrainingConfig(user_epochs=10, group_epochs=15)
    )
    train = split.train

    service = RecommendationService(model=model, dataset=train)
    engine = service.enable_engine(EngineConfig(max_batch_size=64))

    # 1. Trace one request end to end (sample_rate=1.0 keeps everything).
    with Tracer(sample_rate=1.0, seed=0) as tracer:
        result = service.recommend_for_group(0, k=5)
    print(f"group 0 top-5: {result.items}  (trace {result.trace_id})")
    print_tree(tracer.traces()[result.trace_id])

    # 2. Serve mixed traffic under production-style sampling: keep 10%
    #    at random, plus every request slower than 5 ms or errored.
    rng = np.random.default_rng(0)
    with Tracer(
        sample_rate=0.1, slow_ms=5.0, seed=0, jsonl_path="serve_spans.jsonl"
    ) as tracer:
        for user in rng.integers(0, train.num_users, size=200):
            service.recommend_for_user(int(user), k=10)
        for group in rng.integers(0, train.num_groups, size=50):
            service.recommend_for_group(int(group), k=10)
    summary = tracer.summary()
    print(
        f"\ntraces: {summary['traces_started']} started, "
        f"{summary['traces_kept']} kept "
        f"({summary['kept_head']} head, {summary['kept_slow']} slow, "
        f"{summary['kept_error']} error)"
    )

    # 3. Export the artifacts.
    events = write_span_chrome_trace(tracer, "serve_trace.json")
    print(f"chrome trace: serve_trace.json ({events} events)")
    print("span log:     serve_spans.jsonl")
    with open("serve_metrics.prom", "w", encoding="utf-8") as handle:
        handle.write(engine.telemetry.exposition())
    print("exposition:   serve_metrics.prom")

    report = make_serving_report(telemetry=engine.telemetry, tracer=tracer)
    stages = report["data"]["telemetry"]["stages"]
    p99 = stages["engine.request"]["p99_ms"]
    print(f"engine.request p99: {p99:.3f} ms  (full history, no reservoir)")
    service.close()


if __name__ == "__main__":
    main()
