"""Sharded multi-process serving: shard plan, shared weights, router.

Trains GroupSA briefly, launches a 2-worker shard cluster (one
mmap-backed weight store, scatter-gather Top-K), shows that the
router returns the same recommendation lists as single-process
serving, survives a worker being killed, and reports fleet-merged
metrics.  Finishes with a small worker-count scaling sweep.

    python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterConfig, ShardRouter, benchmark_sharded_scaling
from repro.core import GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.serving import RecommendationService
from repro.training import TrainingConfig, train_groupsa


def main() -> None:
    world = yelp_like(scale=0.01)
    split = split_interactions(world.dataset, rng=0)
    model, __, __h = train_groupsa(
        split, GroupSAConfig(), TrainingConfig(user_epochs=10, group_epochs=15)
    )
    train = split.train

    direct = RecommendationService(model=model, dataset=train)
    clustered = RecommendationService(model=model, dataset=train)
    router = clustered.enable_cluster(ClusterConfig(num_workers=2, num_shards=4))
    print(
        f"cluster up: {router.num_workers} workers, "
        f"{router.plan.num_shards} shards over {train.num_items} items"
    )

    # Same requests, same lists — only the execution path differs.
    for user in (3, 11):
        rec = clustered.recommend_for_user(user, k=5)
        assert rec.items == direct.recommend_for_user(user, k=5).items
        print(f"user {user} top-5: {rec.items}")
    group_rec = clustered.recommend_for_group(0, k=5)
    assert group_rec.items == direct.recommend_for_group(0, k=5).items
    print(f"group 0 top-5: {group_rec.items}")
    print(f"  voting weights: {group_rec.voting_weights}")
    adhoc_rec = clustered.recommend_for_members([3, 1, 3, 7], k=5)
    print(f"adhoc {{1,3,7}} top-5: {adhoc_rec.items}")

    # Kill a worker mid-flight: the next request restarts it and still
    # answers correctly (restart budget is per request).
    victim = router._handles[0].process
    victim.kill()
    victim.join()
    rec = clustered.recommend_for_user(3, k=5)
    assert rec.items == direct.recommend_for_user(3, k=5).items
    print(f"after worker kill: restarts={router.worker_restarts}, "
          f"alive={router.workers_alive()}")

    payload = router.metrics_payload()
    served = {
        name: count
        for name, count in payload["counters"].items()
        if name.startswith(("router.requests", "shard.requests"))
    }
    print(f"fleet-merged request counters: {served}")
    clustered.close()

    # Scaling sweep: rps/p99 per worker count, one shard per worker.
    users = np.random.default_rng(0).integers(0, train.num_users, size=60)
    scaling = benchmark_sharded_scaling(model, train, users, worker_counts=(1, 2))
    for point in scaling["points"]:
        print(
            f"workers={point['workers']} shards={point['shards']}: "
            f"{point['rps']:8.1f} req/s  p99 {point['p99_ms']:7.2f} ms  "
            f"x{point['speedup_vs_first']:.2f}"
        )


if __name__ == "__main__":
    main()
