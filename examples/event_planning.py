"""Occasional-group event planning (the paper's motivating scenario).

Conference attendees who met this week want to plan a trip together:
an *occasional* group with no interaction history of its own.  GroupSA
must rely on the members' individual histories, their social ties, and
the learned voting scheme.

This example builds a Douban-Event-like world, trains GroupSA, then
compares it against the static score-aggregation strategies on the
coldest groups (those with zero training interactions).

    python examples/event_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FastGroupRecommender, GroupSAConfig
from repro.data import douban_like, split_interactions
from repro.evaluation import EvaluationTask, evaluate, prepare_task
from repro.training import TrainingConfig, train_groupsa


def main() -> None:
    world = douban_like(scale=0.01)
    dataset = world.dataset
    split = split_interactions(dataset, rng=0)

    model, batcher, __ = train_groupsa(
        split,
        GroupSAConfig(num_attention_layers=2),  # paper: N_X=2 on Douban
        TrainingConfig(user_epochs=15, group_epochs=30),
    )

    full = split.full
    task = prepare_task(
        split.test.group_item, full.group_items(), full.num_items, rng=1
    )

    # Identify the truly cold groups: no training interactions at all.
    train_groups = set(split.train.group_item[:, 0].tolist())
    cold = np.array([g not in train_groups for g in task.edges[:, 0]])
    cold_task = EvaluationTask(edges=task.edges[cold], candidates=task.candidates[cold])
    print(
        f"{cold.sum()} of {len(task.edges)} test interactions belong to "
        "groups never seen during training (pure OGR)"
    )

    def groupsa_scores(groups, items):
        return model.score_group_items(batcher.batch(groups), items)

    scorers = {"GroupSA (voting)": groupsa_scores}
    for strategy in ("avg", "lm", "ms"):
        fast = FastGroupRecommender(model, strategy)
        scorers[f"Group+{strategy} (static)"] = (
            lambda groups, items, fast=fast: fast.score_group_items(
                batcher.batch(groups), items
            )
        )

    print(f"\n{'model':24s}{'HR@5':>8}{'HR@10':>8}{'NDCG@10':>9}")
    for name, scorer in scorers.items():
        metrics = evaluate(scorer, cold_task).metrics
        print(
            f"{name:24s}{metrics['HR@5']:8.4f}{metrics['HR@10']:8.4f}"
            f"{metrics['NDCG@10']:9.4f}"
        )

    # Show the voting breakdown for one cold group's true future event.
    if len(cold_task.edges):
        group, item = map(int, cold_task.edges[0])
        members = dataset.group_members[group]
        gamma = model.member_attention(batcher.batch([group]), np.array([item]))[0]
        print(f"\ncold group #{group} attending event #{item}:")
        for member, weight in zip(members, gamma[: members.size]):
            friends = len(dataset.friends()[member])
            print(
                f"  user #{member:4d} weight {weight:.3f} "
                f"({friends} friends, "
                f"{len(dataset.user_items()[member])} past events)"
            )


if __name__ == "__main__":
    main()
