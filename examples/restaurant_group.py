"""The "food critic" scenario: expertise-dependent member weights.

The paper's introduction argues a food critic should dominate a
restaurant choice but not a movie choice.  The synthetic world plants
exactly this structure (per-topic expertise), and this example shows
how GroupSA's item-conditioned attention shifts weights across target
items from different topics.

    python examples/restaurant_group.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.training import TrainingConfig, train_groupsa


def main() -> None:
    world = yelp_like(scale=0.01)
    dataset = world.dataset
    split = split_interactions(dataset, rng=0)
    model, batcher, __ = train_groupsa(
        split,
        GroupSAConfig(),
        TrainingConfig(user_epochs=15, group_epochs=30),
    )

    # Pick a mid-sized group and one item from each of two topics.
    sizes = dataset.group_sizes()
    group = int(np.argmin(np.abs(sizes - 4)))
    members = dataset.group_members[group]
    topics = world.item_topic
    topic_a, topic_b = 0, 1
    item_a = int(np.flatnonzero(topics == topic_a)[0])
    item_b = int(np.flatnonzero(topics == topic_b)[0])

    print(f"group #{group} with members {members.tolist()}")
    print("\nplanted expertise (hidden ground truth):")
    header = f"{'member':>8}" + f"{'topic ' + str(topic_a):>12}" + f"{'topic ' + str(topic_b):>12}"
    print(header)
    for member in members:
        print(
            f"{member:>8}"
            f"{world.user_expertise[member, topic_a]:>12.2f}"
            f"{world.user_expertise[member, topic_b]:>12.2f}"
        )

    batch = batcher.batch([group, group])
    gammas = model.member_attention(batch, np.array([item_a, item_b]))
    print("\nlearned voting weights (gamma of Eq. 10):")
    print(f"{'member':>8}{'item ' + str(item_a):>12}{'item ' + str(item_b):>12}")
    for position, member in enumerate(members):
        print(
            f"{member:>8}{gammas[0, position]:>12.3f}{gammas[1, position]:>12.3f}"
        )

    shift = np.abs(gammas[0, : members.size] - gammas[1, : members.size]).sum()
    print(
        f"\ntotal weight shift between the two target items: {shift:.3f} "
        "(> 0 means the group 'votes' differently per topic)"
    )

    # Peek inside the voting rounds: who listened to whom (the social
    # self-attention of the first round, Eq. 4).
    from repro.analysis import attention_heatmap_text, voting_rounds_trace

    traces = voting_rounds_trace(model, batcher.batch([group]))
    if traces:
        size = members.size
        labels = [f"u{member}" for member in members]
        print("\nround-1 social attention (rows listen to columns):")
        print(attention_heatmap_text(traces[0][0][:size, :size], labels))


if __name__ == "__main__":
    main()
