"""Serving a brand-new occasional group.

Trains GroupSA once, checkpoints it, reloads it, and serves a group
that does not exist in the dataset — three users who just met (the
paper's conference-trip scenario), assembled ad hoc at request time.

    python examples/adhoc_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import AdhocGroupRecommender, GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.persistence import load_model, save_model
from repro.training import TrainingConfig, train_groupsa


def main() -> None:
    world = yelp_like(scale=0.01)
    dataset = world.dataset
    split = split_interactions(dataset, rng=0)
    model, __, __h = train_groupsa(
        split, GroupSAConfig(), TrainingConfig(user_epochs=15, group_epochs=30)
    )

    # Checkpoint + reload: the serving process does not retrain.
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "groupsa.npz"
        save_model(model, checkpoint)
        served_model = load_model(checkpoint)
        print(f"checkpoint: {checkpoint.stat().st_size / 1024:.0f} KiB")

    recommender = AdhocGroupRecommender(served_model, split.train)

    # Assemble an ad-hoc group: a user plus two of their friends
    # (socially connected, per the occasional-group setting).
    friend_sets = split.train.friend_set()
    seed_user = next(u for u, fs in enumerate(friend_sets) if len(fs) >= 2)
    members = [seed_user, *sorted(friend_sets[seed_user])[:2]]
    print(f"ad-hoc group: users {members} (never seen together in training)")

    top = recommender.recommend(members, k=5)
    print(f"top-5 recommendations: {top.tolist()}")

    weights = recommender.voting_weights(members, int(top[0]))
    print("who carried the vote for the top item:")
    for member, weight in zip(sorted(set(members)), weights):
        history = len(split.train.user_items()[member])
        print(f"  user #{member} (history: {history} items): {weight:.3f}")

    # Sanity: the voting weights respond to the target item.
    other_weights = recommender.voting_weights(members, int(top[-1]))
    shift = float(np.abs(weights - other_weights).sum())
    print(f"weight shift between item #{top[0]} and item #{top[-1]}: {shift:.3f}")


if __name__ == "__main__":
    main()
