"""Walk through the paper's ablation variants on one dataset.

Trains GroupSA and its four ablations (Group-A/S/I/F) plus Group-G at a
small budget and prints a Figure-3-shaped comparison.

    python examples/ablation_walkthrough.py
"""

from __future__ import annotations

from repro.core import GroupSAConfig, VARIANTS
from repro.experiments.ablations import format_ablations, run_ablations
from repro.experiments.runner import ExperimentBudget
from repro.training import TrainingConfig


def main() -> None:
    print("paper variants:")
    for name, fn in VARIANTS.items():
        config = fn(GroupSAConfig())
        parts = []
        if not config.use_self_attention:
            parts.append("no self-attention")
        if not config.use_item_aggregation:
            parts.append("no item aggregation")
        if not config.use_social_aggregation:
            parts.append("no social aggregation")
        if not config.use_user_task:
            parts.append("no user-item task")
        print(f"  {name:10s} {', '.join(parts) or 'full model'}")

    budget = ExperimentBudget(
        scale=0.01,
        seeds=(0,),
        training=TrainingConfig(user_epochs=12, group_epochs=25),
    )
    rows = run_ablations(
        "yelp",
        budget,
        variants=("Group-A", "Group-S", "Group-I", "Group-F", "GroupSA"),
    )
    print()
    print(format_ablations(rows, "yelp"))


if __name__ == "__main__":
    main()
