"""Fill EXPERIMENTS.md's MEASURED_* placeholders from results/.

Run after ``scripts/run_all_experiments.py``:

    python scripts/fill_experiments_md.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
RESULTS = ROOT / "results"
TARGET = ROOT / "EXPERIMENTS.md"

BLOCKS = {
    "MEASURED_TABLE2": "table2.txt",
    "MEASURED_TABLE3": "table3.txt",
    "MEASURED_FIGURE3": "figure3.txt",
    "MEASURED_TABLE4": "table4.txt",
    "MEASURED_TABLE5": "table5.txt",
    "MEASURED_TABLE6": "table6.txt",
    "MEASURED_TABLE7": "table7.txt",
    "MEASURED_TABLE8": "table8.txt",
    "MEASURED_TABLE9": "table9.txt",
    "MEASURED_SIGNIFICANCE": "significance.txt",
}

TABLE1_CELLS = {
    "MEASURED_T1_YG": ("yelp", "Avg. group size"),
    "MEASURED_T1_YU": ("yelp", "Avg. # interactions per user"),
    "MEASURED_T1_YF": ("yelp", "Avg. # friends per user"),
    "MEASURED_T1_YI": ("yelp", "Avg. # interactions per group"),
    "MEASURED_T1_DG": ("douban", "Avg. group size"),
    "MEASURED_T1_DU": ("douban", "Avg. # interactions per user"),
    "MEASURED_T1_DF": ("douban", "Avg. # friends per user"),
    "MEASURED_T1_DI": ("douban", "Avg. # interactions per group"),
}


def parse_table1(path: Path) -> dict[tuple[str, str], float]:
    lines = path.read_text().splitlines()
    header = lines[0].split()
    datasets = header[1:]  # after 'Statistics'
    values: dict[tuple[str, str], float] = {}
    for line in lines[2:]:
        match = re.match(r"^(.*?)\s{2,}([\d,.]+)\s+([\d,.]+)\s*$", line)
        if not match:
            continue
        label = match.group(1).strip()
        for dataset, cell in zip(datasets, match.groups()[1:]):
            values[(dataset, label)] = float(cell.replace(",", ""))
    return values


def main() -> int:
    text = TARGET.read_text()
    missing = []

    for placeholder, filename in BLOCKS.items():
        path = RESULTS / filename
        if not path.exists():
            missing.append(filename)
            continue
        block = "```\n" + path.read_text().rstrip() + "\n```"
        text = text.replace(placeholder, block)

    table1 = RESULTS / "table1.txt"
    if table1.exists():
        cells = parse_table1(table1)
        for placeholder, key in TABLE1_CELLS.items():
            if key in cells:
                text = text.replace(placeholder, f"{cells[key]:.2f}")
    else:
        missing.append("table1.txt")

    TARGET.write_text(text)
    leftover = re.findall(r"MEASURED_\w+", text)
    if leftover:
        print(f"warning: unfilled placeholders remain: {sorted(set(leftover))}")
    if missing:
        print(f"warning: missing result files: {missing}")
    print(f"updated {TARGET}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
