"""Trimmed continuation of the report run (single seed, prioritized).

Used when the full ``--profile report`` schedule does not fit the
available wall-clock: main tables at paper scale with one seed, sweeps
at reduced scale.  Writes the same ``results/<id>.txt`` files.
"""

from __future__ import annotations

import io
import sys
import time
from contextlib import redirect_stdout
from dataclasses import replace
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import ExperimentBudget
from repro.training import TrainingConfig

MAIN = ExperimentBudget(
    scale=0.02,
    seeds=(0,),
    training=TrainingConfig(user_epochs=25, group_epochs=60),
)
SWEEP = ExperimentBudget(
    scale=0.015,
    seeds=(0,),
    training=TrainingConfig(user_epochs=18, group_epochs=40),
)

ORDER = [
    ("table1", MAIN),
    ("table2", MAIN),
    ("table3", MAIN),
    ("table5", MAIN),
    ("table9", MAIN),
    ("table4", SWEEP),
    ("significance", SWEEP),
    ("table6", SWEEP),
    ("table7", SWEEP),
    ("table8", SWEEP),
]


def main() -> None:
    out_dir = Path("results")
    out_dir.mkdir(exist_ok=True)
    only = set(sys.argv[1:])
    for identifier, budget in ORDER:
        if only and identifier not in only:
            continue
        target = out_dir / f"{identifier}.txt"
        if target.exists():
            print(f"[{identifier}] already present, skipping", flush=True)
            continue
        print(f"[{identifier}] running ...", flush=True)
        start = time.time()
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            EXPERIMENTS[identifier].run(budget)
        target.write_text(buffer.getvalue().rstrip() + "\n")
        print(f"[{identifier}] done in {time.time() - start:.0f}s", flush=True)


if __name__ == "__main__":
    main()
