#!/usr/bin/env bash
# Resume smoke test: SIGKILL a training run mid-schedule, then assert
# that --resume completes it and the final checkpoint loads.
#
# Usage: PYTHONPATH=src scripts/ci_resume_smoke.sh [workdir]
# Env:   SMOKE_KILL_AFTER  seconds before the SIGKILL (default 6)

set -euo pipefail

if [ $# -ge 1 ]; then
  workdir="$1"
  mkdir -p "$workdir"
else
  workdir="$(mktemp -d)"
  trap 'rm -rf "$workdir"' EXIT
fi

export PYTHONPATH="${PYTHONPATH:-src}"

train_args=(
  --data "$workdir/world.npz"
  --out "$workdir/model.npz"
  --dim 16
  --user-epochs 30
  --group-epochs 40
  --checkpoint-dir "$workdir/ckpts"
)

python -m repro.cli generate --preset yelp --scale 0.01 --seed 3 \
  --out "$workdir/world.npz"

echo "--- starting training, SIGKILL in ${SMOKE_KILL_AFTER:-6}s"
set +e
timeout --signal=KILL "${SMOKE_KILL_AFTER:-6}" \
  python -m repro.cli train "${train_args[@]}"
status=$?
set -e
if [ "$status" -eq 0 ]; then
  echo "WARNING: run finished before the kill; resume will be a no-op"
else
  echo "killed with status $status (expected 137)"
fi

count=$(ls "$workdir/ckpts"/ckpt-*.npz 2>/dev/null | wc -l)
echo "--- $count checkpoint(s) on disk, resuming"
[ "$count" -ge 1 ] || { echo "FAIL: no checkpoint written before the kill"; exit 1; }

python -m repro.cli train "${train_args[@]}" --resume

python - "$workdir/model.npz" <<'EOF'
import sys
from repro.persistence import load_model
model = load_model(sys.argv[1])
print(f"final checkpoint ok: {model.num_users} users, {model.num_items} items")
EOF
echo "--- resume smoke passed"
