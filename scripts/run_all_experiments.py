"""Regenerate every table/figure and write the report files.

Writes one text file per artifact under ``results/`` plus a combined
``results/ALL.txt``.  Budget profiles:

    python scripts/run_all_experiments.py --profile report   # default
    python scripts/run_all_experiments.py --profile bench    # quick
    python scripts/run_all_experiments.py --profile paper    # slow, 3 seeds

The ``report`` profile is the one used to fill EXPERIMENTS.md: paper
scale for the main comparisons, single seed for the hyper-parameter
sweeps (matching how noisy the paper's own sweep tables are).
"""

from __future__ import annotations

import argparse
import io
import time
from contextlib import redirect_stdout
from dataclasses import replace
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import (
    BENCH_BUDGET,
    ExperimentBudget,
    PAPER_BUDGET,
)
from repro.training import TrainingConfig

REPORT_MAIN = ExperimentBudget(
    scale=0.02,
    seeds=(0, 1),
    training=TrainingConfig(user_epochs=25, group_epochs=60),
)
REPORT_SWEEP = replace(REPORT_MAIN, seeds=(0,))

PROFILES = {
    "bench": {identifier: BENCH_BUDGET for identifier in EXPERIMENTS},
    "paper": {identifier: PAPER_BUDGET for identifier in EXPERIMENTS},
    "report": {
        "table1": REPORT_MAIN,
        "table2": REPORT_MAIN,
        "table3": REPORT_MAIN,
        "figure3": REPORT_SWEEP,
        "table4": REPORT_SWEEP,
        "table5": REPORT_SWEEP,
        "table6": REPORT_SWEEP,
        "table7": REPORT_SWEEP,
        "table8": REPORT_SWEEP,
        "table9": REPORT_SWEEP,
        "significance": REPORT_SWEEP,
    },
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="report")
    parser.add_argument("--only", nargs="*", default=None, help="subset of artifact ids")
    parser.add_argument("--out", default="results", help="output directory")
    arguments = parser.parse_args()

    budgets = PROFILES[arguments.profile]
    out_dir = Path(arguments.out)
    out_dir.mkdir(exist_ok=True)
    combined: list[str] = []

    targets = arguments.only or sorted(EXPERIMENTS)
    for identifier in targets:
        experiment = EXPERIMENTS[identifier]
        print(f"[{identifier}] {experiment.description} ...", flush=True)
        start = time.time()
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            experiment.run(budgets[identifier])
        elapsed = time.time() - start
        text = buffer.getvalue().rstrip()
        header = f"=== {identifier}: {experiment.description} ({elapsed:.0f}s) ==="
        (out_dir / f"{identifier}.txt").write_text(text + "\n")
        combined.append(f"{header}\n{text}\n")
        print(f"[{identifier}] done in {elapsed:.0f}s", flush=True)

    (out_dir / "ALL.txt").write_text("\n".join(combined))
    print(f"wrote {out_dir}/ALL.txt")


if __name__ == "__main__":
    main()
