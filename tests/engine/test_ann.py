"""IVF candidate generation: index invariants and engine ANN mode.

The load-bearing contracts: the inverted lists exactly partition the
catalog, probing every list reproduces the exhaustive inner-product
Top-K, exclusions never leak into candidates, and the engine's ANN
mode degrades to bit-exact exhaustive results when the probe budget
covers the whole index.
"""

import numpy as np
import pytest

from repro.engine import EngineConfig, InferenceEngine
from repro.engine.ann import IVFIndex, default_nlist, kmeans, recall_at_k
from repro.engine.topk import topk_indices


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(42).standard_normal((500, 12))


@pytest.fixture(scope="module")
def index(vectors):
    return IVFIndex(vectors, nlist=20, nprobe=5, seed=0)


class TestIndexStructure:
    def test_lists_partition_the_catalog(self, index, vectors):
        everything = np.concatenate(index.lists)
        assert np.array_equal(np.sort(everything), np.arange(vectors.shape[0]))

    def test_lists_are_ascending(self, index):
        for members in index.lists:
            if members.size > 1:
                assert np.all(np.diff(members) > 0)

    def test_blocks_mirror_lists(self, index, vectors):
        for members, block in zip(index.lists, index.blocks):
            assert np.array_equal(block, vectors[members])

    def test_same_seed_same_index(self, vectors):
        first = IVFIndex(vectors, nlist=16, seed=7)
        second = IVFIndex(vectors, nlist=16, seed=7)
        for a, b in zip(first.lists, second.lists):
            assert np.array_equal(a, b)

    def test_default_nlist_is_about_sqrt(self):
        assert default_nlist(10000) == 100
        assert default_nlist(1) == 1
        assert default_nlist(2) <= 2

    def test_stats_shape(self, index, vectors):
        stats = index.stats()
        assert stats["num_vectors"] == vectors.shape[0]
        assert stats["nlist"] == 20
        assert stats["list_size_min"] >= 0
        assert stats["list_size_max"] >= stats["list_size_mean"]

    def test_validation(self, vectors):
        with pytest.raises(ValueError, match="empty"):
            IVFIndex(np.empty((0, 4)))
        with pytest.raises(ValueError, match="2-D"):
            IVFIndex(np.zeros(8))
        with pytest.raises(ValueError, match="nlist"):
            IVFIndex(vectors, nlist=0)
        with pytest.raises(ValueError, match="nprobe"):
            IVFIndex(vectors, nprobe=0)
        with pytest.raises(ValueError, match="k must be"):
            kmeans(vectors, 0)

    def test_query_dimension_checked(self, index):
        with pytest.raises(ValueError, match="dimensions"):
            index.search(np.zeros(5), 3)

    def test_exclude_mask_shape_checked(self, index):
        with pytest.raises(ValueError, match="exclude_mask"):
            index.candidates(np.zeros(12), 10, exclude_mask=np.zeros(3, dtype=bool))


class TestSearch:
    def test_full_probe_matches_exhaustive(self, index, vectors):
        rng = np.random.default_rng(1)
        for __ in range(25):
            query = rng.standard_normal(12)
            exact = topk_indices(vectors @ query, 10)
            approx, scores = index.search(query, 10, nprobe=index.nlist)
            assert np.array_equal(approx, exact)
            assert np.allclose(scores, (vectors @ query)[exact])

    def test_scores_descend(self, index):
        __, scores = index.search(np.random.default_rng(2).standard_normal(12), 10)
        assert np.all(np.diff(scores) <= 0)

    def test_partial_probe_returns_subset_of_catalog(self, index, vectors):
        approx, __ = index.search(np.ones(12), 10, nprobe=2)
        assert approx.size == 10
        assert np.all((approx >= 0) & (approx < vectors.shape[0]))

    def test_tied_scores_order_ascending(self):
        # Every row identical => every inner product ties; among equal
        # scores the output must ascend by position.
        tied = np.tile(np.ones(6), (40, 1))
        index = IVFIndex(tied, nlist=4, seed=0)
        positions, scores = index.search(np.ones(6), 8, nprobe=4)
        assert np.all(np.diff(scores) == 0)
        assert np.all(np.diff(positions) > 0)

    def test_k_larger_than_catalog(self, index, vectors):
        positions, __ = index.search(np.ones(12), 1000, nprobe=index.nlist)
        assert positions.size == vectors.shape[0]


class TestCandidates:
    def test_candidates_ascending_and_unique(self, index):
        candidates = index.candidates(np.ones(12), 64)
        assert candidates.size <= 64
        assert np.all(np.diff(candidates) > 0)

    def test_exclusions_never_leak(self, index, vectors):
        mask = np.zeros(vectors.shape[0], dtype=bool)
        mask[::3] = True
        candidates = index.candidates(np.ones(12), 200, nprobe=index.nlist,
                                      exclude_mask=mask)
        assert not mask[candidates].any()

    def test_min_results_escalates_past_nprobe(self, index, vectors):
        # One probed list cannot hold 100 survivors of a heavy mask;
        # the index must keep probing instead of starving the caller.
        mask = np.zeros(vectors.shape[0], dtype=bool)
        mask[: vectors.shape[0] // 2] = True
        candidates = index.candidates(
            np.ones(12), 400, nprobe=1, exclude_mask=mask, min_results=100
        )
        assert candidates.size >= 100
        assert not mask[candidates].any()

    def test_everything_excluded_yields_empty(self, index, vectors):
        mask = np.ones(vectors.shape[0], dtype=bool)
        candidates = index.candidates(
            np.ones(12), 10, nprobe=index.nlist, exclude_mask=mask, min_results=10
        )
        assert candidates.size == 0


class TestRecallHelper:
    def test_perfect_and_partial(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0
        assert recall_at_k(np.array([1, 9, 8]), np.array([1, 2, 3])) == pytest.approx(1 / 3)
        assert recall_at_k(np.array([]), np.array([])) == 1.0


@pytest.fixture(scope="module")
def engines(trained_tiny_model, tiny_split):
    """The same checkpoint behind exhaustive and full-probe ANN engines."""
    model, __, __h = trained_tiny_model
    train = tiny_split.train
    exhaustive = InferenceEngine(model, train)
    # Probe budget covers every list and the candidate pool covers the
    # catalog, so ANN mode must reproduce exhaustive results exactly.
    ann = InferenceEngine(
        model,
        train,
        config=EngineConfig(
            retrieval="ann",
            ann_nprobe=10_000,
            ann_candidates=train.num_items,
        ),
    )
    yield exhaustive, ann
    ann.close()
    exhaustive.close()


class TestEngineAnnMode:
    def test_invalid_retrieval_mode_rejected(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        with pytest.raises(ValueError, match="retrieval"):
            InferenceEngine(
                model, tiny_split.train, config=EngineConfig(retrieval="faiss")
            )

    def test_user_parity_at_full_probe(self, engines):
        exhaustive, ann = engines
        for user in range(25):
            expected_items, expected_scores = exhaustive.topk_user(user, k=7)
            items, scores = ann.topk_user(user, k=7)
            assert np.array_equal(items, expected_items)
            assert np.allclose(scores, expected_scores, rtol=1e-12)

    def test_group_parity_at_full_probe(self, engines):
        exhaustive, ann = engines
        for group in range(15):
            expected_items, __ = exhaustive.topk_group(group, k=5)
            items, __s = ann.topk_group(group, k=5)
            assert np.array_equal(items, expected_items)

    def test_adhoc_parity_at_full_probe(self, engines):
        exhaustive, ann = engines
        for members in ([0, 1, 2], [9, 3, 1], [17], [5, 12, 8]):
            expected_items, __ = exhaustive.topk_members(members, k=5)
            items, __s = ann.topk_members(members, k=5)
            assert np.array_equal(items, expected_items)

    def test_ann_mode_excludes_user_history(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        train = tiny_split.train
        config = EngineConfig(retrieval="ann", ann_nprobe=2, ann_candidates=16)
        with InferenceEngine(model, train, config=config) as engine:
            histories = train.user_items()
            for user in range(20):
                items, __s = engine.topk_user(user, k=5)
                assert not histories[user] & set(items.tolist())

    def test_ann_telemetry_recorded(self, engines):
        __, ann = engines
        snapshot = ann.telemetry_snapshot()
        assert snapshot["counters"]["ann.queries"] > 0
        assert snapshot["counters"]["ann.candidates"] > 0
