"""Micro-batching queue: coalescing, ordering, failure propagation."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine.batching import MicroBatcher
from repro.engine.telemetry import Telemetry


def echo_handler(payloads):
    return [p * 2 for p in payloads]


class TestCoalescing:
    def test_staged_requests_flush_as_one_batch(self):
        seen = []
        telemetry = Telemetry()

        def handler(payloads):
            seen.append(list(payloads))
            return payloads

        batcher = MicroBatcher(
            handler, max_batch_size=16, telemetry=telemetry, autostart=False
        )
        futures = [batcher.submit(i) for i in range(6)]
        batcher.start()
        assert [f.result(timeout=5) for f in futures] == list(range(6))
        batcher.close()
        assert seen == [[0, 1, 2, 3, 4, 5]]
        snapshot = telemetry.snapshot()
        assert snapshot["batches"]["count"] == 1
        assert snapshot["batches"]["mean_occupancy"] == 6.0

    def test_max_batch_size_splits_flushes(self):
        sizes = []

        def handler(payloads):
            sizes.append(len(payloads))
            return payloads

        batcher = MicroBatcher(handler, max_batch_size=4, autostart=False)
        futures = [batcher.submit(i) for i in range(10)]
        batcher.start()
        [f.result(timeout=5) for f in futures]
        batcher.close()
        assert sizes == [4, 4, 2]

    def test_flush_interval_waits_for_stragglers(self):
        sizes = []

        def handler(payloads):
            sizes.append(len(payloads))
            return payloads

        batcher = MicroBatcher(
            handler, max_batch_size=8, flush_interval=0.2, autostart=True
        )
        first = batcher.submit(1)
        time.sleep(0.05)  # well inside the flush window
        second = batcher.submit(2)
        assert first.result(timeout=5) == 1
        assert second.result(timeout=5) == 2
        batcher.close()
        assert sizes == [2]


class TestConcurrency:
    def test_concurrent_submitters_get_their_own_results(self):
        telemetry = Telemetry()
        batcher = MicroBatcher(echo_handler, max_batch_size=8, telemetry=telemetry)
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda i: batcher.submit(i).result(timeout=5), range(64)))
        batcher.close()
        assert results == [i * 2 for i in range(64)]
        assert telemetry.counter("batch.requests") == 64

    def test_handler_runs_on_single_worker_thread(self):
        threads = set()

        def handler(payloads):
            threads.add(threading.current_thread().name)
            return payloads

        batcher = MicroBatcher(handler, max_batch_size=4)
        futures = [batcher.submit(i) for i in range(12)]
        [f.result(timeout=5) for f in futures]
        batcher.close()
        assert threads == {"microbatcher-worker"}


class TestFailure:
    def test_handler_exception_fails_the_whole_flush(self):
        def handler(payloads):
            raise RuntimeError("boom")

        batcher = MicroBatcher(handler, autostart=False)
        futures = [batcher.submit(i) for i in range(3)]
        batcher.start()
        for future in futures:
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=5)
        batcher.close()

    def test_wrong_result_count_fails_futures(self):
        batcher = MicroBatcher(lambda payloads: [], autostart=False)
        future = batcher.submit(1)
        batcher.start()
        with pytest.raises(RuntimeError, match="results"):
            future.result(timeout=5)
        batcher.close()

    def test_exception_does_not_kill_worker(self):
        calls = []

        def handler(payloads):
            calls.append(list(payloads))
            if payloads[0] == "bad":
                raise ValueError("bad payload")
            return payloads

        batcher = MicroBatcher(handler)
        bad = batcher.submit("bad")
        with pytest.raises(ValueError):
            bad.result(timeout=5)
        assert batcher.submit("good").result(timeout=5) == "good"
        batcher.close()

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(echo_handler)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(1)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(echo_handler, max_batch_size=0)
        with pytest.raises(ValueError, match="flush_interval"):
            MicroBatcher(echo_handler, flush_interval=-1.0)


class TestWedgedShutdown:
    """close() must never strand callers on futures that cannot resolve."""

    def test_close_fails_inflight_and_queued_futures(self):
        wedge = threading.Event()
        entered = threading.Event()

        def handler(payloads):
            entered.set()
            wedge.wait()  # deliberately wedged until the test releases it
            return list(payloads)

        batcher = MicroBatcher(handler, max_batch_size=1)
        inflight = batcher.submit("stuck")
        assert entered.wait(timeout=5)
        queued = [batcher.submit(i) for i in range(3)]

        start = time.perf_counter()
        batcher.close(timeout=0.2)
        assert time.perf_counter() - start < 5.0  # close itself returns

        # Every undrained future fails fast instead of hanging forever.
        with pytest.raises(RuntimeError, match="did not stop"):
            inflight.result(timeout=5)
        for future in queued:
            with pytest.raises(RuntimeError, match="did not stop"):
                future.result(timeout=5)

        # Un-wedging must not crash the worker on already-failed futures.
        wedge.set()
        time.sleep(0.05)

    def test_close_with_healthy_worker_still_drains(self):
        batcher = MicroBatcher(echo_handler)
        futures = [batcher.submit(i) for i in range(5)]
        batcher.close(timeout=5.0)
        assert [f.result(timeout=5) for f in futures] == [i * 2 for i in range(5)]
