"""IVFIndex.rebuild: config/seed preservation and post-swap recall."""

import numpy as np
import pytest

from repro.engine import EngineConfig, InferenceEngine
from repro.engine.ann import IVFIndex, recall_at_k
from repro.engine.topk import topk_indices


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(17).standard_normal((400, 12))


@pytest.fixture(scope="module")
def new_vectors():
    return np.random.default_rng(18).standard_normal((400, 12))


class TestRebuildConfig:
    def test_explicit_nlist_and_nprobe_carry_over(self, vectors, new_vectors):
        index = IVFIndex(vectors, nlist=25, nprobe=6, seed=3)
        rebuilt = index.rebuild(new_vectors)
        assert rebuilt.nlist == 25
        assert rebuilt.nprobe == 6

    def test_default_nlist_readapts_to_catalog(self, vectors):
        index = IVFIndex(vectors, seed=3)  # nlist defaulted (~sqrt)
        grown = np.random.default_rng(19).standard_normal((1600, 12))
        rebuilt = index.rebuild(grown)
        bigger = IVFIndex(grown, seed=3)
        assert rebuilt.nlist == bigger.nlist  # re-derived, not frozen

    def test_explicit_nlist_clamps_to_tiny_catalog(self, vectors):
        index = IVFIndex(vectors, nlist=25, seed=3)
        rebuilt = index.rebuild(vectors[:10])
        assert rebuilt.nlist <= 10

    def test_seed_preserved_rebuild_is_deterministic(self, vectors, new_vectors):
        index = IVFIndex(vectors, nlist=16, seed=7)
        first = index.rebuild(new_vectors)
        second = index.rebuild(new_vectors)
        for a, b in zip(first.lists, second.lists):
            assert np.array_equal(a, b)
        # Same lists as building from scratch with the original seed.
        scratch = IVFIndex(new_vectors, nlist=16, seed=7)
        for a, b in zip(first.lists, scratch.lists):
            assert np.array_equal(a, b)

    def test_rebuilt_index_indexes_the_new_vectors(self, vectors, new_vectors):
        index = IVFIndex(vectors, nlist=20, seed=0)
        rebuilt = index.rebuild(new_vectors)
        for members, block in zip(rebuilt.lists, rebuilt.blocks):
            assert np.array_equal(block, new_vectors[members])

    def test_rebuilt_recall_against_new_vectors(self, vectors, new_vectors):
        # Structure-free Gaussian vectors are IVF's adversarial case, so
        # the probe budget covers most lists (as auto_nprobe would).
        index = IVFIndex(vectors, nlist=16, nprobe=12, seed=0)
        rebuilt = index.rebuild(new_vectors)
        queries = np.random.default_rng(20).standard_normal((50, 12))
        recalls = []
        for query in queries:
            exact = topk_indices(new_vectors @ query, 10)
            approx, __ = rebuilt.search(query, 10)
            recalls.append(recall_at_k(approx, exact))
        assert float(np.mean(recalls)) >= 0.95


class TestEngineSwapRecall:
    def test_post_swap_ann_recall_vs_new_model(
        self, trained_tiny_model, tiny_split
    ):
        """After a hot-swap the ANN index must serve the NEW model.

        The engine is built in ANN mode over the old model, swapped to
        a perturbed model, and its Top-10 lists are compared against
        exhaustive Top-10 on the *new* model: recall@10 >= 0.95.  A
        stale index (still clustering the old item embeddings) fails
        this immediately.
        """
        import copy

        model, __, __h = trained_tiny_model
        dataset = tiny_split.train
        # Probe every list, but keep the candidate pool *smaller than
        # the catalog*: with all 50 items as candidates even a stale
        # index would pass, since the exact reranker sees everything.
        config = EngineConfig(
            retrieval="ann", ann_nprobe=16, ann_candidates=44
        )
        # The new model permutes the item-embedding rows: the harshest
        # realistic drift for an index, since every stored vector now
        # describes a different item.  A stale index is catastrophically
        # wrong; a rebuilt one tracks the new table.
        new_model = copy.deepcopy(model)
        table = new_model.item_embedding.weight.data
        table[:] = table[np.random.default_rng(5).permutation(table.shape[0])]

        engine = InferenceEngine(model, dataset, config=config)
        exhaustive = InferenceEngine(new_model, dataset)
        try:
            old_index = engine.ann_index
            engine.swap_model(new_model, version=1)
            assert engine.model_version == 1

            # Structural freshness: the swap installed a *new* index
            # whose stored blocks mirror the NEW item table (the tiny
            # catalog is too small for a recall gap to prove this, so
            # it is asserted directly).
            rebuilt = engine.ann_index
            assert rebuilt is not old_index
            new_table = new_model.item_embedding.weight.data
            for members, block in zip(rebuilt.lists, rebuilt.blocks):
                assert np.array_equal(block, new_table[members])

            recalls = []
            for user in range(dataset.num_users):
                exact, __e = exhaustive.topk_user(user, 10)
                approx, __s = engine.topk_user(user, 10)
                recalls.append(recall_at_k(approx, exact))
            assert float(np.mean(recalls)) >= 0.95
        finally:
            engine.close()
            exhaustive.close()
