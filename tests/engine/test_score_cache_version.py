"""Version-keyed ScoreCache: stale blocks never serve old-model scores."""

import numpy as np
import pytest

from repro.engine.score_cache import ScoreCache


def _version_scorer(tag):
    """A scorer whose output encodes which model version computed it."""

    def score(users, items):
        return tag * 1000.0 + users * 10.0 + items

    return score


@pytest.fixture
def cache():
    return ScoreCache(
        _version_scorer(0), num_users=12, num_items=6, block_rows=4
    )


class TestVersionKeying:
    def test_blocks_carry_the_current_version(self, cache):
        cache.warm()
        assert cache.resident_blocks == 3
        assert cache.model_version == 0

    def test_stale_blocks_never_serve_after_bump(self, cache):
        """The regression the satellite demands: after a swap, a block
        computed under the old model must be unreachable even though it
        was resident a moment ago."""
        before = cache.scores_for_user(5)
        assert before[0] == pytest.approx(50.0)  # version-0 scorer

        cache.bump_model_version(1, score_fn=_version_scorer(1))
        after = cache.scores_for_user(5)
        assert after[0] == pytest.approx(1050.0)  # recomputed, new scorer
        assert not np.array_equal(before, after)

        # Every row, not just the touched one, reflects the new model.
        rows = cache.scores_for_users(np.arange(12))
        assert np.all(rows >= 1000.0)

    def test_bump_eagerly_drops_old_blocks(self, cache):
        cache.warm()
        assert cache.resident_blocks == 3
        cache.bump_model_version(7, score_fn=_version_scorer(7))
        assert cache.resident_blocks == 0  # old-version blocks dropped

    def test_bump_without_new_scorer_still_invalidates(self, cache):
        cache.warm()
        first = cache.scores_for_user(0).copy()
        # The scorer object is swapped externally (e.g. the engine built
        # a new cache-less scorer); even without rebinding, old blocks
        # must be recomputed rather than served.
        cache.score_fn = _version_scorer(9)
        cache.bump_model_version(1)
        assert cache.scores_for_user(0)[0] == pytest.approx(9000.0)
        assert first[0] == pytest.approx(0.0)

    def test_version_must_strictly_increase(self, cache):
        cache.bump_model_version(3)
        with pytest.raises(ValueError):
            cache.bump_model_version(3)
        with pytest.raises(ValueError):
            cache.bump_model_version(2)

    def test_invalidate_version_counts_drops(self, cache):
        cache.warm()
        assert cache.invalidate_version(0) == 3
        assert cache.invalidate_version(0) == 0  # idempotent

    def test_initial_version_is_configurable(self):
        cache = ScoreCache(
            _version_scorer(4), num_users=4, num_items=3, model_version=4
        )
        assert cache.model_version == 4
        with pytest.raises(ValueError):
            cache.bump_model_version(4)
