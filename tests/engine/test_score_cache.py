"""Score cache: exact equality with direct scoring, LRU residency."""

import numpy as np
import pytest

from repro.engine.score_cache import LRUCache, ScoreCache
from repro.engine.telemetry import Telemetry


def toy_scorer(users, items):
    """Cheap deterministic stand-in for ``model.score_user_items``."""
    return (users * 31 + items * 7) % 13 + 0.5 * users


class TestLRUCache:
    def test_get_put_and_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now stalest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_peek_does_not_refresh(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")  # "a" stays stalest
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        cache = LRUCache(capacity=1, telemetry=telemetry, name="x")
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts
        assert telemetry.counter("x.hit") == 1
        assert telemetry.counter("x.miss") == 1
        assert telemetry.counter("x.evict") == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(capacity=0)


class TestScoreCacheBlocks:
    def test_rows_match_direct_scoring_exactly(self):
        cache = ScoreCache(toy_scorer, num_users=10, num_items=7, block_rows=3)
        items = np.arange(7, dtype=np.int64)
        for user in range(10):
            direct = toy_scorer(np.full(7, user, dtype=np.int64), items)
            assert np.array_equal(cache.scores_for_user(user), direct)

    def test_matrix_fetch_matches_rows(self):
        cache = ScoreCache(toy_scorer, num_users=10, num_items=7, block_rows=4)
        users = np.array([9, 0, 5, 0], dtype=np.int64)
        matrix = cache.scores_for_users(users)
        assert matrix.shape == (4, 7)
        for row, user in zip(matrix, users):
            assert np.array_equal(row, cache.scores_for_user(int(user)))

    def test_lazy_materialization_hit_miss(self):
        telemetry = Telemetry()
        cache = ScoreCache(
            toy_scorer, num_users=10, num_items=7, block_rows=5, telemetry=telemetry
        )
        assert cache.resident_blocks == 0
        cache.scores_for_user(0)  # miss: materializes block 0
        cache.scores_for_user(1)  # hit: same block
        cache.scores_for_user(7)  # miss: block 1
        assert cache.resident_blocks == 2
        assert telemetry.counter("score_cache.miss") == 2
        assert telemetry.counter("score_cache.hit") == 1

    def test_budget_evicts_and_recomputes(self):
        telemetry = Telemetry()
        # One block = 5 rows * 7 items * 8 bytes = 280 bytes; budget of
        # 300 keeps exactly one block resident.
        cache = ScoreCache(
            toy_scorer,
            num_users=10,
            num_items=7,
            block_rows=5,
            memory_budget_bytes=300,
            telemetry=telemetry,
        )
        row_0 = cache.scores_for_user(0)
        cache.scores_for_user(7)  # evicts block 0
        assert cache.resident_blocks == 1
        assert telemetry.counter("score_cache.evict") == 1
        # Recomputed block is identical.
        assert np.array_equal(cache.scores_for_user(0), row_0)
        assert telemetry.counter("score_cache.miss") == 3

    def test_warm_all_and_subset(self):
        cache = ScoreCache(toy_scorer, num_users=10, num_items=7, block_rows=4)
        cache.warm(np.array([0, 9]))
        assert cache.resident_blocks == 2
        cache.warm()
        assert cache.resident_blocks == cache.num_blocks == 3

    def test_out_of_range_user(self):
        cache = ScoreCache(toy_scorer, num_users=4, num_items=3)
        with pytest.raises(IndexError):
            cache.scores_for_user(4)
        with pytest.raises(IndexError):
            cache.scores_for_users(np.array([0, 7]))

    def test_rejects_bad_block_rows(self):
        with pytest.raises(ValueError, match="block_rows"):
            ScoreCache(toy_scorer, num_users=4, num_items=3, block_rows=0)


class TestScoreCacheAgainstModel:
    """The contract the engine relies on: cache rows are bit-identical
    to the canonical direct full-row scoring call on a real model."""

    def test_exact_equality_with_trained_model(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        train = tiny_split.train
        cache = ScoreCache(
            model.score_user_items,
            num_users=train.num_users,
            num_items=train.num_items,
            block_rows=16,
        )
        items = np.arange(train.num_items, dtype=np.int64)
        for user in (0, 1, 15, 16, train.num_users - 1):
            direct = model.score_user_items(
                np.full(train.num_items, user, dtype=np.int64), items
            )
            assert np.array_equal(cache.scores_for_user(user), direct)
