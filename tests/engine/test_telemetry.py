"""Telemetry: latency stages, counters, derived rates, occupancy."""

import json
import threading
import time

from repro.engine.telemetry import Telemetry


class TestStages:
    def test_latency_summary_fields(self):
        telemetry = Telemetry()
        for ms in (1, 2, 3, 4, 100):
            telemetry.record_latency("stage", ms / 1000.0)
        summary = telemetry.snapshot()["stages"]["stage"]
        assert summary["count"] == 5
        assert summary["mean_ms"] == 22.0
        assert summary["p50_ms"] == 3.0
        assert summary["max_ms"] == 100.0
        assert summary["p99_ms"] == 100.0

    def test_time_context_manager(self):
        telemetry = Telemetry()
        with telemetry.time("sleepy"):
            time.sleep(0.01)
        summary = telemetry.snapshot()["stages"]["sleepy"]
        assert summary["count"] == 1
        assert summary["max_ms"] >= 10.0

    def test_sample_cap_keeps_exact_counts(self):
        telemetry = Telemetry(max_samples=4)
        for index in range(10):
            telemetry.record_latency("stage", float(index))
        summary = telemetry.snapshot()["stages"]["stage"]
        assert summary["count"] == 10           # exact over full history
        assert summary["p50_ms"] >= 6000.0      # percentiles over recent window


class TestCountersAndRates:
    def test_increment(self):
        telemetry = Telemetry()
        telemetry.increment("requests", 3)
        telemetry.increment("requests")
        assert telemetry.counter("requests") == 4
        assert telemetry.counter("unknown") == 0

    def test_hit_rate_derivation(self):
        telemetry = Telemetry()
        telemetry.increment("cache.hit", 3)
        telemetry.increment("cache.miss", 1)
        snapshot = telemetry.snapshot()
        assert snapshot["rates"]["cache.hit_rate"] == 0.75

    def test_no_rate_without_traffic(self):
        telemetry = Telemetry()
        telemetry.increment("other", 5)
        assert telemetry.snapshot()["rates"] == {}

    def test_thread_safety(self):
        telemetry = Telemetry()

        def spin():
            for __ in range(1000):
                telemetry.increment("n")

        threads = [threading.Thread(target=spin) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.counter("n") == 8000


class TestBatchesAndExport:
    def test_batch_occupancy(self):
        telemetry = Telemetry()
        for size in (1, 3, 8):
            telemetry.record_batch(size)
        batches = telemetry.snapshot()["batches"]
        assert batches["count"] == 3
        assert batches["mean_occupancy"] == 4.0
        assert batches["max_occupancy"] == 8.0

    def test_empty_snapshot_is_safe(self):
        snapshot = Telemetry().snapshot()
        assert snapshot["stages"] == {}
        assert snapshot["batches"]["count"] == 0
        assert snapshot["batches"]["mean_occupancy"] == 0.0

    def test_json_roundtrip(self):
        telemetry = Telemetry()
        telemetry.increment("cache.hit")
        telemetry.record_latency("stage", 0.001)
        telemetry.record_batch(4)
        parsed = json.loads(telemetry.to_json())
        assert parsed["counters"]["cache.hit"] == 1
        assert "stage" in parsed["stages"]
