"""Telemetry: latency stages, counters, derived rates, occupancy."""

import json
import threading
import time

from repro.engine.telemetry import Telemetry


class TestStages:
    def test_latency_summary_fields(self):
        telemetry = Telemetry()
        for ms in (1, 2, 3, 4, 100):
            telemetry.record_latency("stage", ms / 1000.0)
        summary = telemetry.snapshot()["stages"]["stage"]
        assert summary["count"] == 5
        assert summary["mean_ms"] == 22.0
        assert summary["p50_ms"] == 3.0
        assert summary["max_ms"] == 100.0
        assert summary["p99_ms"] == 100.0

    def test_time_context_manager(self):
        telemetry = Telemetry()
        with telemetry.time("sleepy"):
            time.sleep(0.01)
        summary = telemetry.snapshot()["stages"]["sleepy"]
        assert summary["count"] == 1
        assert summary["max_ms"] >= 10.0

    def test_full_history_percentiles(self):
        # The reservoir era kept only the most recent max_samples, so
        # percentiles silently forgot old samples; the log-bucket
        # histograms keep the full history (max_samples is accepted for
        # compatibility and ignored).
        telemetry = Telemetry(max_samples=4)
        for index in range(10):
            telemetry.record_latency("stage", float(index))
        summary = telemetry.snapshot()["stages"]["stage"]
        assert summary["count"] == 10           # exact over full history
        assert summary["p50_ms"] == 4000.0      # nearest rank over ALL samples
        assert summary["max_ms"] == 9000.0

    def test_percentiles_unbiased_under_load(self):
        # Regression for the reservoir bias: 100k heavily skewed samples
        # would have overflowed the old deque(maxlen=8192) and skewed
        # p99 toward whatever arrived last.  The histogram's p99 must
        # stay within one bucket's relative error of the exact order
        # statistic regardless of volume or arrival order.
        import numpy as np

        telemetry = Telemetry()
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=2.0, size=100_000)
        # Adversarial ordering: ascending, so a recency window would
        # only ever see the largest samples.
        for value in np.sort(samples):
            telemetry.record_latency("stage", float(value))
        summary = telemetry.snapshot()["stages"]["stage"]
        assert summary["count"] == 100_000
        relative_error = (
            telemetry.registry.histogram("stage.stage").relative_error
        )
        for q in (50, 90, 99):
            rank = int(round(q / 100.0 * (samples.size - 1)))
            exact_ms = float(np.sort(samples)[rank]) * 1000.0
            got_ms = summary[f"p{q}_ms"]
            assert abs(got_ms - exact_ms) <= exact_ms * relative_error + 1e-9, (
                f"p{q}: got {got_ms}, exact {exact_ms}"
            )


class TestCountersAndRates:
    def test_increment(self):
        telemetry = Telemetry()
        telemetry.increment("requests", 3)
        telemetry.increment("requests")
        assert telemetry.counter("requests") == 4
        assert telemetry.counter("unknown") == 0

    def test_hit_rate_derivation(self):
        telemetry = Telemetry()
        telemetry.increment("cache.hit", 3)
        telemetry.increment("cache.miss", 1)
        snapshot = telemetry.snapshot()
        assert snapshot["rates"]["cache.hit_rate"] == 0.75

    def test_no_rate_without_traffic(self):
        telemetry = Telemetry()
        telemetry.increment("other", 5)
        assert telemetry.snapshot()["rates"] == {}

    def test_thread_safety(self):
        telemetry = Telemetry()

        def spin():
            for __ in range(1000):
                telemetry.increment("n")

        threads = [threading.Thread(target=spin) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.counter("n") == 8000


class TestBatchesAndExport:
    def test_batch_occupancy(self):
        telemetry = Telemetry()
        for size in (1, 3, 8):
            telemetry.record_batch(size)
        batches = telemetry.snapshot()["batches"]
        assert batches["count"] == 3
        assert batches["mean_occupancy"] == 4.0
        assert batches["max_occupancy"] == 8.0

    def test_empty_snapshot_is_safe(self):
        snapshot = Telemetry().snapshot()
        assert snapshot["stages"] == {}
        assert snapshot["batches"]["count"] == 0
        assert snapshot["batches"]["mean_occupancy"] == 0.0

    def test_prometheus_exposition(self):
        telemetry = Telemetry()
        telemetry.increment("cache.hit", 3)
        telemetry.record_latency("stage", 0.001)
        text = telemetry.exposition()
        assert "# TYPE repro_cache_hit_total counter" in text
        assert "repro_cache_hit_total 3" in text
        assert "# TYPE repro_stage_stage histogram" in text
        assert "repro_stage_stage_count 1" in text

    def test_json_roundtrip(self):
        telemetry = Telemetry()
        telemetry.increment("cache.hit")
        telemetry.record_latency("stage", 0.001)
        telemetry.record_batch(4)
        parsed = json.loads(telemetry.to_json())
        assert parsed["counters"]["cache.hit"] == 1
        assert "stage" in parsed["stages"]
