"""Inference engine vs direct serving: identical results, telemetry.

The acceptance contract: engine-backed serving returns the same
recommendation lists as the direct path, from the same checkpoint.
"""

import numpy as np
import pytest

from repro.engine import EngineConfig, InferenceEngine
from repro.persistence import save_model
from repro.serving import RecommendationService


@pytest.fixture(scope="module")
def checkpoint(trained_tiny_model, tmp_path_factory):
    model, __, __h = trained_tiny_model
    path = tmp_path_factory.mktemp("engine") / "model.npz"
    save_model(model, path)
    return path


@pytest.fixture(scope="module")
def direct_service(checkpoint, tiny_split):
    return RecommendationService.from_checkpoint(checkpoint, tiny_split.train)


@pytest.fixture(scope="module")
def engine_service(checkpoint, tiny_split):
    service = RecommendationService.from_checkpoint(
        checkpoint, tiny_split.train, use_engine=True
    )
    yield service
    service.close()


class TestDirectEngineParity:
    def test_user_lists_identical(self, direct_service, engine_service):
        for user in range(20):
            direct = direct_service.recommend_for_user(user, k=7)
            backed = engine_service.recommend_for_user(user, k=7)
            assert direct.items == backed.items
            assert np.allclose(direct.scores, backed.scores, rtol=1e-9)

    def test_group_lists_identical(self, direct_service, engine_service):
        for group in range(15):
            direct = direct_service.recommend_for_group(group, k=5)
            backed = engine_service.recommend_for_group(group, k=5)
            assert direct.items == backed.items
            assert direct.voting_weights == backed.voting_weights
            assert np.allclose(direct.scores, backed.scores, rtol=1e-9)

    def test_adhoc_lists_identical(self, direct_service, engine_service):
        for members in ([0, 1, 2], [9, 3, 3, 1], [17], [5, 12, 8, 5, 12]):
            direct = direct_service.recommend_for_members(members, k=5)
            backed = engine_service.recommend_for_members(members, k=5)
            assert direct.items == backed.items
            assert direct.voting_weights == backed.voting_weights

    def test_parity_under_tight_cache_budget(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        config = EngineConfig(score_block_rows=8, score_cache_budget_mb=8 * 50 * 8 / 2**20)
        with InferenceEngine(model, tiny_split.train, config=config) as engine:
            direct = RecommendationService(model=model, dataset=tiny_split.train)
            for user in (0, 30, 59, 1, 31):  # hop across blocks to force evictions
                items, __scores = engine.topk_user(user, k=6)
                assert items.tolist() == direct.recommend_for_user(user, k=6).items
            assert engine.telemetry.counter("score_cache.evict") > 0


class TestEngineRequests:
    def test_concurrent_mixed_futures(self, direct_service, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        with InferenceEngine(model, tiny_split.train, autostart=False) as engine:
            user_futures = [engine.submit_user(u, k=4) for u in range(6)]
            group_futures = [engine.submit_group(g, k=4) for g in range(4)]
            adhoc_future = engine.submit_members([2, 4, 6], k=4)
            engine.start()
            for user, future in enumerate(user_futures):
                items, __s = future.result(timeout=30)
                assert items.tolist() == direct_service.recommend_for_user(user, k=4).items
            for group, future in enumerate(group_futures):
                items, __s = future.result(timeout=30)
                assert items.tolist() == direct_service.recommend_for_group(group, k=4).items
            items, __s = adhoc_future.result(timeout=30)
            assert items.tolist() == direct_service.recommend_for_members([2, 4, 6], k=4).items
            # Staged submissions coalesced into shared flushes.
            snapshot = engine.telemetry_snapshot()
            assert snapshot["batches"]["mean_occupancy"] > 1.0

    def test_validation(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        with InferenceEngine(model, tiny_split.train) as engine:
            with pytest.raises(IndexError):
                engine.submit_user(10**6)
            with pytest.raises(IndexError):
                engine.submit_group(10**6)
            with pytest.raises(IndexError):
                engine.submit_members([0, 10**6])
            with pytest.raises(ValueError, match="non-empty"):
                engine.submit_members([])
            with pytest.raises(ValueError, match="k must be"):
                engine.submit_user(0, k=0)

    def test_canonical_members(self):
        assert InferenceEngine.canonical_members([5, 1, 5, 3]) == (1, 3, 5)


class TestEngineTelemetry:
    def test_snapshot_covers_stages_rates_occupancy(self, engine_service):
        engine = engine_service.engine
        engine_service.recommend_for_user(0, k=3)
        engine_service.recommend_for_user(1, k=3)
        engine_service.recommend_for_members([0, 1], k=3)
        engine_service.recommend_for_members([0, 1], k=3)  # adhoc cache hit
        snapshot = engine_service.telemetry_snapshot()
        assert "engine.user_stage" in snapshot["stages"]
        assert "engine.adhoc_stage" in snapshot["stages"]
        assert "batch.execute" in snapshot["stages"]
        assert snapshot["rates"]["score_cache.hit_rate"] > 0.0
        assert snapshot["rates"]["adhoc_cache.hit_rate"] > 0.0
        assert snapshot["batches"]["mean_occupancy"] >= 1.0
        assert snapshot["counters"]["requests.user"] >= 2

    def test_direct_mode_has_no_snapshot(self, direct_service):
        assert direct_service.telemetry_snapshot() is None
