"""Vectorized Top-K kernel: parity with a stable descending sort."""

import numpy as np
import pytest

from repro.engine.topk import batch_topk, exclusion_mask, topk_indices


def reference_topk(scores, k, exclude_mask=None):
    """The seed's semantics: stable argsort over the candidate pool."""
    indices = np.arange(scores.size)
    if exclude_mask is not None:
        indices = indices[~exclude_mask]
    order = np.argsort(-scores[indices], kind="stable")
    return indices[order[:k]]


class TestTopkIndices:
    def test_matches_reference_with_heavy_ties(self):
        rng = np.random.default_rng(0)
        for __ in range(500):
            size = int(rng.integers(1, 60))
            # Few distinct values => lots of boundary ties.
            scores = rng.integers(0, 6, size=size).astype(float)
            k = int(rng.integers(1, size + 3))
            mask = None
            if rng.random() < 0.5:
                mask = rng.random(size) < 0.3
            expected = reference_topk(scores, k, mask)
            got = topk_indices(scores, k, mask)
            assert np.array_equal(expected, got), (scores, k, mask)

    def test_descending_with_index_tiebreak(self):
        scores = np.array([1.0, 3.0, 3.0, 2.0, 3.0])
        assert topk_indices(scores, 4).tolist() == [1, 2, 4, 3]

    def test_excluded_never_returned(self):
        scores = np.array([10.0, 9.0, 8.0, 7.0])
        mask = np.array([True, False, True, False])
        assert topk_indices(scores, 4, mask).tolist() == [1, 3]

    def test_k_larger_than_pool(self):
        scores = np.array([1.0, 2.0])
        assert topk_indices(scores, 10).tolist() == [1, 0]

    def test_all_excluded(self):
        scores = np.array([1.0, 2.0])
        mask = np.array([True, True])
        assert topk_indices(scores, 1, mask).size == 0

    def test_empty_and_nonpositive_k(self):
        assert topk_indices(np.empty(0), 3).size == 0
        assert topk_indices(np.array([1.0]), 0).size == 0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="1-D"):
            topk_indices(np.zeros((2, 2)), 1)
        with pytest.raises(ValueError, match="exclude_mask"):
            topk_indices(np.zeros(3), 1, np.zeros(4, dtype=bool))

    def test_returns_int64(self):
        assert topk_indices(np.array([1.0, 2.0]), 1).dtype == np.int64

    def test_rejects_nan_scores(self):
        # NaN silently corrupts argpartition's threshold and the
        # tie-break sort; the kernel refuses rather than mis-rank.
        with pytest.raises(ValueError, match="NaN"):
            topk_indices(np.array([1.0, np.nan, 2.0]), 2)

    def test_rejects_nan_even_when_excluded(self):
        # Rejection is on the raw vector: an excluded NaN is still a
        # corrupt input, not a silently tolerated one.
        mask = np.array([False, True, False])
        with pytest.raises(ValueError, match="NaN"):
            topk_indices(np.array([1.0, np.nan, 2.0]), 2, mask)

    def test_infinities_are_legal(self):
        scores = np.array([-np.inf, 0.0, np.inf])
        assert topk_indices(scores, 3).tolist() == [2, 1, 0]

    def test_all_valid_scores_neginf_never_returns_excluded(self):
        # Regression: exclusion uses a -inf sentinel internally; when
        # every *valid* score is also -inf, the threshold-tie fill used
        # to hand back excluded positions.
        scores = np.full(6, -np.inf)
        mask = np.array([True, False, True, False, True, False])
        got = topk_indices(scores, 3, mask)
        assert got.tolist() == [1, 3, 5]

    def test_mixed_neginf_valid_scores_with_exclusions(self):
        scores = np.array([-np.inf, 5.0, -np.inf, -np.inf, 2.0, -np.inf])
        mask = np.array([False, False, True, False, False, True])
        # Valid pool: {0: -inf, 1: 5, 3: -inf, 4: 2}; -inf entries are
        # genuine scores and must fill the tail in ascending-index
        # order, never positions 2 or 5.
        assert topk_indices(scores, 4, mask).tolist() == [1, 4, 0, 3]
        assert topk_indices(scores, 3, mask).tolist() == [1, 4, 0]

    def test_neginf_parity_with_reference(self):
        rng = np.random.default_rng(7)
        for __ in range(300):
            size = int(rng.integers(2, 40))
            scores = rng.integers(0, 3, size=size).astype(float)
            scores[rng.random(size) < 0.4] = -np.inf
            mask = rng.random(size) < 0.4
            if mask.all():
                mask[int(rng.integers(size))] = False
            k = int(rng.integers(1, size + 2))
            expected = reference_topk(scores, k, mask)
            got = topk_indices(scores, k, mask)
            assert np.array_equal(expected, got), (scores, k, mask)
            assert not mask[got].any()


class TestBatchTopk:
    def test_rowwise_parity(self):
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 4, size=(6, 20)).astype(float)
        masks = [rng.random(20) < 0.3 for __ in range(6)]
        rows = batch_topk(matrix, 5, masks)
        for row, mask, got in zip(matrix, masks, rows):
            assert np.array_equal(got, topk_indices(row, 5, mask))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="2-D"):
            batch_topk(np.zeros(3), 1)


class TestExclusionMask:
    def test_builds_mask(self):
        mask = exclusion_mask(5, {1, 3})
        assert mask.tolist() == [False, True, False, True, False]

    def test_empty_returns_none(self):
        assert exclusion_mask(5, set()) is None
        assert exclusion_mask(5, None) is None

    def test_accepts_list_set_and_ndarray(self):
        expected = [False, True, False, True, False]
        # Regression: a multi-element ndarray used to hit the ambiguous
        # `if not exclude` truthiness check and raise ValueError.
        for exclude in ([1, 3], {1, 3}, np.array([1, 3])):
            mask = exclusion_mask(5, exclude)
            assert mask.tolist() == expected, type(exclude)

    def test_empty_containers_of_every_kind_return_none(self):
        for exclude in ([], set(), (), np.empty(0, dtype=np.int64)):
            assert exclusion_mask(5, exclude) is None, type(exclude)

    def test_single_element_ndarray(self):
        mask = exclusion_mask(3, np.array([2]))
        assert mask.tolist() == [False, False, True]

    def test_zero_id_only_ndarray_still_masks(self):
        # array([0]) is falsy-looking element-wise but non-empty.
        mask = exclusion_mask(3, np.array([0]))
        assert mask.tolist() == [True, False, False]
