"""Request tracing through the live serving stack.

The acceptance contract: one traced ``topk_group`` request yields a
span tree covering service → engine.submit → microbatch.wait →
batch.execute → stage → forward → topk, the response carries the
``trace_id``, and concurrent traffic from many threads leaves both the
metrics registry and every kept span tree exact and well-formed.
"""

import threading

import pytest

from repro.engine import InferenceEngine
from repro.obs.spans import Tracer
from repro.serving import RecommendationService
from tests.obs.test_spans import assert_well_formed


@pytest.fixture
def traced_service(trained_tiny_model, tiny_split):
    model, __, __h = trained_tiny_model
    service = RecommendationService(model=model, dataset=tiny_split.train)
    service.enable_engine()
    tracer = Tracer(sample_rate=1.0, seed=0)
    tracer.install()
    yield service, tracer
    tracer.uninstall()
    service.close()


def spans_by_name(spans):
    grouped = {}
    for item in spans:
        grouped.setdefault(item.name, []).append(item)
    return grouped


def parent_chain(item, members):
    names = []
    cursor = item
    while cursor.parent_id is not None:
        cursor = members[cursor.parent_id]
        names.append(cursor.name)
    return names


class TestRequestSpanTrees:
    def test_group_request_covers_whole_path(self, traced_service):
        service, tracer = traced_service
        result = service.recommend_for_group(0, k=3)
        traces = tracer.traces()
        assert result.trace_id in traces
        spans = traces[result.trace_id]
        assert_well_formed(spans)
        names = {span.name for span in spans}
        assert {
            "service.recommend_for_group",
            "engine.submit",
            "microbatch.wait",
            "batch.execute",
            "engine.group_stage",
            "forward",
            "topk",
        } <= names
        members = {span.span_id: span for span in spans}
        forward = spans_by_name(spans)["forward"][0]
        # The forward pass hangs off the request chain through the
        # batcher: stage → flush → submit → service root.
        assert parent_chain(forward, members) == [
            "engine.group_stage",
            "batch.execute",
            "engine.submit",
            "service.recommend_for_group",
        ]

    def test_user_request_covers_cache_path(self, traced_service):
        service, tracer = traced_service
        first = service.recommend_for_user(0, k=3)
        second = service.recommend_for_user(0, k=3)
        traces = tracer.traces()
        cold = spans_by_name(traces[first.trace_id])
        assert "score_cache.lookup" in cold
        assert cold["score_cache.lookup"][0].attrs["hit"] is False
        assert "score_cache.block_compute" in cold
        warm = spans_by_name(traces[second.trace_id])
        assert warm["score_cache.lookup"][0].attrs["hit"] is True
        assert "score_cache.block_compute" not in warm
        assert "topk" in warm

    def test_adhoc_request_attributes(self, traced_service):
        service, tracer = traced_service
        result = service.recommend_for_members([1, 3, 3, 5], k=3)
        spans = spans_by_name(tracer.traces()[result.trace_id])
        assert spans["service.recommend_for_members"][0].attrs["member_count"] == 3
        assert spans["engine.submit"][0].attrs["kind"] == "adhoc"
        assert spans["adhoc_cache.lookup"][0].attrs["hit"] is False
        assert "forward" in spans

    def test_batch_execute_carries_batch_attributes(self, traced_service):
        service, tracer = traced_service
        service.recommend_for_user(2, k=3)
        result = service.recommend_for_user(3, k=3)
        flush = spans_by_name(tracer.traces()[result.trace_id]).get("batch.execute")
        if flush is None:
            # This request coalesced into another request's flush; the
            # flush span then lives in the first trace of the batch.
            flush = [
                span
                for span in tracer.finished_spans()
                if span.name == "batch.execute"
                and result.trace_id in span.attrs["traces"]
            ]
        assert flush, "no flush span correlated with the request"
        assert flush[0].attrs["batch_size"] >= 1

    def test_trace_id_none_when_tracing_off(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        service = RecommendationService(model=model, dataset=tiny_split.train)
        try:
            service.enable_engine()
            assert service.recommend_for_user(0, k=3).trace_id is None
            assert service.recommend_for_group(0, k=3).trace_id is None
        finally:
            service.close()

    def test_direct_mode_also_traced(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        service = RecommendationService(model=model, dataset=tiny_split.train)
        with Tracer(sample_rate=1.0, seed=0) as tracer:
            result = service.recommend_for_group(0, k=3)
        spans = spans_by_name(tracer.traces()[result.trace_id])
        assert spans["service.recommend_for_group"][0].attrs["mode"] == "direct"
        assert "direct.score" in spans


class TestConcurrentTracing:
    def test_hammer_from_8_threads_exact_and_well_formed(
        self, trained_tiny_model, tiny_split
    ):
        model, __, __h = trained_tiny_model
        dataset = tiny_split.train
        threads = 8
        per_thread = 12
        with Tracer(sample_rate=1.0, seed=0) as tracer:
            with InferenceEngine(model, dataset) as engine:
                errors = []

                def drive(seed: int) -> None:
                    try:
                        for index in range(per_thread):
                            kind = (seed + index) % 3
                            if kind == 0:
                                engine.topk_user((seed + index) % dataset.num_users, k=3)
                            elif kind == 1:
                                engine.topk_group(index % dataset.num_groups, k=3)
                            else:
                                members = [seed % dataset.num_users, index % dataset.num_users]
                                engine.topk_members(members, k=3)
                    except Exception as error:  # noqa: BLE001 — surfaced below
                        errors.append(error)

                workers = [
                    threading.Thread(target=drive, args=(seed,))
                    for seed in range(threads)
                ]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                assert errors == []

                # Counters are exact under concurrency.
                total = threads * per_thread
                telemetry = engine.telemetry
                by_kind = (
                    telemetry.counter("requests.user")
                    + telemetry.counter("requests.group")
                    + telemetry.counter("requests.adhoc")
                )
                assert by_kind == total
                snapshot = telemetry.snapshot()
                assert snapshot["stages"]["engine.request"]["count"] == total
                assert snapshot["counters"]["batch.requests"] == total

        # Every request produced a kept trace (sample_rate=1.0) and
        # every kept trace is a well-formed tree.
        summary = tracer.summary()
        assert summary["traces_started"] == total
        assert summary["traces_kept"] == total
        assert summary["orphan_spans"] == 0
        spans = tracer.finished_spans()
        assert_well_formed(spans)
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == total
        # Each trace covers at least submit + wait.
        for trace_spans in tracer.traces().values():
            names = {span.name for span in trace_spans}
            assert "engine.submit" in names
            assert "microbatch.wait" in names
