"""Serving correctness with float32 model tables (the dtype policy).

The engine promotes scores to float64 at its boundaries
(``topk_indices``, ``IVFIndex``, ``ScoreCache`` all coerce), so a
float32 model must serve through every path — blocked score cache, IVF
ANN retrieval, cross-shard Top-K merge, shared-memory weight store —
with the same ordering contracts as a float64 one.
"""

import dataclasses

import numpy as np

from repro.cluster import SharedWeightStore, attach_shared_model, write_model_store
from repro.cluster.merge import merge_topk
from repro.engine.ann import IVFIndex
from repro.engine.score_cache import ScoreCache
from repro.engine.topk import topk_indices
from repro.training import train_groupsa
from tests.conftest import TINY_MODEL_CONFIG, TINY_TRAINING

FLOAT32_CONFIG = dataclasses.replace(TINY_MODEL_CONFIG, dtype="float32")


def _float32_model(tiny_split):
    model, __, __h = train_groupsa(tiny_split, FLOAT32_CONFIG, TINY_TRAINING)
    return model


class TestScoreCacheFloat32:
    def test_blocked_scores_match_direct(self, tiny_split):
        model = _float32_model(tiny_split)
        cache = ScoreCache(
            model.score_user_items,
            num_users=model.num_users,
            num_items=model.num_items,
            block_rows=16,
        )
        users = np.array([0, 3, 17, 41])
        cached = cache.scores_for_users(users)
        for row, user in enumerate(users):
            direct = model.score_user_items(
                np.full(model.num_items, user), np.arange(model.num_items)
            )
            np.testing.assert_allclose(cached[row], direct, rtol=1e-6, atol=1e-6)

    def test_cached_rows_are_float64(self, tiny_split):
        # The cache is the engine's float64 boundary: a float32 scorer
        # must not leak narrow rows into ranking kernels.
        model = _float32_model(tiny_split)
        cache = ScoreCache(
            model.score_user_items,
            num_users=model.num_users,
            num_items=model.num_items,
        )
        assert cache.scores_for_user(5).dtype == np.float64


class TestIVFIndexFloat32:
    def test_full_probe_recall_is_exact(self, tiny_split):
        model = _float32_model(tiny_split)
        table = model.item_embedding.weight.data
        assert table.dtype == np.float32
        index = IVFIndex(table, nlist=8, seed=3)
        query = np.asarray(model.user_embedding.weight.data[7])
        exact = topk_indices(table.astype(np.float64) @ query.astype(np.float64), 10)
        positions, __ = index.search(query, k=10, nprobe=index.nlist)
        np.testing.assert_array_equal(np.sort(positions), np.sort(exact))

    def test_partial_probe_recall_reasonable(self, tiny_split):
        model = _float32_model(tiny_split)
        table = model.item_embedding.weight.data
        index = IVFIndex(table, nlist=8, nprobe=4, seed=3)
        hits = 0
        queries = model.user_embedding.weight.data[:20]
        for query in queries:
            exact = set(
                topk_indices(table.astype(np.float64) @ query.astype(np.float64), 5)
            )
            approx, __ = index.search(np.asarray(query), k=5)
            hits += len(exact & set(approx.tolist()))
        recall = hits / (len(queries) * 5)
        assert recall >= 0.6, recall


class TestMergeTopkFloat32:
    def test_tie_break_ascending_id_with_float32_scores(self):
        # float32 inputs coerce to float64 inside merge_topk; equal
        # scores must still resolve by ascending global id.
        scores = np.array([1.0, 0.5, 1.0], dtype=np.float32)
        part_a = (np.array([10, 4]), scores[:2])
        part_b = (np.array([2]), scores[2:])
        ids, merged_scores = merge_topk([part_a, part_b], k=3)
        np.testing.assert_array_equal(ids, [2, 10, 4])
        assert merged_scores.dtype == np.float64

    def test_merge_matches_global_topk(self, rng):
        scores = rng.normal(size=40).astype(np.float32)
        global_ids = np.arange(40)
        shard_a, shard_b = global_ids[:20], global_ids[20:]
        parts = [
            (shard[topk_indices(scores[shard], 5)],
             scores[shard][topk_indices(scores[shard], 5)])
            for shard in (shard_a, shard_b)
        ]
        ids, __ = merge_topk(parts, k=5)
        expected = topk_indices(scores.astype(np.float64), 5)
        np.testing.assert_array_equal(ids, expected)


class TestSharedWeightStoreFloat32:
    def test_round_trip_preserves_float32_tables(self, tiny_split, tmp_path):
        model = _float32_model(tiny_split)
        store = write_model_store(model, tmp_path / "store")
        assert store.meta["dtype"] == "float32"

        shared = attach_shared_model(tmp_path / "store")
        assert shared.config.dtype == "float32"
        for name, parameter in shared.named_parameters():
            assert parameter.data.dtype == np.float32, name

        reference = model.state_dict()
        for name, weights in shared.state_dict().items():
            np.testing.assert_array_equal(weights, reference[name])

    def test_attached_float32_model_serves(self, tiny_split, tmp_path):
        model = _float32_model(tiny_split)
        write_model_store(model, tmp_path / "store")
        shared = attach_shared_model(tmp_path / "store")
        users = np.array([1, 2, 3])
        items = np.array([4, 5, 6])
        np.testing.assert_allclose(
            shared.score_user_items(users, items),
            model.score_user_items(users, items),
            rtol=1e-6,
            atol=1e-6,
        )
