"""Shared fixtures: tiny worlds and trained models reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GroupSAConfig
from repro.data import split_interactions
from repro.data.synthetic import SyntheticConfig, generate
from repro.training import TrainingConfig, train_groupsa


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


TINY_CONFIG = SyntheticConfig(
    num_users=60,
    num_items=50,
    num_groups=30,
    num_communities=4,
    latent_dim=6,
    avg_friends=6.0,
    avg_user_interactions=8.0,
    avg_group_interactions=1.3,
    avg_group_size=3.5,
    max_group_size=8,
    seed=99,
    name="tiny",
)

TINY_MODEL_CONFIG = GroupSAConfig(
    embedding_dim=12,
    key_dim=8,
    value_dim=8,
    ffn_hidden=12,
    attention_hidden=12,
    top_h=3,
    prediction_hidden=(12,),
    fusion_hidden=(12,),
    dropout=0.0,
    seed=5,
)

TINY_TRAINING = TrainingConfig(
    user_epochs=4,
    group_epochs=4,
    batch_size=64,
    learning_rate=0.02,
    seed=5,
)


@pytest.fixture(scope="session")
def tiny_world():
    return generate(TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_split(tiny_world):
    return split_interactions(tiny_world.dataset, rng=7)


@pytest.fixture(scope="session")
def trained_tiny_model(tiny_split):
    """A GroupSA trained for a handful of epochs on the tiny world.

    Session-scoped: training takes a couple of seconds and many tests
    only need *a* trained model, not a fresh one.
    """
    model, batcher, history = train_groupsa(tiny_split, TINY_MODEL_CONFIG, TINY_TRAINING)
    return model, batcher, history
