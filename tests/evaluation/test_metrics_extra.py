"""Extended metrics: MRR, AUC, coverage, novelty, diversity."""

import numpy as np
import pytest

from repro.evaluation import (
    auc,
    catalog_coverage,
    extended_summary,
    intra_list_diversity,
    mean_rank,
    mrr,
    novelty,
)


class TestMRR:
    def test_perfect(self):
        assert mrr(np.zeros(5)) == 1.0

    def test_rank_one(self):
        assert mrr(np.array([1.0])) == pytest.approx(0.5)

    def test_empty(self):
        assert mrr(np.empty(0)) == 0.0

    def test_decreasing_in_rank(self):
        assert mrr(np.array([0.0])) > mrr(np.array([3.0])) > mrr(np.array([50.0]))


class TestAUC:
    def test_perfect(self):
        assert auc(np.zeros(4), 100) == 1.0

    def test_worst(self):
        assert auc(np.array([100.0]), 100) == 0.0

    def test_random_is_half(self):
        assert auc(np.array([50.0]), 100) == pytest.approx(0.5)

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            auc(np.zeros(1), 0)

    def test_empty(self):
        assert auc(np.empty(0), 10) == 0.0


class TestMeanRank:
    def test_value(self):
        assert mean_rank(np.array([0.0, 10.0])) == 5.0


class TestCoverage:
    def test_full_coverage(self):
        assert catalog_coverage([[0, 1], [2, 3]], 4) == 1.0

    def test_partial(self):
        assert catalog_coverage([[0, 0], [1]], 4) == 0.5

    def test_invalid_num_items(self):
        with pytest.raises(ValueError):
            catalog_coverage([[0]], 0)


class TestNovelty:
    def test_rare_items_more_novel(self):
        popularity = np.array([100.0, 1.0])
        rare = novelty([[1]], popularity)
        common = novelty([[0]], popularity)
        assert rare > common

    def test_zero_interactions_rejected(self):
        with pytest.raises(ValueError):
            novelty([[0]], np.zeros(3))

    def test_empty_lists(self):
        assert novelty([], np.array([1.0, 1.0])) == 0.0


class TestDiversity:
    def test_identical_items_zero(self):
        vectors = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert intra_list_diversity([[0, 1]], vectors) == pytest.approx(0.0)

    def test_orthogonal_items_one(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert intra_list_diversity([[0, 1]], vectors) == pytest.approx(1.0)

    def test_short_lists_skipped(self):
        vectors = np.eye(3)
        assert intra_list_diversity([[0]], vectors) == 0.0

    def test_zero_vectors_safe(self):
        vectors = np.zeros((2, 3))
        value = intra_list_diversity([[0, 1]], vectors)
        assert np.isfinite(value)


class TestExtendedSummary:
    def test_contains_all_keys(self):
        summary = extended_summary(np.array([0.0, 3.0, 20.0]), num_candidates=100)
        assert {"HR@5", "NDCG@5", "HR@10", "NDCG@10", "MRR", "AUC", "MeanRank"} <= set(
            summary
        )

    def test_consistency_with_base_metrics(self):
        ranks = np.array([0.0, 7.0])
        summary = extended_summary(ranks, num_candidates=50)
        assert summary["HR@5"] == pytest.approx(0.5)
        assert summary["MeanRank"] == pytest.approx(3.5)
