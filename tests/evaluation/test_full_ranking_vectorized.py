"""Pin the vectorized full-ranking exclusion masks to the reference.

The old implementation probed Python sets item by item; the new one
slices a precomputed per-entity boolean mask.  Identical kept-item sets
mean identical ranks — asserted here against a reimplementation of the
original per-item loop."""

import numpy as np
import pytest

from repro.evaluation.full_ranking import evaluate_full_ranking
from repro.evaluation.metrics import summarize
from repro.evaluation.protocol import RankingResult


def _reference_full_ranking(score_fn, test_edges, interacted, num_items,
                            ks=(5, 10), chunk_items=2048):
    """The pre-vectorization algorithm, kept verbatim as the oracle."""
    test_edges = np.asarray(test_edges, dtype=np.int64)
    ranks = np.empty(len(test_edges), dtype=float)
    all_items = np.arange(num_items, dtype=np.int64)
    for position, (entity, positive) in enumerate(test_edges):
        entity = int(entity)
        positive = int(positive)
        seen = interacted[entity]
        positive_score = float(
            score_fn(np.array([entity]), np.array([positive]))[0]
        )
        stronger = 0.0
        ties = 0.0
        for start in range(0, num_items, chunk_items):
            items = all_items[start : start + chunk_items]
            scores = score_fn(np.full(items.size, entity, dtype=np.int64), items)
            keep = np.array(
                [item not in seen and item != positive for item in items]
            )
            kept = scores[keep]
            stronger += float((kept > positive_score).sum())
            ties += float((kept == positive_score).sum())
        ranks[position] = stronger + 0.5 * ties
    return RankingResult(
        ranks=ranks, entities=test_edges[:, 0], metrics=summarize(ranks, ks)
    )


def _world(num_entities=7, num_items=40, seed=0):
    rng = np.random.default_rng(seed)
    table = rng.normal(size=(num_entities, num_items))
    # Deliberate ties: quantize some scores.
    table[:, ::5] = np.round(table[:, ::5])

    def score_fn(entities, items):
        return table[entities, items]

    interacted = [
        set(rng.choice(num_items, size=rng.integers(0, 12), replace=False).tolist())
        for _ in range(num_entities)
    ]
    edges = []
    for entity in range(num_entities):
        for _ in range(3):
            edges.append((entity, int(rng.integers(0, num_items))))
    return score_fn, np.array(edges, dtype=np.int64), interacted


@pytest.mark.parametrize("chunk_items", [7, 16, 2048])
def test_ranks_identical_to_reference(chunk_items):
    score_fn, edges, interacted = _world()
    fast = evaluate_full_ranking(
        score_fn, edges, interacted, num_items=40, chunk_items=chunk_items
    )
    slow = _reference_full_ranking(
        score_fn, edges, interacted, num_items=40, chunk_items=chunk_items
    )
    np.testing.assert_array_equal(fast.ranks, slow.ranks)
    assert fast.metrics == slow.metrics


def test_positive_inside_seen_set():
    """The positive being in the interacted set must not be double
    excluded (the old boolean logic already handled this; pin it)."""
    score_fn, edges, interacted = _world(seed=3)
    for entity, positive in edges:
        interacted[int(entity)].add(int(positive))
    fast = evaluate_full_ranking(score_fn, edges, interacted, num_items=40)
    slow = _reference_full_ranking(score_fn, edges, interacted, num_items=40)
    np.testing.assert_array_equal(fast.ranks, slow.ranks)


def test_entity_with_empty_history():
    score_fn, edges, interacted = _world(seed=5)
    interacted[0] = set()
    fast = evaluate_full_ranking(score_fn, edges, interacted, num_items=40)
    slow = _reference_full_ranking(score_fn, edges, interacted, num_items=40)
    np.testing.assert_array_equal(fast.ranks, slow.ranks)
