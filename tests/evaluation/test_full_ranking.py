"""Full-catalog ranking evaluation."""

import numpy as np
import pytest

from repro.evaluation import evaluate_full_ranking


class TestFullRanking:
    def test_oracle_rank_zero(self):
        # Scorer puts the positive first among all items.
        edges = np.array([[0, 5]])
        interacted = [{1, 2}]

        def scorer(entities, items):
            return (items == 5).astype(float)

        result = evaluate_full_ranking(scorer, edges, interacted, num_items=20)
        assert result.ranks[0] == 0.0
        assert result.metrics["HR@5"] == 1.0

    def test_seen_items_excluded_from_ranking(self):
        # All the stronger items are ones the user has already seen, so
        # the positive still ranks first.
        edges = np.array([[0, 5]])
        interacted = [{0, 1, 2, 3, 4}]

        def scorer(entities, items):
            # Items 0..4 would beat the positive, 6+ are weaker.
            return np.where(items <= 4, 10.0, np.where(items == 5, 5.0, 1.0))

        result = evaluate_full_ranking(scorer, edges, interacted, num_items=20)
        assert result.ranks[0] == 0.0

    def test_worst_case_rank(self):
        edges = np.array([[0, 5]])
        interacted = [set()]

        def scorer(entities, items):
            return -(items == 5).astype(float)

        result = evaluate_full_ranking(scorer, edges, interacted, num_items=10)
        assert result.ranks[0] == 9.0  # below all 9 other items

    def test_ties_half_credit(self):
        edges = np.array([[0, 5]])
        interacted = [set()]
        result = evaluate_full_ranking(
            lambda e, i: np.zeros(len(i)), edges, interacted, num_items=11
        )
        assert result.ranks[0] == 5.0  # 10 ties * 0.5

    def test_chunking_invariant(self):
        rng = np.random.default_rng(0)
        table = rng.normal(size=(3, 50))
        edges = np.array([[0, 3], [1, 7], [2, 11]])
        interacted = [{1}, {2}, {3}]

        def scorer(entities, items):
            return table[entities, items]

        small = evaluate_full_ranking(
            scorer, edges, interacted, num_items=50, chunk_items=7
        )
        large = evaluate_full_ranking(
            scorer, edges, interacted, num_items=50, chunk_items=1000
        )
        np.testing.assert_allclose(small.ranks, large.ranks)

    def test_agrees_with_sampled_protocol_on_oracle(self, tiny_split, trained_tiny_model):
        # For a fixed model, full ranking and the sampled protocol give
        # correlated results (full rank >= sampled rank in expectation).
        model, __, __h = trained_tiny_model
        full = tiny_split.full
        edges = tiny_split.test.user_item[:10]
        result = evaluate_full_ranking(
            model.score_user_items, edges, full.user_items(), full.num_items
        )
        assert np.isfinite(result.ranks).all()
        assert (result.ranks >= 0).all()
        assert (result.ranks < full.num_items).all()
