"""HR@K / NDCG@K metric semantics."""

import numpy as np
import pytest

from repro.evaluation import hit_ratio_at_k, ndcg_at_k, rank_of_positive, summarize


class TestRankOfPositive:
    def test_best_rank_zero(self):
        ranks = rank_of_positive(np.array([10.0]), np.array([[1.0, 2.0, 3.0]]))
        assert ranks[0] == 0

    def test_worst_rank(self):
        ranks = rank_of_positive(np.array([0.0]), np.array([[1.0, 2.0, 3.0]]))
        assert ranks[0] == 3

    def test_middle(self):
        ranks = rank_of_positive(np.array([2.5]), np.array([[1.0, 2.0, 3.0, 4.0]]))
        assert ranks[0] == 2

    def test_ties_give_half_credit(self):
        ranks = rank_of_positive(np.array([2.0]), np.array([[2.0, 2.0, 1.0]]))
        assert ranks[0] == 1.0  # two ties -> 0 strictly greater + 1.0

    def test_all_equal_scores(self):
        ranks = rank_of_positive(np.array([5.0]), np.array([[5.0] * 100]))
        assert ranks[0] == 50.0

    def test_vectorized(self):
        positives = np.array([10.0, 0.0])
        candidates = np.array([[1.0, 2.0], [1.0, 2.0]])
        np.testing.assert_array_equal(
            rank_of_positive(positives, candidates), [0.0, 2.0]
        )


class TestHitRatio:
    def test_hit_inside_k(self):
        np.testing.assert_array_equal(
            hit_ratio_at_k(np.array([0.0, 4.0, 5.0, 9.0]), 5), [1, 1, 0, 0]
        )

    def test_k_boundary(self):
        assert hit_ratio_at_k(np.array([4.999]), 5)[0] == 1.0
        assert hit_ratio_at_k(np.array([5.0]), 5)[0] == 0.0


class TestNdcg:
    def test_top_rank_is_one(self):
        assert ndcg_at_k(np.array([0.0]), 10)[0] == pytest.approx(1.0)

    def test_rank_one_value(self):
        assert ndcg_at_k(np.array([1.0]), 10)[0] == pytest.approx(1.0 / np.log2(3.0))

    def test_outside_k_is_zero(self):
        assert ndcg_at_k(np.array([10.0]), 10)[0] == 0.0

    def test_monotonically_decreasing_in_rank(self):
        ranks = np.arange(10, dtype=float)
        values = ndcg_at_k(ranks, 10)
        assert np.all(np.diff(values) < 0)

    def test_ndcg_never_exceeds_hr(self):
        ranks = np.linspace(0, 20, 41)
        assert np.all(ndcg_at_k(ranks, 10) <= hit_ratio_at_k(ranks, 10) + 1e-12)


class TestSummarize:
    def test_keys(self):
        summary = summarize(np.array([0.0, 3.0, 12.0]), ks=(5, 10))
        assert set(summary) == {"HR@5", "NDCG@5", "HR@10", "NDCG@10"}

    def test_values(self):
        summary = summarize(np.array([0.0, 7.0, 20.0]), ks=(5, 10))
        assert summary["HR@5"] == pytest.approx(1 / 3)
        assert summary["HR@10"] == pytest.approx(2 / 3)

    def test_empty_ranks(self):
        summary = summarize(np.empty(0), ks=(5,))
        assert summary["HR@5"] == 0.0
